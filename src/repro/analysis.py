"""Solution-quality analysis: how far from optimal is a solution?

The paper's guarantees (Theorem 5.3) are worst-case; practitioners want
the *instance-specific* story.  :func:`optimality_report` combines

* the forced-selection cost from preprocessing (paid by every solution),
* per-component LP relaxation lower bounds (Section 5.2's reduction),
* the proven approximation guarantee for the instance's parameters,

into a certificate: ``lower_bound ≤ OPT ≤ solution.cost`` with
``solution.cost / lower_bound`` an upper bound on the true gap.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.instance import MC3Instance
from repro.core.solution import Solution
from repro.exceptions import SolverError
from repro.extensions import instance_guarantee
from repro.preprocess import preprocess
from repro.reductions import mc3_to_wsc
from repro.setcover import lagrangian_lower_bound, lp_lower_bound, lp_nonzeros


class OptimalityReport:
    """A quality certificate for one solution."""

    def __init__(
        self,
        solution_cost: float,
        lower_bound: float,
        guarantee: float,
        components: int,
        lp_components: int,
    ):
        self.solution_cost = solution_cost
        self.lower_bound = lower_bound
        self.guarantee = guarantee
        self.components = components
        self.lp_components = lp_components

    @property
    def gap(self) -> float:
        """Upper bound on ``solution / OPT`` (1.0 = provably optimal)."""
        if self.lower_bound <= 0:
            return 1.0 if self.solution_cost <= 0 else math.inf
        return self.solution_cost / self.lower_bound

    @property
    def certified_optimal(self) -> bool:
        return self.gap <= 1.0 + 1e-9

    def describe(self) -> str:
        lines = [
            f"solution cost  : {self.solution_cost:g}",
            f"lower bound    : {self.lower_bound:g} "
            f"(LP relaxations over {self.lp_components}/{self.components} components)",
            f"gap            : at most {self.gap:.4f}x optimal",
            f"proven bound   : {self.guarantee:.2f}x (Theorem 5.3, worst case)",
        ]
        if self.certified_optimal:
            lines.append("verdict        : certified optimal")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OptimalityReport gap<={self.gap:.4f} bound={self.lower_bound:g}>"


def optimality_report(
    instance: MC3Instance,
    solution: Solution,
    lp_size_limit: Optional[int] = 2_000_000,
) -> OptimalityReport:
    """Build a quality certificate for ``solution`` on ``instance``.

    Components whose LP exceeds ``lp_size_limit`` nonzeros fall back to
    the linear-time Lagrangian bound (weaker but still valid);
    ``lp_components`` reports how many were LP-bounded.
    """
    solution.verify(instance)
    prep = preprocess(instance)
    bound = prep.base_cost
    lp_count = 0
    for component in prep.components:
        wsc = mc3_to_wsc(component)
        if lp_size_limit is not None and lp_nonzeros(wsc) > lp_size_limit:
            bound += lagrangian_lower_bound(wsc)
            continue
        bound += lp_lower_bound(wsc)
        lp_count += 1
    return OptimalityReport(
        solution.cost,
        bound,
        instance_guarantee(instance),
        len(prep.components),
        lp_count,
    )
