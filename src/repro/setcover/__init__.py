"""Weighted Set Cover substrate: instance model, greedy (ln Δ + 1),
LP-rounding and primal–dual (both f-approximations), and an exact
branch-and-bound oracle."""

from typing import Optional

from repro.exceptions import SolverError
from repro.setcover.bucket_greedy import bucket_greedy_wsc
from repro.setcover.exact import DEFAULT_NODE_LIMIT, exact_wsc
from repro.setcover.exact_lp import exact_wsc_lp
from repro.setcover.greedy import greedy_wsc
from repro.setcover.instance import WSCInstance, WSCSolution
from repro.setcover.lagrangian import lagrangian_lower_bound, lagrangian_value
from repro.setcover.multicover import (
    exact_multicover,
    greedy_multicover,
    validate_demands,
    verify_multicover,
)
from repro.setcover.lp import (
    DEFAULT_SIZE_LIMIT,
    lp_lower_bound,
    lp_nonzeros,
    lp_relaxation,
    lp_rounding_wsc,
)
from repro.setcover.primal_dual import primal_dual_wsc
from repro.setcover.sampled_greedy import (
    DEFAULT_EXACT_THRESHOLD,
    DEFAULT_SAMPLE_RATES,
    derive_seed,
    sampled_greedy_wsc,
)
from repro.setcover.streaming import streaming_greedy_wsc


def solve_wsc(
    instance: WSCInstance,
    method: str = "best_of",
    lp_size_limit: Optional[int] = DEFAULT_SIZE_LIMIT,
    prune: bool = False,
    seed: int = 0,
) -> WSCSolution:
    """Solve a WSC instance with the named method.

    Methods
    -------
    ``greedy``
        Chvátal greedy, ``ln Δ + 1`` guarantee.
    ``bucket_greedy``
        Bucketed greedy [CKW'10], ``(1+ε)(ln Δ + 1)`` guarantee.
    ``lp``
        LP rounding, ``f`` guarantee.
    ``primal_dual``
        Primal–dual, ``f`` guarantee, no LP solve.
    ``best_of``
        Algorithm 3's inner strategy: run greedy and an ``f``-approximation
        (LP rounding when the constraint matrix fits in ``lp_size_limit``
        nonzeros, primal–dual otherwise) and keep the cheaper output.
    ``exact``
        Combinatorial branch-and-bound optimum (small instances only).
    ``exact_lp``
        LP-based branch-and-bound optimum (hundreds of sets).
    ``sampled``
        Sampling-based sub-linear greedy [Indyk et al.]; exact-greedy
        fallback below :data:`DEFAULT_EXACT_THRESHOLD` elements.
        ``seed`` drives its (only) randomness.
    ``streaming``
        Few-pass streaming greedy; O(solution) working memory.

    ``prune`` applies the redundancy post-pass to the LP-rounding and
    primal–dual outputs (extension beyond the paper; guarantee-safe).
    """
    if method == "greedy":
        return greedy_wsc(instance)
    if method == "bucket_greedy":
        return bucket_greedy_wsc(instance)
    if method == "sampled":
        return sampled_greedy_wsc(instance, seed=seed)
    if method == "streaming":
        return streaming_greedy_wsc(instance)
    if method == "lp":
        return lp_rounding_wsc(instance, prune=prune)
    if method == "primal_dual":
        return primal_dual_wsc(instance, prune=prune)
    if method == "exact":
        return exact_wsc(instance)
    if method == "exact_lp":
        return exact_wsc_lp(instance)
    if method == "best_of":
        greedy_solution = greedy_wsc(instance)
        if lp_size_limit is not None and lp_nonzeros(instance) > lp_size_limit:
            f_solution = primal_dual_wsc(instance, prune=prune)
        else:
            f_solution = lp_rounding_wsc(instance, prune=prune)
        return greedy_solution if greedy_solution.cost <= f_solution.cost else f_solution
    raise SolverError(f"unknown WSC method {method!r}")


__all__ = [
    "DEFAULT_EXACT_THRESHOLD",
    "DEFAULT_NODE_LIMIT",
    "DEFAULT_SAMPLE_RATES",
    "DEFAULT_SIZE_LIMIT",
    "WSCInstance",
    "WSCSolution",
    "bucket_greedy_wsc",
    "derive_seed",
    "sampled_greedy_wsc",
    "streaming_greedy_wsc",
    "exact_multicover",
    "exact_wsc",
    "exact_wsc_lp",
    "greedy_multicover",
    "greedy_wsc",
    "lagrangian_lower_bound",
    "lagrangian_value",
    "validate_demands",
    "verify_multicover",
    "lp_lower_bound",
    "lp_nonzeros",
    "lp_relaxation",
    "lp_rounding_wsc",
    "primal_dual_wsc",
    "solve_wsc",
]
