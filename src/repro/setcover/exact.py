"""Exact WSC via branch-and-bound.

Used as the optimality oracle in tests and to solve the small connected
components that preprocessing step 2 splits off.  Not intended for large
instances — the problem is NP-hard (Theorem 2.5) and the search is
exponential in the worst case.

Search strategy:

* incumbent initialised with the greedy solution (upper bound);
* branch on the uncovered element with the fewest candidate sets
  (fail-first), trying candidates cheapest-first;
* admissible lower bound: a greedy matching of disjoint uncovered
  elements to their cheapest containing set's *per-element share* is
  replaced by the simpler, still admissible bound
  ``max_e min_{s ∋ e} c_s`` plus the current cost — cheap to compute and
  effective on the small instances this solver targets;
* unit propagation: an element covered by exactly one remaining set
  forces that set.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.exceptions import SolverError
from repro.setcover.greedy import greedy_wsc
from repro.setcover.instance import WSCInstance, WSCSolution

#: Hard cap on branch-and-bound nodes; exceeded means the instance is too
#: large for the exact oracle and callers should use an approximation.
DEFAULT_NODE_LIMIT = 2_000_000


def exact_wsc(instance: WSCInstance, node_limit: int = DEFAULT_NODE_LIMIT) -> WSCSolution:
    """Optimal WSC solution (branch-and-bound).

    Raises :class:`SolverError` when the node limit is hit, so a silent
    approximation can never masquerade as an exact answer.
    """
    instance.validate_coverable()
    universe = instance.universe_size
    num_sets = instance.num_sets

    members = [instance.set_members(set_id) for set_id in range(num_sets)]
    costs = [instance.set_cost(set_id) for set_id in range(num_sets)]
    containing = [instance.sets_containing(e) for e in range(universe)]

    # Incumbent from greedy.
    incumbent = greedy_wsc(instance)
    best_cost = incumbent.cost
    best_sets: Tuple[int, ...] = incumbent.set_ids

    cover_count = [0] * universe
    chosen: List[int] = []
    nodes = [0]

    def cheapest_uncovered_bound() -> float:
        """Admissible lower bound on the remaining cost: any cover must
        pay at least the cheapest set containing the most expensive-to-
        reach uncovered element."""
        bound = 0.0
        for element in range(universe):
            if cover_count[element] == 0:
                cheapest = min(costs[set_id] for set_id in containing[element])
                bound = max(bound, cheapest)
        return bound

    def choose_branch_element() -> Optional[int]:
        """Uncovered element with the fewest candidate sets (fail-first)."""
        best_element = None
        best_options = math.inf
        for element in range(universe):
            if cover_count[element] == 0 and len(containing[element]) < best_options:
                best_element = element
                best_options = len(containing[element])
        return best_element

    def descend(current_cost: float) -> None:
        nonlocal best_cost, best_sets
        nodes[0] += 1
        if nodes[0] > node_limit:
            raise SolverError(
                f"exact WSC exceeded the node limit ({node_limit}); "
                "instance too large for the exact oracle"
            )
        if current_cost + cheapest_uncovered_bound() >= best_cost - 1e-12:
            return
        element = choose_branch_element()
        if element is None:
            # Full cover found, strictly better by the bound check above.
            best_cost = current_cost
            best_sets = tuple(chosen)
            return
        candidates = sorted(containing[element], key=lambda sid: costs[sid])
        for set_id in candidates:
            chosen.append(set_id)
            for member in members[set_id]:
                cover_count[member] += 1
            descend(current_cost + costs[set_id])
            for member in members[set_id]:
                cover_count[member] -= 1
            chosen.pop()

    descend(0.0)
    # Strip any redundancy (branching can pick supersets of earlier picks).
    pruned = instance.prune_redundant(list(best_sets))
    cost = sum(costs[set_id] for set_id in pruned)
    solution = WSCSolution(pruned, cost)
    instance.verify_solution(solution)
    return solution
