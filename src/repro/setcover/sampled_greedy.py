"""Sampling-based sub-linear greedy for Weighted Set Cover.

The recipe follows "Set Cover in Sub-linear Time" (Indyk, Mahabadi,
Rubinfeld, Vakilian & Yodpinyanee): instead of maintaining exact fresh
coverage for every set over the whole universe, estimate coverage gains
on a *sample* of the uncovered elements, run the (exact) greedy on that
restricted sub-instance, and repair whatever the sampled rounds missed.
The final repair phase here is itself an exact greedy over the residual
uncovered elements, so the output is always a feasible cover and the
only quality loss comes from early selections being guided by sampled
rather than exact gains ("No need to choose" by Ailon & Karnin is the
theory anchor for keeping approximation quality under sampling).

Inputs are *set systems*, a duck-typed superset of
:class:`~repro.setcover.instance.WSCInstance`: anything exposing
``universe_size``, ``num_sets``, ``set_cost(set_id)``,
``set_members(set_id)``, and ``sets_containing(element_id)`` over dense
integer ids.  Crucially the algorithm touches *only* the members of
selected sets and the candidate lists of sampled/residual elements —
never the full incidence structure — so a lazily-evaluated system (see
:mod:`repro.datasets.scale`) is solved without ever materialising the
instance.  This is what makes the 1M–10M-query scale tiers tractable:
the materialise-then-solve pipeline is O(n·f) time and memory before
the solver even starts, while this path is O(sample + solution).

Determinism contract (reprolint RPL504): the only randomness is a
``random.Random`` seeded from the explicit ``seed`` argument, so output
is bit-identical across runs, processes, ``jobs`` settings, and
``PYTHONHASHSEED`` values.  Below ``exact_threshold`` the sampler is
skipped entirely and the classic Chvátal greedy answers, keeping the
``ln Δ + 1`` guarantee exact on every small instance.
"""

from __future__ import annotations

import heapq
import random
from hashlib import blake2b
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.kernels.registry import get_backend
from repro.exceptions import SolverError, UncoverableQueryError
from repro.setcover.greedy import greedy_wsc
from repro.setcover.instance import WSCInstance, WSCSolution

#: Geometric sample schedule: fraction of the universe sampled per
#: round.  Two rounds keep per-set gain estimates statistically usable
#: (the second round samples harder because most of the universe is
#: already covered) while the residual exact-greedy pass mops up the
#: tail.  Part of every cache token that involves this solver.
DEFAULT_SAMPLE_RATES: Tuple[float, ...] = (0.02, 0.08)

#: Below this universe size sampling cannot pay for itself; the classic
#: Chvátal greedy runs instead (exactness fallback, guarantee intact).
DEFAULT_EXACT_THRESHOLD = 4096


def derive_seed(seed: int, queries: Iterable[Iterable[str]]) -> int:
    """A per-component seed from the solver seed and the component content.

    Components must sample independently (identical sampling across
    components would correlate their errors) yet deterministically across
    process boundaries and ``PYTHONHASHSEED`` values — so the mix uses a
    content digest of the canonically-sorted query labels, never the
    builtin ``hash``.
    """
    digest = blake2b(str(int(seed)).encode("ascii"), digest_size=8)
    for rendered in sorted(",".join(sorted(q)) for q in queries):
        digest.update(b"|")
        digest.update(rendered.encode("utf-8"))
    return int.from_bytes(digest.digest(), "little")


def _uncovered_ids(covered: bytearray) -> List[int]:
    """Ids of the zero bytes in ``covered`` — a C-speed ``find`` scan, so
    the cost is proportional to ``n`` memchr plus the uncovered count."""
    out: List[int] = []
    find = covered.find
    index = find(0)
    while index != -1:
        out.append(index)
        index = find(0, index + 1)
    return out


def _materialize(system) -> WSCInstance:
    """A concrete :class:`WSCInstance` mirroring ``system`` with identical
    dense ids (used only for the small-instance exactness fallback)."""
    instance = WSCInstance()
    for element_id in range(system.universe_size):
        instance.add_element(element_id)
    for set_id in range(system.num_sets):
        instance.add_set_ids(set_id, system.set_members(set_id), system.set_cost(set_id))
    return instance


def _greedy_restricted(
    system,
    elements: Sequence[int],
    covered: bytearray,
    chosen: bytearray,
    selection: List[int],
    backend: Optional[str],
) -> Tuple[float, int]:
    """Exact Chvátal greedy on the sub-instance induced by ``elements``.

    ``elements`` must be uncovered and sorted ascending.  Selected sets
    are appended to ``selection`` and their *full* membership is marked
    in ``covered`` (coverage beyond the sample is what makes the sampled
    rounds sub-linear: one selection pays for many unsampled elements).
    Returns ``(added cost, newly covered element count)``.
    """
    nbytes = (len(elements) + 7) >> 3
    buffers: Dict[int, bytearray] = {}
    for index, element in enumerate(elements):
        candidates = system.sets_containing(element)
        hit = False
        for set_id in candidates:
            if chosen[set_id]:
                continue  # pre-chosen sets already marked their members
            buffer = buffers.get(set_id)
            if buffer is None:
                buffer = buffers[set_id] = bytearray(nbytes)
            buffer[index >> 3] |= 1 << (index & 7)
            hit = True
        if not hit:
            raise UncoverableQueryError(
                frozenset([element]),
                f"WSC element {element!r} belongs to no selectable set",
            )
    set_ids = sorted(buffers)
    masks = [int.from_bytes(buffers[set_id], "little") for set_id in set_ids]
    costs = [system.set_cost(set_id) for set_id in set_ids]
    gains = get_backend(backend).sampled_gains(masks, 0)

    # Lazy-deletion heap, same discipline and tie-breaks as the full
    # greedy kernel: ties on ratio resolve by lowest (global) set id.
    heap = [
        (costs[local_id] / gain, set_ids[local_id], local_id, gain)
        for local_id, gain in enumerate(gains)
        if gain
    ]
    heapq.heapify(heap)

    local_covered = 0
    need = len(elements)
    matched = 0
    added_cost = 0.0
    newly_global = 0
    while matched < need:
        if not heap:
            raise SolverError(
                "sampled greedy ran out of sets before covering its sample"
            )
        _ratio, set_id, local_id, recorded = heapq.heappop(heap)
        fresh_mask = masks[local_id] & ~local_covered
        fresh = fresh_mask.bit_count()
        if fresh == 0:
            continue
        if fresh != recorded:
            heapq.heappush(
                heap, (costs[local_id] / fresh, set_id, local_id, fresh)
            )
            continue
        selection.append(set_id)
        chosen[set_id] = 1
        added_cost += costs[local_id]
        local_covered |= fresh_mask
        matched += fresh
        for element in system.set_members(set_id):
            if not covered[element]:
                covered[element] = 1
                newly_global += 1
    return added_cost, newly_global


def sampled_greedy_wsc(
    system,
    seed: int = 0,
    rates: Sequence[float] = DEFAULT_SAMPLE_RATES,
    exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
    backend: Optional[str] = None,
    stats: Optional[dict] = None,
) -> WSCSolution:
    """Solve a set system with the sampling-based sub-linear greedy.

    Parameters
    ----------
    system:
        A :class:`WSCInstance` or any duck-typed set system (see the
        module docstring).  Lazily-evaluated systems are never
        materialised.
    seed:
        Seeds the element sampler (the algorithm's only randomness).
        Thread the engine-level seed here — see :func:`derive_seed` for
        the per-component mix.
    rates:
        Per-round sample rates over the universe size; each round runs
        an exact greedy on its sampled sub-instance.  The tuple is part
        of the algorithm's identity and belongs in every cache token.
    exact_threshold:
        Universe size at or below which the classic greedy runs instead
        (``ln Δ + 1`` guarantee preserved exactly).
    backend:
        Kernel-backend override for the gain-estimation batch kernel.
    stats:
        Optional dict filled with per-phase telemetry (mode, rounds,
        residual size, selection count).
    """
    n = int(system.universe_size)
    if n <= int(exact_threshold):
        instance = system if isinstance(system, WSCInstance) else _materialize(system)
        solution = greedy_wsc(instance, backend=backend)
        if stats is not None:
            stats.update(
                {"mode": "exact-fallback", "universe": n, "rounds": [],
                 "residual_elements": 0, "sets_selected": len(solution.set_ids)}
            )
        return solution

    rng = random.Random(f"sampled-wsc-{int(seed)}")
    covered = bytearray(n)
    chosen = bytearray(system.num_sets)
    selection: List[int] = []
    total_cost = 0.0
    uncovered_count = n
    round_stats: List[dict] = []

    for round_index, rate in enumerate(rates):
        if uncovered_count == 0:
            break
        target = max(1, min(uncovered_count, round(float(rate) * n)))
        if round_index == 0:
            # Nothing is covered yet: sample directly from the id range
            # without materialising a population list.
            sampled = sorted(rng.sample(range(n), target))
        else:
            population = _uncovered_ids(covered)
            if target >= len(population):
                sampled = population
            else:
                sampled = sorted(rng.sample(population, target))
        cost, newly = _greedy_restricted(
            system, sampled, covered, chosen, selection, backend
        )
        total_cost += cost
        uncovered_count -= newly
        round_stats.append(
            {"rate": float(rate), "sampled": len(sampled),
             "newly_covered": newly, "uncovered_after": uncovered_count}
        )

    residual = _uncovered_ids(covered) if uncovered_count else []
    if residual:
        # Repair phase: exact greedy on the residual sub-instance.  This
        # both guarantees feasibility and keeps quality tight — the
        # sampled rounds only ever *guide* selections, the tail is solved
        # exactly.
        cost, newly = _greedy_restricted(
            system, residual, covered, chosen, selection, backend
        )
        total_cost += cost
        uncovered_count -= newly
    if uncovered_count:
        raise SolverError(
            f"sampled greedy left {uncovered_count} elements uncovered"
        )

    if stats is not None:
        stats.update(
            {"mode": "sampled", "universe": n, "rounds": round_stats,
             "residual_elements": len(residual),
             "sets_selected": len(selection)}
        )
    return WSCSolution(selection, total_cost)
