"""Weighted Set *Multi*-Cover: every element must be covered a demanded
number of times.

The paper's related-work section points at Set MultiCover as the
natural generalisation for extending the MC³ model; the robust solver
(`repro.solvers.robust`) uses it to buy *redundant* coverage — if any
one trained classifier later proves unusable, every query stays
answerable.

Algorithms:

* :func:`greedy_multicover` — Chvátal-style greedy on residual demand
  (each set may be bought once; its contribution to an element is at
  most 1 unit of demand).  The classic ``H(Δ)`` guarantee carries over
  to multi-cover [Rajagopalan & Vazirani, FOCS'93].
* :func:`exact_multicover` — branch-and-bound oracle for tests.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidInstanceError, SolverError, UncoverableQueryError
from repro.setcover.instance import WSCInstance, WSCSolution


def validate_demands(instance: WSCInstance, demands: Sequence[int]) -> List[int]:
    """Demands must be non-negative ints, one per element, and each
    element must belong to at least ``demand`` sets (a set counts once)."""
    if len(demands) != instance.universe_size:
        raise InvalidInstanceError(
            f"expected {instance.universe_size} demands, got {len(demands)}"
        )
    cleaned: List[int] = []
    for element_id, demand in enumerate(demands):
        value = int(demand)
        if value < 0:
            raise InvalidInstanceError(f"demand of element {element_id} is negative")
        available = len(instance.sets_containing(element_id))
        if value > available:
            raise UncoverableQueryError(
                frozenset([instance.element_label(element_id)]),
                f"element {instance.element_label(element_id)!r} demands "
                f"{value} covers but belongs to only {available} sets",
            )
        cleaned.append(value)
    return cleaned


def verify_multicover(
    instance: WSCInstance, demands: Sequence[int], solution: WSCSolution
) -> None:
    """Independent feasibility + cost check."""
    counts = [0] * instance.universe_size
    total = 0.0
    seen = set()
    for set_id in solution.set_ids:
        if set_id in seen:
            raise InvalidInstanceError(f"set {set_id} selected twice")
        seen.add(set_id)
        total += instance.set_cost(set_id)
        for element_id in instance.set_members(set_id):
            counts[element_id] += 1
    for element_id, demand in enumerate(demands):
        if counts[element_id] < demand:
            raise InvalidInstanceError(
                f"element {instance.element_label(element_id)!r} covered "
                f"{counts[element_id]} < {demand} times"
            )
    if not math.isclose(total, solution.cost, rel_tol=1e-9, abs_tol=1e-9):
        raise InvalidInstanceError(
            f"multicover cost mismatch: recorded {solution.cost}, actual {total}"
        )


def greedy_multicover(instance: WSCInstance, demands: Sequence[int]) -> WSCSolution:
    """Greedy on residual demand with a lazy-deletion heap.

    A set's usefulness is the number of elements whose residual demand
    is still positive; residual demands only decrease, so the lazy-heap
    argument from plain greedy applies unchanged.
    """
    demands = validate_demands(instance, demands)
    residual = list(demands)
    outstanding = sum(residual)
    selected: List[int] = []
    taken = [False] * instance.num_sets
    total_cost = 0.0

    heap: List[Tuple[float, int, int]] = []
    for set_id in range(instance.num_sets):
        useful = sum(1 for e in instance.set_members(set_id) if residual[e] > 0)
        if useful:
            heapq.heappush(heap, (instance.set_cost(set_id) / useful, set_id, useful))

    while outstanding > 0:
        if not heap:
            raise SolverError("multicover greedy ran out of sets")
        _ratio, set_id, recorded = heapq.heappop(heap)
        if taken[set_id]:
            continue
        useful = sum(1 for e in instance.set_members(set_id) if residual[e] > 0)
        if useful == 0:
            continue
        if useful != recorded:
            heapq.heappush(
                heap, (instance.set_cost(set_id) / useful, set_id, useful)
            )
            continue
        taken[set_id] = True
        selected.append(set_id)
        total_cost += instance.set_cost(set_id)
        for element_id in instance.set_members(set_id):
            if residual[element_id] > 0:
                residual[element_id] -= 1
                outstanding -= 1

    solution = WSCSolution(selected, total_cost)
    verify_multicover(instance, demands, solution)
    return solution


def exact_multicover(
    instance: WSCInstance,
    demands: Sequence[int],
    node_limit: int = 1_000_000,
) -> WSCSolution:
    """Optimal multi-cover by branch-and-bound (small instances only)."""
    demands = validate_demands(instance, demands)
    incumbent = greedy_multicover(instance, demands)
    best_cost = incumbent.cost
    best_sets: Tuple[int, ...] = incumbent.set_ids

    num_sets = instance.num_sets
    members = [instance.set_members(set_id) for set_id in range(num_sets)]
    costs = [instance.set_cost(set_id) for set_id in range(num_sets)]
    containing = [instance.sets_containing(e) for e in range(instance.universe_size)]

    residual = list(demands)
    chosen: List[int] = []
    nodes = [0]

    def lower_bound() -> float:
        """Admissible: the most demanding element must buy its residual
        demand from its cheapest unused sets."""
        bound = 0.0
        for element_id, need in enumerate(residual):
            if need <= 0:
                continue
            available = sorted(
                costs[set_id]
                for set_id in containing[element_id]
                if set_id not in chosen_set
            )
            if len(available) < need:
                return math.inf
            bound = max(bound, sum(available[:need]))
        return bound

    chosen_set: set = set()

    def pick_element() -> Optional[int]:
        best_element = None
        fewest = math.inf
        for element_id, need in enumerate(residual):
            if need <= 0:
                continue
            options = sum(
                1 for set_id in containing[element_id] if set_id not in chosen_set
            )
            slack = options - need
            if slack < fewest:
                fewest = slack
                best_element = element_id
        return best_element

    def descend(cost: float) -> None:
        nonlocal best_cost, best_sets
        nodes[0] += 1
        if nodes[0] > node_limit:
            raise SolverError(f"exact multicover exceeded {node_limit} nodes")
        if cost + lower_bound() >= best_cost - 1e-12:
            return
        element = pick_element()
        if element is None:
            best_cost = cost
            best_sets = tuple(chosen)
            return
        options = sorted(
            (set_id for set_id in containing[element] if set_id not in chosen_set),
            key=lambda sid: costs[sid],
        )
        for set_id in options:
            chosen.append(set_id)
            chosen_set.add(set_id)
            for member in members[set_id]:
                residual[member] -= 1
            descend(cost + costs[set_id])
            for member in members[set_id]:
                residual[member] += 1
            chosen_set.remove(set_id)
            chosen.pop()

    descend(0.0)
    solution = WSCSolution(best_sets, best_cost)
    verify_multicover(instance, demands, solution)
    return solution
