"""One-pass / few-pass streaming greedy for Weighted Set Cover.

The streaming model here is element-arrival: the instance is consumed
as a stream of ``(element_id, candidate set ids)`` items and the state
carried between items is the current selection only — O(solution size),
never O(universe).  That is the regime the ROADMAP's 10M-query tiers
need: the materialise-then-solve pipeline must first build O(n·f)
incidence lists and masks, which a modest memory cap kills, while this
path completes under the same cap (``benchmarks/bench_setcover_sublinear``
demonstrates exactly that pairing).

Algorithm, pass 1 (the one-pass core): an element already covered by a
previously selected set is skipped; otherwise its cheapest candidate
(ties to the lowest set id) is bought.  Every decision is local to the
item, so the pass is deterministic with no randomness at all.  Worst
case the pass pays each element's cheapest candidate, which is bounded
by ``Δ · OPT`` (each optimal set is charged at most once per member);
no better bound is possible for a deterministic one-pass algorithm —
this is the memory-bound baseline, not a quality contender.

Pass 2 (optional, default on): re-stream and assign each element to its
cheapest selected candidate, then drop every selected set that ended up
with no assignments.  Removals only lower the cost and feasibility is
preserved by construction (each element keeps its assigned set); a
second pass over the stream is cheap compared with re-materialising.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import SolverError, UncoverableQueryError
from repro.setcover.instance import WSCSolution


def _items(system) -> Iterator[Tuple[int, Iterable[int]]]:
    """The element stream of a set system.

    Prefers a lazy ``iter_items()`` (the scale-tier workloads compute
    candidates arithmetically, keeping the pass O(1) memory per item);
    falls back to indexed ``sets_containing`` access for concrete
    instances.
    """
    iter_items = getattr(system, "iter_items", None)
    if iter_items is not None:
        return iter_items()
    return (
        (element, system.sets_containing(element))
        for element in range(system.universe_size)
    )


def streaming_greedy_wsc(system, passes: int = 2) -> WSCSolution:
    """Solve a set system with the streaming greedy.

    ``passes=1`` is the strict one-pass algorithm; ``passes=2`` (the
    default) adds the prune pass, which re-streams once and drops
    selected sets no element relies on.  State between items is the
    selection alone, so peak memory is O(solution size) on lazy systems.
    """
    if passes not in (1, 2):
        raise SolverError(f"streaming greedy supports 1 or 2 passes, got {passes}")

    # Pass 1: buy the cheapest candidate of every uncovered element.
    # ``selected`` keys are set ids in selection order (dict preserves
    # insertion order); values are the costs so the prune pass never
    # needs cost lookups beyond the selection.
    selected: Dict[int, float] = {}
    for element, candidates in _items(system):
        best_key: Optional[Tuple[float, int]] = None
        covered = False
        for set_id in candidates:
            if set_id in selected:
                covered = True
                break
            key = (system.set_cost(set_id), set_id)
            if best_key is None or key < best_key:
                best_key = key
        if covered:
            continue
        if best_key is None:
            raise UncoverableQueryError(
                frozenset([element]),
                f"WSC element {element!r} belongs to no set",
            )
        selected[best_key[1]] = best_key[0]

    if passes == 2 and selected:
        # Prune pass: each element is assigned to its cheapest selected
        # candidate (ties to the lowest id); unassigned sets are dropped.
        used: Set[int] = set()
        for element, candidates in _items(system):
            best_key = None
            for set_id in candidates:
                if set_id not in selected:
                    continue
                key = (selected[set_id], set_id)
                if best_key is None or key < best_key:
                    best_key = key
            if best_key is None:
                raise SolverError(
                    f"streaming prune pass found element {element!r} uncovered"
                )
            used.add(best_key[1])
        selected = {
            set_id: cost for set_id, cost in selected.items() if set_id in used
        }

    order: List[int] = list(selected)
    return WSCSolution(order, sum(selected.values()))
