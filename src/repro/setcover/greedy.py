"""Chvátal's greedy WSC algorithm with a lazy-deletion priority queue.

At each step, select the set minimising ``cost / newly-covered``; this
achieves the (nearly tight) ``ln Δ + 1`` approximation factor
(Theorem 2.6).  The heap holds stale entries — an entry is trusted only
if its recorded coverage count still matches reality, otherwise the set
is re-keyed and pushed back.  This is the ``O(log m · Σ|s|)`` variant
attributed to [Cormode, Karloff, Wirth 2010] in the paper.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional

from repro.exceptions import SolverError
from repro.setcover.instance import WSCInstance, WSCSolution


def greedy_wsc(instance: WSCInstance) -> WSCSolution:
    """Solve a WSC instance greedily; raises if some element is uncoverable."""
    instance.validate_coverable()

    universe_size = instance.universe_size
    covered = [False] * universe_size
    num_covered = 0
    selected: List[int] = []
    total_cost = 0.0

    # uncovered_count[set_id] is maintained lazily: the authoritative value
    # is recomputed when a heap entry is popped.
    heap: List = []
    for set_id in range(instance.num_sets):
        size = len(instance.set_members(set_id))
        cost = instance.set_cost(set_id)
        ratio = cost / size
        heapq.heappush(heap, (ratio, set_id, size))

    while num_covered < universe_size:
        if not heap:
            raise SolverError("greedy ran out of sets before covering the universe")
        ratio, set_id, recorded = heapq.heappop(heap)
        fresh = sum(1 for e in instance.set_members(set_id) if not covered[e])
        if fresh == 0:
            continue
        if fresh != recorded:
            # Stale entry: re-key with the up-to-date coverage.
            cost = instance.set_cost(set_id)
            heapq.heappush(heap, (cost / fresh, set_id, fresh))
            continue
        # Entry is accurate and minimal: select the set.
        selected.append(set_id)
        total_cost += instance.set_cost(set_id)
        for element_id in instance.set_members(set_id):
            if not covered[element_id]:
                covered[element_id] = True
                num_covered += 1

    return WSCSolution(selected, total_cost)
