"""Chvátal's greedy WSC algorithm (``ln Δ + 1``, Theorem 2.6).

Shim over the kernel layer: the lazy-deletion heap implementation lives
in the ``pyjit`` backend and a vectorized variant in ``array``, both
reached through :mod:`repro.core.kernels.registry` and both
bit-identical to the per-element reference
(:func:`repro.core.reference.reference_greedy_wsc`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.kernels.registry import get_backend
from repro.setcover.instance import WSCInstance, WSCSolution


def greedy_wsc(instance: WSCInstance, backend: Optional[str] = None) -> WSCSolution:
    """Solve a WSC instance greedily; raises if some element is
    uncoverable.  ``backend`` overrides the active kernel backend."""
    return get_backend(backend).greedy_wsc(instance)
