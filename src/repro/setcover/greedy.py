"""Chvátal's greedy WSC algorithm with a lazy-deletion priority queue.

At each step, select the set minimising ``cost / newly-covered``; this
achieves the (nearly tight) ``ln Δ + 1`` approximation factor
(Theorem 2.6).  The heap holds stale entries — an entry is trusted only
if its recorded coverage count still matches reality, otherwise the set
is re-keyed and pushed back.  This is the ``O(log m · Σ|s|)`` variant
attributed to [Cormode, Karloff, Wirth 2010] in the paper.

Coverage state is a single integer bitmask over element ids: the
freshly-covered count of a set is ``popcount(members & ~covered)`` and
marking a selection is one ``|=`` — the per-element scans of the
original implementation (one to count, one to mark) collapse into a
single masked popcount whose result is reused for the marking.
Selections and tie-breaks are bit-identical to the per-element variant
(kept as :func:`repro.core.reference.reference_greedy_wsc`).
"""

from __future__ import annotations

import heapq
from typing import List

from repro.exceptions import SolverError
from repro.setcover.instance import WSCInstance, WSCSolution


def greedy_wsc(instance: WSCInstance) -> WSCSolution:
    """Solve a WSC instance greedily; raises if some element is uncoverable."""
    instance.validate_coverable()

    universe_size = instance.universe_size
    member_masks = instance.member_masks()
    covered = 0
    num_covered = 0
    selected: List[int] = []
    total_cost = 0.0

    # uncovered_count[set_id] is maintained lazily: the authoritative value
    # is recomputed when a heap entry is popped.  Ties on ratio resolve by
    # lowest set_id (then recorded size) through the tuple ordering.
    heap: List = []
    for set_id in range(instance.num_sets):
        size = len(instance.set_members(set_id))
        if size == 0:
            # Degenerate empty set: can never cover anything; skipping it
            # here keeps the seeding total instead of dividing by zero.
            continue
        cost = instance.set_cost(set_id)
        heap.append((cost / size, set_id, size))
    heapq.heapify(heap)

    while num_covered < universe_size:
        if not heap:
            raise SolverError("greedy ran out of sets before covering the universe")
        ratio, set_id, recorded = heapq.heappop(heap)
        fresh_mask = member_masks[set_id] & ~covered
        fresh = fresh_mask.bit_count()
        if fresh == 0:
            continue
        if fresh != recorded:
            # Stale entry: re-key with the up-to-date coverage.
            cost = instance.set_cost(set_id)
            heapq.heappush(heap, (cost / fresh, set_id, fresh))
            continue
        # Entry is accurate and minimal: select the set.
        selected.append(set_id)
        total_cost += instance.set_cost(set_id)
        covered |= fresh_mask
        num_covered += fresh

    return WSCSolution(selected, total_cost)
