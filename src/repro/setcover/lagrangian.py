"""Lagrangian lower bounds for WSC (LP-free certificates at scale).

The LP relaxation bound (`repro.setcover.lp.lp_lower_bound`) is exact
but needs the constraint matrix in memory; beyond the LP budget the
optimality certificate would otherwise fall back to the forced-cost
part alone.  The Lagrangian dual provides a cheap anytime bound:

    L(y) = Σ_e y_e + Σ_s min(0, c_s − Σ_{e∈s} y_e),   y ≥ 0

Every ``y ≥ 0`` gives ``L(y) ≤ OPT_LP ≤ OPT``; projected subgradient
ascent tightens it.  Each iteration is one pass over the sets — linear
time, no matrix.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import InvalidInstanceError
from repro.setcover.instance import WSCInstance


def lagrangian_value(instance: WSCInstance, multipliers: Sequence[float]) -> float:
    """``L(y)`` for the given multipliers (any ``y ≥ 0`` is a bound)."""
    if len(multipliers) != instance.universe_size:
        raise InvalidInstanceError(
            f"expected {instance.universe_size} multipliers, got {len(multipliers)}"
        )
    total = sum(multipliers)
    for set_id in range(instance.num_sets):
        reduced = instance.set_cost(set_id) - sum(
            multipliers[e] for e in instance.set_members(set_id)
        )
        if reduced < 0:
            total += reduced
    return total


def lagrangian_lower_bound(
    instance: WSCInstance,
    iterations: int = 60,
    initial_step: float = 1.0,
) -> float:
    """Best bound found by projected subgradient ascent.

    Initialisation: each element's multiplier is its cheapest containing
    set's per-element share (a classic warm start that is already a
    decent bound).  The step size decays harmonically; the best ``L(y)``
    seen is returned, so more iterations never hurt.
    """
    instance.validate_coverable()
    universe = instance.universe_size
    if universe == 0:
        return 0.0

    multipliers: List[float] = [0.0] * universe
    for element_id in range(universe):
        best_share = min(
            instance.set_cost(set_id) / len(instance.set_members(set_id))
            for set_id in instance.sets_containing(element_id)
        )
        multipliers[element_id] = best_share

    best = lagrangian_value(instance, multipliers)
    for iteration in range(1, iterations + 1):
        # Subgradient: 1 − (number of tight/negative sets containing e).
        coverage = [0] * universe
        for set_id in range(instance.num_sets):
            reduced = instance.set_cost(set_id) - sum(
                multipliers[e] for e in instance.set_members(set_id)
            )
            if reduced < 0:
                for e in instance.set_members(set_id):
                    coverage[e] += 1
        step = initial_step / iteration
        for element_id in range(universe):
            gradient = 1 - coverage[element_id]
            multipliers[element_id] = max(
                0.0, multipliers[element_id] + step * gradient
            )
        value = lagrangian_value(instance, multipliers)
        if value > best:
            best = value
    return best
