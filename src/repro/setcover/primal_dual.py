"""Primal–dual ``f``-approximation for WSC (LP-free).

The dual of the WSC relaxation assigns a value ``y_e`` to each element
subject to ``Σ_{e ∈ s} y_e ≤ c_s``.  The primal–dual scheme visits each
uncovered element, raises its dual until some containing set becomes
tight, and selects all tight sets.  Every selected set is paid for by
the duals of its elements, and each element pays into at most ``f``
sets, so the cost is at most ``f · Σ y_e ≤ f · OPT``.

Same worst-case guarantee as LP rounding but linear time, which is what
Algorithm 3 needs on synthetic loads whose LPs would have tens of
millions of nonzeros.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.setcover.instance import WSCInstance, WSCSolution


def primal_dual_wsc(
    instance: WSCInstance,
    element_order: Optional[Sequence[int]] = None,
    prune: bool = False,
) -> WSCSolution:
    """Run the primal–dual scheme.

    ``element_order`` fixes the order in which uncovered elements raise
    their duals (default: element-id order); different orders give
    different — all ``f``-approximate — covers, which the ablation bench
    exploits.  ``prune=True`` drops redundant sets afterwards (extension;
    preserves the guarantee).
    """
    instance.validate_coverable()
    universe = instance.universe_size
    residual = [instance.set_cost(set_id) for set_id in range(instance.num_sets)]
    tight = [False] * instance.num_sets
    covered = [False] * universe
    selected: List[int] = []

    order = range(universe) if element_order is None else element_order
    for element_id in order:
        if covered[element_id]:
            continue
        containing = instance.sets_containing(element_id)
        delta = min(residual[set_id] for set_id in containing)
        for set_id in containing:
            residual[set_id] -= delta
            if residual[set_id] <= 1e-12 and not tight[set_id]:
                tight[set_id] = True
                selected.append(set_id)
                for member in instance.set_members(set_id):
                    covered[member] = True

    if prune:
        selected = instance.prune_redundant(selected)
    cost = sum(instance.set_cost(set_id) for set_id in selected)
    solution = WSCSolution(selected, cost)
    instance.verify_solution(solution)
    return solution
