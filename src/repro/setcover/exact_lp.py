"""Exact WSC via LP-based branch-and-bound.

The combinatorial oracle in :mod:`repro.setcover.exact` explores the
choice tree with a weak bound; this engine instead bounds every node
with the LP relaxation (fixing branched variables through their bounds)
and branches on the most fractional variable.  On instances whose LP is
near-integral — common for the WSC images of MC³ loads, as the
LP-rounding results in EXPERIMENTS.md show — it proves optimality in a
handful of nodes where the combinatorial search would enumerate
thousands.

Node LPs are solved by SciPy's HiGHS; warm starts are not exposed by
``linprog``, so each node pays a fresh solve — the engine targets
hundreds of sets, not the synthetic 100k loads.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import SolverError
from repro.setcover.greedy import greedy_wsc
from repro.setcover.instance import WSCInstance, WSCSolution

#: Variables within this distance of an integer are considered integral.
INTEGRALITY_TOL = 1e-6

DEFAULT_NODE_LIMIT = 10_000


class _NodeLP:
    """Shared LP data; per-node solves differ only in variable bounds."""

    def __init__(self, instance: WSCInstance):
        rows, cols = [], []
        for set_id in range(instance.num_sets):
            for element_id in instance.set_members(set_id):
                rows.append(element_id)
                cols.append(set_id)
        data = -np.ones(len(rows))
        self.matrix = sparse.csr_matrix(
            (data, (np.array(rows), np.array(cols))),
            shape=(instance.universe_size, instance.num_sets),
        )
        self.rhs = -np.ones(instance.universe_size)
        self.costs = np.array(
            [instance.set_cost(set_id) for set_id in range(instance.num_sets)]
        )

    def solve(self, fixed: Dict[int, int]) -> Optional[Tuple[float, np.ndarray]]:
        """LP value and solution under the given 0/1 fixings; ``None`` if
        infeasible."""
        lower = np.zeros(len(self.costs))
        upper = np.ones(len(self.costs))
        for set_id, value in fixed.items():
            lower[set_id] = upper[set_id] = float(value)
        result = linprog(
            c=self.costs,
            A_ub=self.matrix,
            b_ub=self.rhs,
            bounds=np.column_stack([lower, upper]),
            method="highs",
        )
        if not result.success:
            return None
        return float(result.fun), result.x


def exact_wsc_lp(
    instance: WSCInstance, node_limit: int = DEFAULT_NODE_LIMIT
) -> WSCSolution:
    """Optimal WSC via LP branch-and-bound.

    Raises :class:`SolverError` on node-limit exhaustion (no silent
    approximation).
    """
    instance.validate_coverable()
    lp = _NodeLP(instance)

    incumbent = greedy_wsc(instance)
    best_cost = incumbent.cost
    best_sets: Tuple[int, ...] = incumbent.set_ids

    # Depth-first stack of variable fixings; DFS keeps memory flat and
    # finds improving incumbents early.
    stack: List[Dict[int, int]] = [{}]
    nodes = 0
    while stack:
        fixed = stack.pop()
        nodes += 1
        if nodes > node_limit:
            raise SolverError(
                f"LP branch-and-bound exceeded the node limit ({node_limit})"
            )
        solved = lp.solve(fixed)
        if solved is None:
            continue
        bound, x = solved
        if bound >= best_cost - 1e-9:
            continue
        # Most fractional variable.
        fractional = None
        worst = INTEGRALITY_TOL
        for set_id, value in enumerate(x):
            if set_id in fixed:
                continue
            distance = abs(value - round(value))
            if distance > worst:
                worst = distance
                fractional = set_id
        if fractional is None:
            # Integral LP solution: a feasible cover beating the incumbent.
            chosen = tuple(
                set_id for set_id, value in enumerate(x) if value > 0.5
            )
            cost = float(sum(instance.set_cost(s) for s in chosen))
            solution = WSCSolution(chosen, cost)
            instance.verify_solution(solution)
            if cost < best_cost:
                best_cost = cost
                best_sets = chosen
            continue
        # Branch: try the rounding-up child first (tends to find covers).
        down = dict(fixed)
        down[fractional] = 0
        up = dict(fixed)
        up[fractional] = 1
        stack.append(down)
        stack.append(up)

    solution = WSCSolution(best_sets, best_cost)
    instance.verify_solution(solution)
    return solution
