"""Disk-friendly bucketed greedy for WSC [Cormode, Karloff & Wirth,
CIKM 2010] — the efficient-greedy reference the paper cites for
Algorithm 3's inner loop.

Instead of a priority queue over exact ratios, sets live in geometric
*ratio buckets* ``[(1+ε)^k, (1+ε)^{k+1})``.  Buckets are processed from
best to worst; a set whose recomputed ratio still falls in the current
bucket is selected immediately (it is within ``(1+ε)`` of the true
greedy choice), otherwise it migrates to its new bucket.  Each set
moves at most ``O(log_{1+ε}(cost·Δ))`` times and accesses are strictly
bucket-sequential — the property that made the algorithm disk-friendly
at CIKM-scale and makes it cache-friendly here.

Guarantee: ``(1+ε)(ln Δ + 1)`` times optimal.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.exceptions import InvalidInstanceError, SolverError
from repro.setcover.instance import WSCInstance, WSCSolution


def bucket_greedy_wsc(instance: WSCInstance, epsilon: float = 0.1) -> WSCSolution:
    """Solve WSC with the bucketed greedy.

    ``epsilon`` trades quality for movement: larger values mean fewer
    bucket migrations and a looser ``(1+ε)`` factor on the greedy ratio.
    """
    if epsilon <= 0:
        raise InvalidInstanceError(f"epsilon must be > 0, got {epsilon}")
    instance.validate_coverable()
    base = 1.0 + epsilon
    log_base = math.log(base)

    def bucket_of(ratio: float) -> int:
        if ratio <= 0:
            return -(10**9)  # zero-cost sets: always the best bucket
        return math.floor(math.log(ratio) / log_base)

    universe_size = instance.universe_size
    member_masks = instance.member_masks()
    covered = 0
    num_covered = 0
    selected: List[int] = []
    total_cost = 0.0

    buckets: Dict[int, List[int]] = {}

    def push(set_id: int, ratio: float) -> None:
        key = bucket_of(ratio)
        if key not in buckets:
            buckets[key] = []
        buckets[key].append(set_id)

    for set_id in range(instance.num_sets):
        size = len(instance.set_members(set_id))
        if size == 0:
            continue  # degenerate empty set: nothing to cover, no ratio
        push(set_id, instance.set_cost(set_id) / size)

    while num_covered < universe_size:
        if not buckets:
            raise SolverError("bucket greedy ran out of sets")
        current_key = min(buckets)
        queue = buckets.pop(current_key)
        for set_id in queue:
            # One masked popcount replaces the count-then-mark scans.
            fresh_mask = member_masks[set_id] & ~covered
            fresh = fresh_mask.bit_count()
            if fresh == 0:
                continue  # fully stale: drop for good
            ratio = instance.set_cost(set_id) / fresh
            if bucket_of(ratio) > current_key:
                push(set_id, ratio)  # migrated to a worse bucket
                continue
            # Within (1+epsilon) of the best current ratio: take it.
            selected.append(set_id)
            total_cost += instance.set_cost(set_id)
            covered |= fresh_mask
            num_covered += fresh
            if num_covered == universe_size:
                break

    solution = WSCSolution(selected, total_cost)
    instance.verify_solution(solution)
    return solution
