"""Disk-friendly bucketed greedy for WSC [Cormode, Karloff & Wirth,
CIKM 2010] — the efficient-greedy reference the paper cites for
Algorithm 3's inner loop.  Guarantee: ``(1+ε)(ln Δ + 1)`` times
optimal.

Shim over the kernel layer: the bucket-sequential implementation lives
in the ``pyjit`` backend (with a batched variant in ``array``), reached
through :mod:`repro.core.kernels.registry`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.kernels.registry import get_backend
from repro.setcover.instance import WSCInstance, WSCSolution


def bucket_greedy_wsc(
    instance: WSCInstance, epsilon: float = 0.1, backend: Optional[str] = None
) -> WSCSolution:
    """Solve WSC with the bucketed greedy.

    ``epsilon`` trades quality for movement: larger values mean fewer
    bucket migrations and a looser ``(1+ε)`` factor on the greedy
    ratio.  ``backend`` overrides the active kernel backend.
    """
    return get_backend(backend).bucket_greedy_wsc(instance, epsilon)
