"""Weighted Set Cover instances (Definition 2.4).

A :class:`WSCInstance` owns a universe of elements and a collection of
weighted sets.  Elements and sets carry arbitrary hashable labels so the
MC³ → WSC reduction can use ``(property, query)`` pairs and classifiers
directly; internally everything is dense integer ids.

The instance exposes the two parameters the paper's bounds are stated
in: the *frequency* ``f`` (max number of sets any element belongs to)
and the *degree* ``Δ`` (cardinality of the largest set).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidInstanceError, UncoverableQueryError


class WSCSolution:
    """A selection of sets with its total cost."""

    __slots__ = ("set_ids", "cost")

    def __init__(self, set_ids: Iterable[int], cost: float):
        self.set_ids: Tuple[int, ...] = tuple(set_ids)
        self.cost = float(cost)

    def __len__(self) -> int:
        return len(self.set_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WSCSolution cost={self.cost} sets={len(self.set_ids)}>"


class WSCInstance:
    """Universe + weighted sets, with validation and parameter analysis."""

    def __init__(self) -> None:
        self._element_ids: Dict[Hashable, int] = {}
        self._element_labels: List[Hashable] = []
        self._set_labels: List[Hashable] = []
        self._set_members: List[List[int]] = []
        self._set_costs: List[float] = []
        self._element_sets: List[List[int]] = []  # element id -> set ids
        self._member_masks: Optional[List[int]] = None  # lazy, see member_masks()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_element(self, label: Hashable) -> int:
        """Register a universe element; idempotent, returns its id."""
        if label in self._element_ids:
            return self._element_ids[label]
        element_id = len(self._element_labels)
        self._element_ids[label] = element_id
        self._element_labels.append(label)
        self._element_sets.append([])
        return element_id

    def add_set(self, label: Hashable, members: Iterable[Hashable], cost: float) -> int:
        """Add a weighted set over (possibly new) element labels.

        Infinite or NaN costs are rejected — the convention, as in the
        paper, is that unavailable sets are simply not part of the input.
        """
        if not math.isfinite(cost) or cost < 0:
            raise InvalidInstanceError(f"set cost must be finite and >= 0, got {cost}")
        member_ids = sorted({self.add_element(m) for m in members})
        if not member_ids:
            raise InvalidInstanceError(f"set {label!r} has no elements")
        set_id = len(self._set_labels)
        self._set_labels.append(label)
        self._set_members.append(member_ids)
        self._set_costs.append(float(cost))
        for element_id in member_ids:
            self._element_sets[element_id].append(set_id)
        self._member_masks = None
        return set_id

    def add_set_ids(self, label: Hashable, member_ids: Iterable[int], cost: float) -> int:
        """Add a weighted set over already-registered element *ids*.

        Fast path for builders that track dense ids themselves (the
        bitmask MC³ → WSC reduction): skips the per-member label lookup
        of :meth:`add_set`.  Ids must come from prior
        :meth:`add_element` calls; unknown ids raise.
        """
        if not math.isfinite(cost) or cost < 0:
            raise InvalidInstanceError(f"set cost must be finite and >= 0, got {cost}")
        ordered = sorted(set(member_ids))
        if not ordered:
            raise InvalidInstanceError(f"set {label!r} has no elements")
        if ordered[0] < 0 or ordered[-1] >= len(self._element_labels):
            raise InvalidInstanceError(
                f"set {label!r} references unregistered element ids"
            )
        set_id = len(self._set_labels)
        self._set_labels.append(label)
        self._set_members.append(ordered)
        self._set_costs.append(float(cost))
        for element_id in ordered:
            self._element_sets[element_id].append(set_id)
        self._member_masks = None
        return set_id

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def universe_size(self) -> int:
        return len(self._element_labels)

    @property
    def num_sets(self) -> int:
        return len(self._set_labels)

    def element_label(self, element_id: int) -> Hashable:
        return self._element_labels[element_id]

    def set_label(self, set_id: int) -> Hashable:
        return self._set_labels[set_id]

    def set_members(self, set_id: int) -> List[int]:
        return self._set_members[set_id]

    def set_cost(self, set_id: int) -> float:
        return self._set_costs[set_id]

    def set_costs(self) -> List[float]:
        """All set costs, indexed by set id (the backing list — do not
        mutate).  Lets batch kernels grab every cost in one call instead
        of ``num_sets`` :meth:`set_cost` round-trips."""
        return self._set_costs

    def sets_containing(self, element_id: int) -> List[int]:
        return self._element_sets[element_id]

    def member_masks(self) -> List[int]:
        """Per-set member bitmasks over element ids (bit ``e`` ⇔ element
        ``e`` belongs to the set).

        Built lazily on first use and cached until the instance grows;
        the greedy solvers use these so "freshly covered" is a popcount
        of ``members & ~covered`` instead of a per-element scan.
        """
        if self._member_masks is None:
            # Build each mask in a byte buffer and convert once: repeated
            # ``mask |= 1 << e`` on a python int is O(universe/64) per
            # member (the big int is copied every time), which turns
            # scale-tier universes into minutes; setting bits in a
            # bytearray is O(1) per member and ``int.from_bytes`` is a
            # single C pass.  The resulting masks are identical.
            nbytes = (len(self._element_labels) + 7) >> 3
            masks: List[int] = []
            for members in self._set_members:
                buf = bytearray(nbytes)
                for element_id in members:
                    buf[element_id >> 3] |= 1 << (element_id & 7)
                masks.append(int.from_bytes(buf, "little"))
            self._member_masks = masks
        return self._member_masks

    def solution_labels(self, solution: WSCSolution) -> List[Hashable]:
        """Labels of the selected sets (deterministic order)."""
        return [self._set_labels[set_id] for set_id in solution.set_ids]

    # ------------------------------------------------------------------
    # Parameters and validation
    # ------------------------------------------------------------------

    def frequency(self) -> int:
        """``f``: maximum number of sets any element belongs to (0 for an
        empty universe)."""
        if not self._element_sets:
            return 0
        return max(len(sets) for sets in self._element_sets)

    def degree(self) -> int:
        """``Δ``: cardinality of the largest set (0 if no sets)."""
        if not self._set_members:
            return 0
        return max(len(members) for members in self._set_members)

    def validate_coverable(self) -> None:
        """Every element must belong to at least one set."""
        for element_id, sets in enumerate(self._element_sets):
            if not sets:
                raise UncoverableQueryError(
                    frozenset([self._element_labels[element_id]]),
                    f"WSC element {self._element_labels[element_id]!r} "
                    "belongs to no set",
                )

    def verify_solution(self, solution: WSCSolution) -> None:
        """Independent feasibility + cost check."""
        covered = set()
        total = 0.0
        for set_id in solution.set_ids:
            covered.update(self._set_members[set_id])
            total += self._set_costs[set_id]
        if len(covered) != self.universe_size:
            missing = self.universe_size - len(covered)
            raise InvalidInstanceError(f"WSC solution leaves {missing} elements uncovered")
        if not math.isclose(total, solution.cost, rel_tol=1e-9, abs_tol=1e-9):
            raise InvalidInstanceError(
                f"WSC solution cost mismatch: recorded {solution.cost}, actual {total}"
            )

    def prune_redundant(self, set_ids: Sequence[int]) -> List[int]:
        """Drop sets that are redundant in the given cover.

        Iterates most-expensive-first and removes any set whose elements
        remain covered without it.  Used to post-process the LP rounding
        (removals only lower the cost, so approximation guarantees are
        preserved).
        """
        selected = list(set_ids)
        coverage_count = [0] * self.universe_size
        for set_id in selected:
            for element_id in self._set_members[set_id]:
                coverage_count[element_id] += 1
        for set_id in sorted(selected, key=lambda sid: -self._set_costs[sid]):
            if all(coverage_count[e] >= 2 for e in self._set_members[set_id]):
                selected.remove(set_id)
                for element_id in self._set_members[set_id]:
                    coverage_count[element_id] -= 1
        return selected

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WSCInstance |U|={self.universe_size} m={self.num_sets} "
            f"f={self.frequency()} deg={self.degree()}>"
        )
