"""LP-relaxation rounding for WSC: the classic ``f``-approximation.

Solve the linear relaxation

    min  Σ c_s · x_s
    s.t. Σ_{s ∋ e} x_s ≥ 1   for every element e
         0 ≤ x_s ≤ 1

and select every set with ``x_s ≥ 1/f`` where ``f`` is the instance
frequency.  Feasibility: each element's constraint sums at most ``f``
variables, so at least one of them is ``≥ 1/f``.  Cost: selected
variables are inflated by at most ``f``, giving ``f · OPT_LP ≤ f · OPT``
(Theorem 2.6, [Vazirani]).

The relaxation is solved with SciPy's HiGHS backend on a sparse
constraint matrix.  For instances beyond :data:`DEFAULT_SIZE_LIMIT`
nonzeros the caller should prefer the LP-free primal–dual algorithm in
:mod:`repro.setcover.primal_dual`, which has the same guarantee.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import SolverError
from repro.setcover.instance import WSCInstance, WSCSolution

#: Above this many constraint-matrix nonzeros the general solver switches
#: to the primal–dual algorithm; HiGHS handles more, but wall-clock grows
#: steeply and the guarantee is identical.
DEFAULT_SIZE_LIMIT = 2_000_000


def lp_nonzeros(instance: WSCInstance) -> int:
    """Number of nonzeros the LP constraint matrix would have."""
    return sum(len(instance.set_members(set_id)) for set_id in range(instance.num_sets))


def lp_relaxation(instance: WSCInstance) -> np.ndarray:
    """Solve the WSC linear relaxation; returns the fractional ``x``."""
    instance.validate_coverable()
    num_sets = instance.num_sets
    universe = instance.universe_size

    rows, cols = [], []
    for set_id in range(num_sets):
        for element_id in instance.set_members(set_id):
            rows.append(element_id)
            cols.append(set_id)
    data = np.ones(len(rows))
    # linprog wants A_ub x <= b_ub; our constraints are A x >= 1.
    matrix = sparse.csr_matrix(
        (-data, (np.array(rows), np.array(cols))), shape=(universe, num_sets)
    )
    costs = np.array([instance.set_cost(set_id) for set_id in range(num_sets)])
    upper = -np.ones(universe)

    result = linprog(
        c=costs,
        A_ub=matrix,
        b_ub=upper,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"LP relaxation failed: {result.message}")
    return result.x


def lp_rounding_wsc(instance: WSCInstance, prune: bool = False) -> WSCSolution:
    """The ``f``-approximation: round the LP relaxation at threshold 1/f.

    ``prune=True`` additionally drops redundant sets (an extension beyond
    the paper's algorithm — it can only improve the cost and preserves
    the guarantee; the redundancy-pruning ablation measures its effect).
    """
    frequency = instance.frequency()
    if frequency == 0:
        raise SolverError("instance has an empty universe")
    x = lp_relaxation(instance)
    threshold = 1.0 / frequency
    # Guard against solver round-off just below the threshold.
    epsilon = 1e-9
    selected = [set_id for set_id, value in enumerate(x) if value >= threshold - epsilon]
    if prune:
        selected = instance.prune_redundant(selected)
    cost = sum(instance.set_cost(set_id) for set_id in selected)
    solution = WSCSolution(selected, cost)
    instance.verify_solution(solution)
    return solution


def lp_lower_bound(instance: WSCInstance) -> float:
    """Optimal value of the relaxation — a valid lower bound on OPT.

    Used by the exact branch-and-bound and by EXPERIMENTS.md to report
    optimality gaps on instances too large to solve exactly.
    """
    x = lp_relaxation(instance)
    costs = np.array([instance.set_cost(set_id) for set_id in range(instance.num_sets)])
    return float(np.dot(costs, x))
