"""Content-addressed component-solution cache.

The preprocessing step splits every workload into property-disjoint
components, and :func:`repro.core.bitspace.component_fingerprint` hashes
one component's *entire* solve-relevant content — interned property
grid, query masks, candidate costs, and every output-affecting knob
(solver token, route, kernel backend, resilience rung slot).  That makes
a component solution **content-addressed**: a fingerprint hit is
provably the same answer a fresh solve would produce, so repeated
traffic (sweep repetitions, nested subset prefixes, incremental batch
residuals, a future planner daemon) amortizes to O(lookup) instead of
O(solve).

Two backends implement the :class:`SolutionCache` protocol:

* :class:`MemorySolutionCache` — an in-process LRU with byte and entry
  budgets; the process-wide instance is shared across solver objects so
  hits accrue across independent ``solve()`` calls;
* :class:`DiskSolutionCache` — an on-disk content-addressed store,
  sharded by fingerprint prefix, written atomically (temp file +
  ``os.replace``) in a versioned JSON entry format, with an
  oldest-first byte-budget sweep.

Entries store the selected classifiers *and* the per-component details
dict, both in canonical sorted order, so a warm run reproduces the cold
run's solver-level details verbatim — bit-identical output is the
cache's contract, not merely its goal.  The engine only inserts
fully-verified, non-degraded outcomes (never :class:`~repro.engine.resilience.PartialSolution`
material, never fallback-rung answers — see
:func:`repro.engine.engine.SolveEngine.run`), and every insert is
re-checked by the independent coverage verifier first.

Configuration mirrors the kernel-backend registry: a choice string
(``"off"``/``"memory"``/``"disk"``), a process default seeded once at
import from ``REPRO_SOLUTION_CACHE`` (directory and budget from
``REPRO_SOLUTION_CACHE_DIR`` / ``REPRO_SOLUTION_CACHE_MB``), an
explicit :func:`set_default_cache` override, and memoized shared
instances per normalized :class:`CacheConfig`.  Configs are plain
picklable dataclasses so experiment workers can carry the *spec* across
process boundaries; cache objects themselves never cross it.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Protocol, Tuple, runtime_checkable

from repro.core.properties import Classifier, classifier_sort_key
from repro.exceptions import SolverError

#: Bumped whenever the serialized entry layout changes; decoders treat
#: any other version as a miss, so stale stores degrade to re-solves.
ENTRY_VERSION = 1

#: Environment variables consulted once, at import, for the process-wide
#: default cache configuration (mirrors ``REPRO_KERNEL_BACKEND``).
CACHE_ENV_VAR = "REPRO_SOLUTION_CACHE"
CACHE_DIR_ENV_VAR = "REPRO_SOLUTION_CACHE_DIR"
CACHE_MB_ENV_VAR = "REPRO_SOLUTION_CACHE_MB"

#: Accepted choice strings for CLI flags and the environment default.
CACHE_CHOICES: Tuple[str, ...] = ("off", "memory", "disk")

DEFAULT_MAX_MB = 64.0
DEFAULT_MAX_ENTRIES = 4096

#: Fingerprint-prefix length used for disk sharding: 256 buckets keeps
#: directory listings short up to ~10^5 entries.
_SHARD_CHARS = 2


# ----------------------------------------------------------------------
# Entry codec
# ----------------------------------------------------------------------


def encode_entry(
    fingerprint: str,
    classifiers: FrozenSet[Classifier],
    details: Dict[str, object],
) -> Optional[bytes]:
    """Serialize one component solution to the versioned entry format.

    Classifiers are rendered as sorted lists of sorted property names
    (``classifier_sort_key`` order — the same canonical order the rest
    of the package uses), and the JSON itself is emitted with sorted
    keys, so identical solutions always serialize to identical bytes.
    Returns ``None`` when the details dict is not JSON-serializable —
    the caller must then skip the insert rather than cache a lossy
    approximation of the outcome.
    """
    ordered = sorted(classifiers, key=classifier_sort_key)
    payload = {
        "version": ENTRY_VERSION,
        "fingerprint": fingerprint,
        "classifiers": [sorted(clf) for clf in ordered],
        "details": details,
    }
    try:
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    return text.encode("utf-8")


def decode_entry(
    blob: bytes, fingerprint: str
) -> Optional[Tuple[FrozenSet[Classifier], Dict[str, object]]]:
    """Inverse of :func:`encode_entry`; ``None`` on any mismatch.

    Corrupt bytes, a foreign entry version, or a fingerprint that does
    not match the requested one (a sharding bug or a truncated rename)
    all decode to ``None`` — the caller treats that as a miss and
    re-solves, so a damaged store can degrade performance but never
    correctness.
    """
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != ENTRY_VERSION:
        return None
    if payload.get("fingerprint") != fingerprint:
        return None
    raw = payload.get("classifiers")
    details = payload.get("details")
    if not isinstance(raw, list) or not isinstance(details, dict):
        return None
    try:
        classifiers = frozenset(frozenset(props) for props in raw)
    except TypeError:
        return None
    return classifiers, details


# ----------------------------------------------------------------------
# The protocol and its two backends
# ----------------------------------------------------------------------


@runtime_checkable
class SolutionCache(Protocol):
    """Structural type of a component-solution store.

    ``get``/``put`` move opaque encoded entry blobs; the engine owns
    the codec and the insert policy.  ``stats`` must be cheap enough to
    render into per-run telemetry.
    """

    kind: str

    def get(self, fingerprint: str) -> Optional[bytes]:
        """The stored blob for ``fingerprint``, or ``None`` on a miss."""
        ...

    def put(self, fingerprint: str, blob: bytes) -> bool:
        """Store ``blob``; False when refused (present, over budget)."""
        ...

    def stats(self) -> Dict[str, object]:
        """Counters: entries, bytes, hits, misses, inserts, evictions."""
        ...

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        ...


# Both built-in backends additionally expose ``invalidate(fingerprint)``
# — called by the engine when a fetched blob fails to decode, so a
# corrupt entry is unlinked (and counted as a ``corrupt_eviction``)
# instead of being re-read, re-failed, and re-charged against the byte
# budget on every lookup.  It is deliberately *not* part of the
# :class:`SolutionCache` protocol: bespoke stores handed in by tests or
# embedders keep working, and the engine calls it via ``getattr``.


class _StatCounters:
    """Shared lifetime counters for both backends."""

    __slots__ = ("hits", "misses", "inserts", "evictions", "corrupt_evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.corrupt_evictions = 0


class MemorySolutionCache:
    """In-process LRU keyed by fingerprint, with entry and byte budgets.

    ``get`` refreshes recency; ``put`` evicts least-recently-used
    entries until both budgets hold.  A blob larger than the whole byte
    budget is refused outright instead of evicting everything for one
    entry.  Thread-safe: a future planner daemon may serve lookups from
    request threads.
    """

    kind = "memory"

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = int(DEFAULT_MAX_MB * 1_000_000),
    ):
        self.max_entries = max(1, int(max_entries))
        self.max_bytes = max(1, int(max_bytes))
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._counters = _StatCounters()

    def get(self, fingerprint: str) -> Optional[bytes]:
        with self._lock:
            blob = self._entries.get(fingerprint)
            if blob is None:
                self._counters.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._counters.hits += 1
            return blob

    def put(self, fingerprint: str, blob: bytes) -> bool:
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                return False
            if len(blob) > self.max_bytes:
                return False
            self._entries[fingerprint] = blob
            self._bytes += len(blob)
            self._counters.inserts += 1
            while self._entries and (
                len(self._entries) > self.max_entries or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self._counters.evictions += 1
            return True

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one corrupt entry (see module comment); True if present."""
        with self._lock:
            blob = self._entries.pop(fingerprint, None)
            if blob is None:
                return False
            self._bytes -= len(blob)
            self._counters.corrupt_evictions += 1
            return True

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "kind": self.kind,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self._counters.hits,
                "misses": self._counters.misses,
                "inserts": self._counters.inserts,
                "evictions": self._counters.evictions,
                "corrupt_evictions": self._counters.corrupt_evictions,
            }

    def clear(self) -> int:
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            return removed


class DiskSolutionCache:
    """On-disk content-addressed store, sharded by fingerprint prefix.

    Layout: ``<directory>/<fp[:2]>/<fp>.json``.  Writes go to a
    temporary file in the destination shard followed by ``os.replace``,
    so readers (including concurrent processes) only ever observe
    complete entries; content-addressing makes concurrent writers of the
    same fingerprint write identical bytes, so the race is benign.
    A byte budget is enforced after inserts by evicting oldest-mtime
    entries first (the running total is seeded by one directory scan on
    first use, then maintained incrementally).
    """

    kind = "disk"

    def __init__(
        self,
        directory: str,
        max_bytes: int = int(DEFAULT_MAX_MB * 1_000_000),
    ):
        self.directory = os.path.abspath(os.path.expanduser(directory))
        self.max_bytes = max(1, int(max_bytes))
        self._bytes: Optional[int] = None  # lazily seeded by _scan()
        self._lock = threading.Lock()
        self._counters = _StatCounters()

    # -- paths ---------------------------------------------------------

    def _path(self, fingerprint: str) -> str:
        shard = fingerprint[:_SHARD_CHARS] or "00"
        return os.path.join(self.directory, shard, fingerprint + ".json")

    def _entry_paths(self) -> List[str]:
        paths: List[str] = []
        if not os.path.isdir(self.directory):
            return paths
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    def _scan(self) -> int:
        total = 0
        for path in self._entry_paths():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
        return total

    # -- protocol ------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[bytes]:
        try:
            with open(self._path(fingerprint), "rb") as handle:
                blob = handle.read()
        except OSError:
            with self._lock:
                self._counters.misses += 1
            return None
        with self._lock:
            self._counters.hits += 1
        return blob

    def put(self, fingerprint: str, blob: bytes) -> bool:
        if len(blob) > self.max_bytes:
            return False
        path = self._path(fingerprint)
        with self._lock:
            if self._bytes is None:
                self._bytes = self._scan()
            if os.path.exists(path):
                return False
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", dir=os.path.dirname(path)
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return False
            self._bytes += len(blob)
            self._counters.inserts += 1
            if self._bytes > self.max_bytes:
                self._evict_oldest()
            return True

    def _evict_oldest(self) -> None:
        """Drop oldest-mtime entries until the byte budget holds.
        Caller holds the lock and has seeded ``self._bytes``."""
        aged: List[Tuple[float, str, int]] = []
        for path in self._entry_paths():
            try:
                status = os.stat(path)
            except OSError:
                continue
            aged.append((status.st_mtime, path, status.st_size))
        aged.sort()
        recount = sum(size for _, _, size in aged)
        for _, path, size in aged:
            if recount <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            recount -= size
            self._counters.evictions += 1
        self._bytes = recount

    def invalidate(self, fingerprint: str) -> bool:
        """Unlink one corrupt entry file (see module comment).

        Keeps the running byte tally honest, so the dead bytes stop
        counting against the budget; True when a file was removed.
        """
        path = self._path(fingerprint)
        with self._lock:
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:
                return False
            if self._bytes is not None:
                self._bytes = max(0, self._bytes - size)
            self._counters.corrupt_evictions += 1
            return True

    def stats(self) -> Dict[str, object]:
        paths = self._entry_paths()
        total = 0
        for path in paths:
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
        with self._lock:
            return {
                "kind": self.kind,
                "directory": self.directory,
                "entries": len(paths),
                "bytes": total,
                "max_bytes": self.max_bytes,
                "hits": self._counters.hits,
                "misses": self._counters.misses,
                "inserts": self._counters.inserts,
                "evictions": self._counters.evictions,
                "corrupt_evictions": self._counters.corrupt_evictions,
            }

    def clear(self) -> int:
        with self._lock:
            removed = 0
            for path in self._entry_paths():
                try:
                    os.unlink(path)
                except OSError:
                    continue
                removed += 1
            self._bytes = 0
            return removed


# ----------------------------------------------------------------------
# Configuration and resolution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheConfig:
    """A picklable cache *specification* (the object that may cross
    process boundaries — cache instances themselves never do).

    ``backend`` is a :data:`CACHE_CHOICES` string; ``directory`` applies
    to the disk backend only (``None`` = the process default directory);
    ``max_mb``/``max_entries`` default to the module budgets.
    """

    backend: str
    directory: Optional[str] = None
    max_mb: Optional[float] = None
    max_entries: Optional[int] = None


def cache_choices() -> Tuple[str, ...]:
    """Accepted ``--cache`` choice strings."""
    return CACHE_CHOICES


def default_cache_dir() -> str:
    """Disk-store directory a ``None`` directory resolves to:
    ``REPRO_SOLUTION_CACHE_DIR`` (sampled once at import), else
    ``~/.cache/mc3/solutions``."""
    if _ENV_DIR:
        return os.path.abspath(os.path.expanduser(_ENV_DIR))
    return os.path.join(os.path.expanduser("~"), ".cache", "mc3", "solutions")


def normalize_config(spec: object) -> Optional[CacheConfig]:
    """Normalize a cache spec to a concrete :class:`CacheConfig`.

    ``None`` means "the process default" (an explicit
    :func:`set_default_cache`, else the ``REPRO_SOLUTION_CACHE``
    environment choice, else off).  Strings are choice names; configs
    pass through with directory/budget defaults filled in.  Returns
    ``None`` when caching is off.
    """
    if spec is None:
        spec = _PROCESS_CONFIG if _PROCESS_CONFIG is not None else _env_config()
        if spec is None:
            return None
    if isinstance(spec, str):
        if spec not in CACHE_CHOICES:
            known = ", ".join(CACHE_CHOICES)
            raise SolverError(f"unknown cache backend {spec!r} (known: {known})")
        spec = CacheConfig(backend=spec)
    if not isinstance(spec, CacheConfig):
        raise SolverError(
            f"cache spec must be a choice string or CacheConfig, got {type(spec).__name__}"
        )
    if spec.backend == "off":
        return None
    if spec.backend not in CACHE_CHOICES:
        known = ", ".join(CACHE_CHOICES)
        raise SolverError(f"unknown cache backend {spec.backend!r} (known: {known})")
    directory = spec.directory
    if spec.backend == "disk" and directory is None:
        directory = default_cache_dir()
    max_mb = spec.max_mb if spec.max_mb is not None else _env_max_mb()
    max_entries = (
        spec.max_entries if spec.max_entries is not None else DEFAULT_MAX_ENTRIES
    )
    return CacheConfig(
        backend=spec.backend,
        directory=directory,
        max_mb=max_mb,
        max_entries=max_entries,
    )


def resolve_cache(spec: object = None) -> Optional[SolutionCache]:
    """Resolve a spec to a live cache instance, or ``None`` for off.

    Instances are memoized per normalized config, so every solver in the
    process shares one store per configuration — which is what lets
    hits accrue across independent ``solve()`` calls.  A
    :class:`SolutionCache` instance passes through unchanged (tests and
    embedders may hand the engine a bespoke store).
    """
    if isinstance(spec, (MemorySolutionCache, DiskSolutionCache)):
        return spec
    if spec is not None and not isinstance(spec, (str, CacheConfig)):
        if isinstance(spec, SolutionCache):
            return spec
    config = normalize_config(spec)
    if config is None:
        return None
    key = (config.backend, config.directory, config.max_mb, config.max_entries)
    instance = _INSTANCES.get(key)
    if instance is None:
        max_bytes = int((config.max_mb or DEFAULT_MAX_MB) * 1_000_000)
        if config.backend == "memory":
            instance = MemorySolutionCache(
                max_entries=config.max_entries or DEFAULT_MAX_ENTRIES,
                max_bytes=max_bytes,
            )
        else:
            instance = DiskSolutionCache(config.directory, max_bytes=max_bytes)
        _INSTANCES[key] = instance
    return instance


def set_default_cache(spec: object) -> None:
    """Install the process-wide default (e.g. from a CLI flag).

    ``None`` restores the import-time environment default.  The spec is
    normalized eagerly so a bad choice string fails at configuration
    time, not at the first solve.
    """
    global _PROCESS_CONFIG
    if spec is None:
        _PROCESS_CONFIG = None
        return
    config = normalize_config(spec)
    _PROCESS_CONFIG = config if config is not None else CacheConfig(backend="off")


def _env_config() -> Optional[CacheConfig]:
    if not _ENV_CHOICE or _ENV_CHOICE == "off":
        return None
    if _ENV_CHOICE not in CACHE_CHOICES:
        return None  # a typo'd env var must not break every solve
    return CacheConfig(backend=_ENV_CHOICE)


def _env_max_mb() -> float:
    if _ENV_MB:
        try:
            return max(0.001, float(_ENV_MB))
        except ValueError:
            pass
    return DEFAULT_MAX_MB


# One-time configuration reads, not per-solve nondeterminism: sampled at
# import, so a single process can never observe two different
# environment-derived cache defaults (same pattern as the kernel
# registry's REPRO_KERNEL_BACKEND).
_ENV_CHOICE = os.environ.get(CACHE_ENV_VAR)
_ENV_DIR = os.environ.get(CACHE_DIR_ENV_VAR)
_ENV_MB = os.environ.get(CACHE_MB_ENV_VAR)

#: Explicit process-wide override installed by :func:`set_default_cache`.
_PROCESS_CONFIG: Optional[CacheConfig] = None

#: Memoized instances per normalized config key.
_INSTANCES: Dict[Tuple[object, ...], SolutionCache] = {}


# ----------------------------------------------------------------------
# Engine-side helpers
# ----------------------------------------------------------------------


def cache_token_of(target: object) -> Optional[Tuple[object, ...]]:
    """The dispatch target's cache token, or ``None`` for uncacheable.

    Solvers expose a ``cache_token()`` method, routes a ``cache_token``
    tuple attribute.  A target without either (a custom
    ``SolvesComponents`` object the engine knows nothing about) is never
    cached — the safe default, since an unknown knob the token misses
    would silently serve wrong answers.
    """
    token = getattr(target, "cache_token", None)
    if token is None:
        return None
    if callable(token):
        token = token()
    if token is None:
        return None
    return tuple(token)


class CacheRunStats:
    """Per-engine-run cache counters, rendered under
    ``details["engine"]["cache"]``; the backend's lifetime counters are
    attached as the ``store`` sub-dict."""

    __slots__ = (
        "kind",
        "hits",
        "misses",
        "uncacheable",
        "inserts",
        "insert_skips",
        "lookup_seconds",
        "insert_seconds",
    )

    def __init__(self, kind: str):
        self.kind = kind
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0
        self.inserts = 0
        self.insert_skips = 0
        self.lookup_seconds = 0.0
        self.insert_seconds = 0.0

    def as_dict(self, store: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        lookups = self.hits + self.misses
        rendered: Dict[str, object] = {
            "kind": self.kind,
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
            "inserts": self.inserts,
            "insert_skips": self.insert_skips,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "lookup_seconds": self.lookup_seconds,
            "insert_seconds": self.insert_seconds,
        }
        if store is not None:
            rendered["store"] = store
        return rendered
