"""Component execution strategies: sequential and process-pool.

The engine hands the executor a list of ``(index, solver, component,
route)`` tasks; the executor returns :class:`ComponentOutcome` objects
*in index order* regardless of completion order, which is what makes
parallel runs bit-identical to sequential ones — the merge stage never
observes scheduling noise.

Process-pool notes:

* Workers receive pickled ``(solver, component)`` pairs.  Every shipped
  cost model in :mod:`repro.core.costs` pickles cleanly;
  ``CallableCost`` around a lambda does not (use a module-level
  function), mirroring the constraint of
  :mod:`repro.experiments.parallel`.
* Solver exceptions (e.g. :class:`~repro.exceptions.UncoverableQueryError`)
  propagate to the caller with their original type, annotated with the
  failing component's index (``exc.component_index``) and the worker's
  formatted traceback (``exc.worker_traceback``) — the remote traceback
  itself does not survive pickling, so the worker captures it as a
  string before re-raising.
* The pool is created with an explicit ``fork`` start method wherever
  the platform offers one (:func:`pool_context`), because fork is what
  keeps worker hash seeds identical to the parent's — under ``spawn``
  each worker re-randomises ``PYTHONHASHSEED`` and hash-order-sensitive
  iteration could diverge between sequential and parallel runs.
  Platforms without fork fall back to the default start method; the
  engine's determinism then rests entirely on the kernels being
  hash-order clean (which reprolint RPL101/RPL102 enforce).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.instance import MC3Instance
from repro.core.kernels.registry import use_backend
from repro.core.properties import Classifier
from repro.engine.component import ComponentOutcome, SolvesComponents
from repro.exceptions import ReproError

#: One unit of work: (component index, solver-like, component, route name,
#: kernel backend name).  The backend is resolved by the scheduler, so a
#: worker process activates the same concrete backend the parent chose.
ComponentTask = Tuple[int, SolvesComponents, MC3Instance, Optional[str], Optional[str]]


def pool_context():
    """The multiprocessing context engine pools are built on.

    Explicitly ``fork`` where available (POSIX): forked workers inherit
    the parent's hash seed, preserving the bit-identical-workers
    invariant documented above.  Returns ``None`` (the platform
    default) only where fork does not exist, e.g. Windows.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _solve_one(
    task: ComponentTask,
) -> Tuple[
    int,
    FrozenSet[Classifier],
    Dict[str, object],
    float,
    int,
    Optional[str],
    Optional[str],
]:
    """Worker: solve one component, timed.  Module-level for pickling."""
    index, solver, component, route, backend = task
    started = time.perf_counter()
    try:
        with use_backend(backend):
            classifiers, details = solver.solve_component(component)
    except ReproError as exc:
        # Annotate in the worker, where the real traceback still exists.
        # Instance attributes survive pickling via the exception's state
        # dict, so the parent sees which component failed and why even
        # though the remote traceback object itself cannot cross the
        # process boundary.
        exc.component_index = index
        exc.worker_traceback = traceback.format_exc()
        raise
    seconds = time.perf_counter() - started
    return index, frozenset(classifiers), details, seconds, component.n, route, backend


def _to_outcomes(rows) -> List[ComponentOutcome]:
    outcomes = [
        ComponentOutcome(
            index, classifiers, details, seconds, size, route, backend=backend
        )
        for index, classifiers, details, seconds, size, route, backend in rows
    ]
    outcomes.sort(key=lambda outcome: outcome.index)
    return outcomes


def run_sequential(tasks: List[ComponentTask]) -> List[ComponentOutcome]:
    """Solve every component in the calling process, in index order."""
    return _to_outcomes(_solve_one(task) for task in tasks)


def run_process_pool(tasks: List[ComponentTask], jobs: int) -> List[ComponentOutcome]:
    """Fan components out over ``jobs`` worker processes.

    ``pool.map`` preserves submission order, and outcomes are re-sorted
    by index anyway, so the merge stage sees the identical order the
    sequential executor produces.
    """
    workers = max(1, min(jobs, len(tasks)))
    with ProcessPoolExecutor(max_workers=workers, mp_context=pool_context()) as pool:
        rows = list(pool.map(_solve_one, tasks))
    return _to_outcomes(rows)


def run_components(
    tasks: List[ComponentTask], jobs: int = 1
) -> List[ComponentOutcome]:
    """Dispatch tasks with the strategy implied by ``jobs``.

    ``jobs <= 1`` (or fewer than two tasks) runs sequentially — a pool
    of one worker would pay pickling and fork overhead for nothing.
    """
    if jobs <= 1 or len(tasks) < 2:
        return run_sequential(tasks)
    return run_process_pool(tasks, jobs)
