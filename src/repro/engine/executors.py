"""Component execution strategies: sequential and process-pool.

The engine hands the executor a list of ``(index, solver, component,
route)`` tasks; the executor returns :class:`ComponentOutcome` objects
*in index order* regardless of completion order, which is what makes
parallel runs bit-identical to sequential ones — the merge stage never
observes scheduling noise.

Process-pool notes:

* Workers receive pickled ``(solver, component)`` pairs.  Every shipped
  cost model in :mod:`repro.core.costs` pickles cleanly;
  ``CallableCost`` around a lambda does not (use a module-level
  function), mirroring the constraint of
  :mod:`repro.experiments.parallel`.
* Solver exceptions (e.g. :class:`~repro.exceptions.UncoverableQueryError`)
  propagate to the caller exactly as in sequential mode.
* On POSIX the default ``fork`` start method keeps worker hash seeds
  identical to the parent's, so even hash-order-sensitive iteration
  cannot diverge between modes.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.instance import MC3Instance
from repro.core.properties import Classifier
from repro.engine.component import ComponentOutcome, SolvesComponents

#: One unit of work: (component index, solver-like, component, route name).
ComponentTask = Tuple[int, SolvesComponents, MC3Instance, Optional[str]]


def _solve_one(
    task: ComponentTask,
) -> Tuple[int, FrozenSet[Classifier], Dict[str, object], float, int, Optional[str]]:
    """Worker: solve one component, timed.  Module-level for pickling."""
    index, solver, component, route = task
    started = time.perf_counter()
    classifiers, details = solver.solve_component(component)
    seconds = time.perf_counter() - started
    return index, frozenset(classifiers), details, seconds, component.n, route


def _to_outcomes(rows) -> List[ComponentOutcome]:
    outcomes = [
        ComponentOutcome(index, classifiers, details, seconds, size, route)
        for index, classifiers, details, seconds, size, route in rows
    ]
    outcomes.sort(key=lambda outcome: outcome.index)
    return outcomes


def run_sequential(tasks: List[ComponentTask]) -> List[ComponentOutcome]:
    """Solve every component in the calling process, in index order."""
    return _to_outcomes(_solve_one(task) for task in tasks)


def run_process_pool(tasks: List[ComponentTask], jobs: int) -> List[ComponentOutcome]:
    """Fan components out over ``jobs`` worker processes.

    ``pool.map`` preserves submission order, and outcomes are re-sorted
    by index anyway, so the merge stage sees the identical order the
    sequential executor produces.
    """
    workers = max(1, min(jobs, len(tasks)))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        rows = list(pool.map(_solve_one, tasks))
    return _to_outcomes(rows)


def run_components(
    tasks: List[ComponentTask], jobs: int = 1
) -> List[ComponentOutcome]:
    """Dispatch tasks with the strategy implied by ``jobs``.

    ``jobs <= 1`` (or fewer than two tasks) runs sequentially — a pool
    of one worker would pay pickling and fork overhead for nothing.
    """
    if jobs <= 1 or len(tasks) < 2:
        return run_sequential(tasks)
    return run_process_pool(tasks, jobs)
