"""The narrow contract between the engine and a component solver.

A *component solver* is any object with

* ``name`` — short identifier for reports, and
* ``solve_component(component) -> (set[Classifier], dict)`` — solve one
  property-disjoint sub-instance, returning the selected classifiers and
  a free-form per-component details dict.

Because preprocessing (Algorithm 1, step 2) guarantees components share
no properties, composing per-component outputs is lossless (Observation
3.2) — the engine owns the composition, the solver owns only the single
component.  The contract is deliberately picklable-friendly: in
process-pool mode the engine ships ``(solver, component)`` pairs to
worker processes, so component solvers must not hold open resources.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Protocol, Set, Tuple, runtime_checkable

from repro.core.instance import MC3Instance
from repro.core.properties import Classifier


@runtime_checkable
class SolvesComponents(Protocol):
    """Structural type of what the engine dispatches to."""

    name: str

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        """Solve one property-disjoint component."""
        ...


class ComponentOutcome:
    """Result of solving one component, tagged with scheduling metadata.

    ``index`` is the component's position in the deterministic
    preprocessing order — merging iterates outcomes by index so parallel
    runs produce bit-identical results.  ``route`` names the engine
    routing rule that handled the component, or ``None`` when the
    default component solver did.

    Under a resilience policy (see :mod:`repro.engine.resilience`)
    ``rung`` names the fallback-chain rung that finally produced the
    answer (``"degraded"``/``"skipped"`` for the on_error outcomes) and
    ``attempts`` counts every attempt spent, including failed ones.
    Plain runs leave ``rung`` as ``None`` and ``attempts`` at 1.

    ``backend`` is the resolved kernel-backend name the component was
    solved under (``None`` for callers that bypass the engine's
    scheduler).
    """

    __slots__ = (
        "index",
        "classifiers",
        "details",
        "seconds",
        "size",
        "route",
        "rung",
        "attempts",
        "backend",
    )

    def __init__(
        self,
        index: int,
        classifiers: FrozenSet[Classifier],
        details: Dict[str, object],
        seconds: float,
        size: int,
        route: Optional[str] = None,
        rung: Optional[str] = None,
        attempts: int = 1,
        backend: Optional[str] = None,
    ):
        self.index = index
        self.classifiers = frozenset(classifiers)
        self.details = details
        self.seconds = seconds
        self.size = size
        self.route = route
        self.rung = rung
        self.attempts = attempts
        self.backend = backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        via = f" via {self.route}" if self.route else ""
        if self.rung is not None:
            via += f" rung={self.rung} attempts={self.attempts}"
        return (
            f"<ComponentOutcome #{self.index}: {len(self.classifiers)} classifiers, "
            f"{self.size} queries, {self.seconds:.3f}s{via}>"
        )
