"""Fault-tolerant component execution: budgets, fallback chains, policies.

One hung LP solve, one OOM-killed worker, or one ``SolverError`` in a
single component used to abort the whole engine run.  This module makes
the paper's implicit quality ladder (Algorithm 3 takes the better of
greedy and LP rounding, with primal–dual as the large-instance
fallback, Section 5) an explicit runtime mechanism:

* **budgets** — a per-attempt wall-clock ``timeout_seconds`` plus an
  optional retry count with a *deterministic* backoff schedule
  (``base * growth**n``; no RNG jitter — reprolint RPL102 applies to
  everything the engine runs);
* **fallback chains** — an ordered list of rungs; when an attempt
  fails (error, timeout, worker death, infeasible output) the next
  rung solves the *same* component.  Rungs are named entries of
  :data:`FALLBACK_RUNGS` (``"greedy"``, ``"sampled"``,
  ``"primal-dual"``, ``"k2-exact"``, ``"query-oriented"``) or any
  object satisfying the
  :class:`~repro.engine.component.SolvesComponents` contract;
* **worker-crash recovery** — a ``BrokenProcessPool`` re-runs the
  surviving in-flight tasks one at a time in isolated single-worker
  pools (so a second death is attributable), and the identified poison
  component is quarantined to the in-process sequential path;
* **an ``on_error`` policy** — ``"raise"`` (chain exhaustion raises
  :class:`~repro.exceptions.FallbackExhaustedError` with the full
  chain history), ``"degrade"`` (the component falls to the
  query-oriented rung of last resort, which is always feasible), or
  ``"skip"`` (the component's queries are left uncovered and recorded).

Every failed attempt becomes a :class:`ComponentFailure` carrying the
failed rung's name, the attempt number, and the worker's formatted
traceback; runs that degraded or skipped return a
:class:`PartialSolution` so callers can see exactly what they got.

Determinism contract: with a fixed chaos seed (see
:mod:`repro.devtools.chaos`) the sequence of (rung, attempt, failure
kind) per component — and therefore the final output — is bit-identical
across ``jobs=1`` and ``jobs=N``.  Timeout adjudication uses the
worker-measured solve time in both modes; the pool's preemptive
deadline only abandons attempts that overrun the budget plus a grace
margin, which a scheduled stall does deliberately.

:class:`~repro.exceptions.UncoverableQueryError` is *not* a fault: it
is a property of the data that no fallback rung can repair.  Under
``on_error="raise"`` it propagates unchanged; under ``"degrade"`` /
``"skip"`` the component is recorded as uncovered without burning the
rest of the chain.
"""

from __future__ import annotations

import math
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.bitspace import PropertySpace
from repro.core.coverage import verify_cover
from repro.core.instance import MC3Instance
from repro.core.kernels.registry import use_backend
from repro.core.mincover import min_cover_from_model
from repro.core.properties import Classifier, Query
from repro.core.solution import Solution
from repro.engine.component import ComponentOutcome, SolvesComponents
from repro.engine.executors import ComponentTask, _solve_one, pool_context
from repro.engine.routing import solve_component_k2
from repro.exceptions import (
    FallbackExhaustedError,
    InfeasibleSolutionError,
    ReproError,
    SolverError,
    UncoverableQueryError,
)
from repro.reductions import mc3_to_wsc
from repro.setcover import derive_seed, greedy_wsc, primal_dual_wsc, sampled_greedy_wsc

# ----------------------------------------------------------------------
# Fallback rungs
# ----------------------------------------------------------------------


class GreedyWSCRung:
    """Greedy weighted set cover — the cheap, always-available ladder rung."""

    name = "greedy"

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        space = PropertySpace.from_queries(component.queries)
        wsc = mc3_to_wsc(component, space=space)
        wsc_solution = greedy_wsc(wsc)
        return {wsc.set_label(set_id) for set_id in wsc_solution.set_ids}, {
            "rung": self.name
        }


class SampledGreedyRung:
    """Sampling-based sub-linear greedy — the large-component rung.

    Useful ahead of ``greedy`` in a chain serving huge components: the
    sampled solve touches a fraction of the universe per round, so it
    finishes inside budgets the exact-gain greedy would blow.  Small
    components take its built-in exactness fallback, so the rung is
    safe anywhere in a chain.  The per-component seed is derived from
    the rung seed and the component's queries (content digest), keeping
    chain outputs bit-identical across ``jobs`` and hash seeds.
    """

    name = "sampled"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        space = PropertySpace.from_queries(component.queries)
        wsc = mc3_to_wsc(component, space=space)
        wsc_solution = sampled_greedy_wsc(
            wsc, seed=derive_seed(self.seed, component.queries)
        )
        return {wsc.set_label(set_id) for set_id in wsc_solution.set_ids}, {
            "rung": self.name
        }


class PrimalDualRung:
    """Primal–dual WSC — the paper's linear-time large-instance fallback."""

    name = "primal-dual"

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        space = PropertySpace.from_queries(component.queries)
        wsc = mc3_to_wsc(component, space=space)
        wsc_solution = primal_dual_wsc(wsc)
        return {wsc.set_label(set_id) for set_id in wsc_solution.set_ids}, {
            "rung": self.name
        }


class K2ExactRung:
    """Exact max-flow solve; only valid when every query has length ≤ 2.

    On longer queries the Theorem 4.1 reduction raises
    :class:`~repro.exceptions.ReductionError`, which the chain treats as
    a failed rung — so ``k2-exact`` can safely lead a chain that also
    serves general components.
    """

    name = "k2-exact"

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        return solve_component_k2(component)


class QueryOrientedRung:
    """Cover every query independently — always feasible, never optimal.

    This is the rung of last resort and the built-in ``degrade`` target:
    each query gets its own minimum-cost cover (the full-query
    classifier when it is the cheapest, per the paper's query-oriented
    baseline; a cheapest classifier combination otherwise — residual
    components routinely price the full-query classifier at infinity
    after preprocessing rewrites the queries).  Sharing across queries
    is ignored entirely, which is what makes the rung unconditional.
    """

    name = "query-oriented"

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        selected: Set[Classifier] = set()
        for q in component.queries:
            cover = min_cover_from_model(q, component)
            if cover is None:
                raise UncoverableQueryError(q)
            selected.update(cover.classifiers)
        return selected, {"rung": self.name}


#: Named rung registry for CLI/config declarations (``--fallback``).
FALLBACK_RUNGS = {
    "greedy": GreedyWSCRung,
    "sampled": SampledGreedyRung,
    "primal-dual": PrimalDualRung,
    "k2-exact": K2ExactRung,
    "query-oriented": QueryOrientedRung,
}


def resolve_rung(spec) -> SolvesComponents:
    """A rung instance from a registry name or a SolvesComponents object."""
    if isinstance(spec, str):
        try:
            return FALLBACK_RUNGS[spec]()
        except KeyError:
            known = ", ".join(sorted(FALLBACK_RUNGS))
            raise SolverError(
                f"unknown fallback rung {spec!r} (known: {known})"
            ) from None
    if callable(getattr(spec, "solve_component", None)):
        return spec
    raise SolverError(
        f"fallback rung {spec!r} is neither a registry name nor a "
        "SolvesComponents object"
    )


# ----------------------------------------------------------------------
# Failure records and the partial solution
# ----------------------------------------------------------------------

#: Failure kinds recorded per attempt.  ``"breaker-open"`` is
#: synthesized (no solve ran): the rung's circuit breaker skipped the
#: attempt and the chain advanced straight to the next rung.
FAILURE_KINDS = ("error", "timeout", "crash", "infeasible", "uncoverable", "breaker-open")


@dataclass(frozen=True)
class ComponentFailure:
    """One failed attempt at solving one component.

    ``rung`` names the chain rung that failed, ``attempt`` is the
    0-based retry counter within that rung, ``kind`` is one of
    :data:`FAILURE_KINDS`, and ``traceback`` preserves the worker's
    formatted traceback when one crossed the process boundary (worker
    deaths have no traceback to preserve; a synthesized message says
    so).
    """

    index: int
    rung: str
    attempt: int
    kind: str
    error_type: str
    message: str
    traceback: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "rung": self.rung,
            "attempt": self.attempt,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }


class PartialSolution(Solution):
    """A solution that survived component failures.

    Behaves exactly like :class:`~repro.core.solution.Solution` for the
    covered part of the load, and additionally records what went wrong:
    ``failures`` (every failed attempt, in order), ``uncovered_queries``
    (non-empty only under ``on_error="skip"`` or for uncoverable
    components), and the indices of components that were degraded to the
    last-resort rung or skipped entirely.  :meth:`verify` checks the
    covered sub-load against the independent coverage checker, so a
    degraded-but-complete run still verifies end to end.
    """

    __slots__ = (
        "failures",
        "uncovered_queries",
        "degraded_components",
        "skipped_components",
    )

    def __init__(
        self,
        classifiers: Iterable[Classifier],
        cost: float,
        failures: Sequence[ComponentFailure] = (),
        uncovered_queries: Iterable[Query] = (),
        degraded_components: Sequence[int] = (),
        skipped_components: Sequence[int] = (),
    ):
        super().__init__(classifiers, cost)
        self.failures: Tuple[ComponentFailure, ...] = tuple(failures)
        self.uncovered_queries: FrozenSet[Query] = frozenset(uncovered_queries)
        self.degraded_components: Tuple[int, ...] = tuple(degraded_components)
        self.skipped_components: Tuple[int, ...] = tuple(skipped_components)

    @property
    def complete(self) -> bool:
        """Whether every query of the original load is covered."""
        return not self.uncovered_queries

    def verify(self, instance) -> "PartialSolution":
        """Verify feasibility of the covered sub-load and the recorded cost."""
        covered = [q for q in instance.queries if q not in self.uncovered_queries]
        verify_cover(covered, self.classifiers)
        expected = instance.total_weight(self.classifiers)
        if not math.isclose(expected, self.cost, rel_tol=1e-9, abs_tol=1e-9):
            raise InfeasibleSolutionError(
                f"recorded cost {self.cost} != instance pricing {expected}"
            )
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PartialSolution cost={self.cost} classifiers={len(self.classifiers)} "
            f"failures={len(self.failures)} uncovered={len(self.uncovered_queries)}>"
        )


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------

ON_ERROR_POLICIES = ("raise", "degrade", "skip")


@dataclass
class ResiliencePolicy:
    """Budgets, fallback chain, and failure policy for one engine run.

    Parameters
    ----------
    timeout_seconds:
        Per-attempt wall-clock budget, adjudicated on the worker-measured
        solve time (identically in sequential and pool modes).  ``None``
        disables the budget.
    max_retries:
        Extra attempts of the *same* rung after a failure (timeouts are
        retried only with ``retry_on_timeout``, since a deterministic
        solver that overran once will overrun again).
    backoff_base_seconds / backoff_growth / backoff_max_seconds:
        Deterministic backoff before the *n*-th retry:
        ``base * growth**(n-1)`` seconds, capped at
        ``backoff_max_seconds`` when one is set (``None``, the default,
        preserves the unbounded schedule).  No RNG jitter by design.
    on_error:
        What chain exhaustion means: ``"raise"`` (default) raises
        :class:`~repro.exceptions.FallbackExhaustedError`; ``"degrade"``
        hands the component to the always-feasible query-oriented rung;
        ``"skip"`` records the component's queries as uncovered.
    fallback:
        Rungs tried, in order, after the primary solver fails — registry
        names (see :data:`FALLBACK_RUNGS`) or SolvesComponents objects.
    route_fallback:
        Per-route chain overrides keyed by route name (e.g.
        ``{"exact-k2": ("k2-exact", "greedy")}``); unrouted components
        and unlisted routes use ``fallback``.
    validate_covers:
        Independently check that each successful attempt actually covers
        its component; an infeasible answer (a buggy rung, an injected
        corruption) counts as a failed attempt instead of poisoning the
        merge.
    timeout_grace_seconds:
        Extra margin the pool scheduler grants on top of
        ``timeout_seconds`` before abandoning a still-running attempt.
    chaos:
        Optional fault injector (see
        :class:`repro.devtools.chaos.ChaosInjector`): anything with a
        ``wrap(rung, index, attempt)`` method.  Wraps every chain
        attempt; the degrade-of-last-resort runs unwrapped so the
        safety net itself stays deterministic.
    breakers:
        Optional per-rung circuit-breaker board (see
        :class:`repro.service.breaker.BreakerBoard` — duck-typed as
        ``allow(rung_name) -> bool`` / ``record(rung_name, ok)`` so the
        engine layer never imports the service).  When a rung's circuit
        is open, its attempts are skipped with a synthesized
        ``"breaker-open"`` failure and the chain falls through to the
        next rung immediately; every attempt outcome (success or
        failure) is reported back to the board.  The board outlives
        individual runs — rung health accumulates across requests.
    """

    timeout_seconds: Optional[float] = None
    max_retries: int = 0
    retry_on_timeout: bool = False
    backoff_base_seconds: float = 0.0
    backoff_growth: float = 2.0
    backoff_max_seconds: Optional[float] = None
    on_error: str = "raise"
    fallback: Sequence[object] = ()
    route_fallback: Mapping[str, Sequence[object]] = field(default_factory=dict)
    validate_covers: bool = True
    timeout_grace_seconds: float = 0.25
    poll_interval_seconds: float = 0.02
    chaos: Optional[object] = None
    breakers: Optional[object] = None

    def __post_init__(self):
        if self.on_error not in ON_ERROR_POLICIES:
            raise SolverError(
                f"on_error must be one of {ON_ERROR_POLICIES}, got {self.on_error!r}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise SolverError("timeout_seconds must be positive (or None)")
        if self.max_retries < 0:
            raise SolverError("max_retries must be >= 0")
        if self.backoff_max_seconds is not None and self.backoff_max_seconds < 0:
            raise SolverError("backoff_max_seconds must be >= 0 (or None)")
        self.fallback = tuple(self.fallback)
        self.route_fallback = {
            key: tuple(value) for key, value in dict(self.route_fallback).items()
        }

    def backoff_seconds(self, retry_number: int) -> float:
        """Deterministic sleep before the ``retry_number``-th retry (1-based)."""
        if self.backoff_base_seconds <= 0:
            return 0.0
        delay = self.backoff_base_seconds * self.backoff_growth ** (retry_number - 1)
        if self.backoff_max_seconds is not None:
            return min(delay, self.backoff_max_seconds)
        return delay

    def chain_for(
        self, primary: SolvesComponents, route: Optional[str]
    ) -> List[SolvesComponents]:
        """The full rung chain for one component: primary, then fallbacks."""
        spec = self.fallback
        if route is not None and route in self.route_fallback:
            spec = self.route_fallback[route]
        return [primary] + [resolve_rung(entry) for entry in spec]


# ----------------------------------------------------------------------
# Run report
# ----------------------------------------------------------------------


class ResilienceReport:
    """Counters and records accumulated over one resilient dispatch."""

    __slots__ = (
        "failures",
        "retries",
        "fallbacks",
        "degraded",
        "skipped",
        "quarantined",
        "uncovered_queries",
        "pool_rebuilds",
        "abandoned_attempts",
        "kind_counts",
    )

    def __init__(self):
        self.failures: List[ComponentFailure] = []
        self.retries = 0
        self.fallbacks = 0
        self.degraded: List[int] = []
        self.skipped: List[int] = []
        self.quarantined: List[int] = []
        self.uncovered_queries: Set[Query] = set()
        self.pool_rebuilds = 0
        self.abandoned_attempts = 0
        self.kind_counts: Dict[str, int] = {}

    @property
    def clean(self) -> bool:
        return not self.failures and not self.degraded and not self.skipped

    def record(self, failure: ComponentFailure) -> None:
        self.failures.append(failure)
        self.kind_counts[failure.kind] = self.kind_counts.get(failure.kind, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "failures": len(self.failures),
            "failure_kinds": dict(self.kind_counts),
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "degraded_components": sorted(self.degraded),
            "skipped_components": sorted(self.skipped),
            "quarantined_components": sorted(self.quarantined),
            "uncovered_queries": len(self.uncovered_queries),
            "pool_rebuilds": self.pool_rebuilds,
            "abandoned_attempts": self.abandoned_attempts,
            "failure_records": [f.as_dict() for f in self.failures],
        }


# ----------------------------------------------------------------------
# Chain state machine (shared by the sequential and pool paths)
# ----------------------------------------------------------------------


class _ChainState:
    """Where one component currently stands on its fallback chain."""

    __slots__ = (
        "index",
        "component",
        "route",
        "backend",
        "chain",
        "pos",
        "attempt",
        "failures",
        "quarantined",
        "not_before",
    )

    def __init__(self, task: ComponentTask, policy: ResiliencePolicy):
        self.index, primary, self.component, self.route, self.backend = task
        self.chain = policy.chain_for(primary, self.route)
        self.pos = 0
        self.attempt = 0
        self.failures: List[ComponentFailure] = []
        self.quarantined = False
        #: Monotonic timestamp before which the next attempt must not
        #: start (deterministic retry backoff); 0.0 = immediately.
        self.not_before = 0.0

    @property
    def rung(self) -> SolvesComponents:
        return self.chain[self.pos]

    @property
    def total_attempts(self) -> int:
        return len(self.failures) + 1

    def attempt_solver(self, policy: ResiliencePolicy) -> SolvesComponents:
        if policy.chaos is not None:
            return policy.chaos.wrap(self.rung, self.index, self.attempt)
        return self.rung

    def attempt_task(self, policy: ResiliencePolicy) -> ComponentTask:
        return (
            self.index,
            self.attempt_solver(policy),
            self.component,
            self.route,
            self.backend,
        )

    def failure(
        self,
        kind: str,
        error_type: str,
        message: str,
        traceback_text: str = "",
    ) -> ComponentFailure:
        return ComponentFailure(
            index=self.index,
            rung=self.rung.name,
            attempt=self.attempt,
            kind=kind,
            error_type=error_type,
            message=message,
            traceback=traceback_text,
        )


def _kind_of(exc: BaseException) -> str:
    if isinstance(exc, UncoverableQueryError):
        return "uncoverable"
    if getattr(exc, "simulates_worker_crash", False):
        return "crash"
    return "error"


def _failure_from_exception(state: _ChainState, exc: BaseException) -> ComponentFailure:
    return state.failure(
        kind=_kind_of(exc),
        error_type=type(exc).__name__,
        message=str(exc),
        traceback_text=getattr(exc, "worker_traceback", ""),
    )


def _advance(
    state: _ChainState,
    failure: ComponentFailure,
    policy: ResiliencePolicy,
    report: ResilienceReport,
) -> str:
    """Record ``failure`` and move the chain; returns the next action:
    ``"retry"`` | ``"fallback"`` | ``"exhausted"``."""
    state.failures.append(failure)
    report.record(failure)
    if failure.kind == "uncoverable":
        # A data property, not a fault: no rung can repair it (and the
        # breaker board never hears about it — the rung is healthy).
        return "exhausted"
    if policy.breakers is not None and failure.kind != "breaker-open":
        policy.breakers.record(state.rung.name, False)
    # A skipped-by-breaker attempt never retries: no solve ran, so a
    # retry of the same rung would just be skipped again.
    retryable = failure.kind != "breaker-open" and (
        failure.kind != "timeout" or policy.retry_on_timeout
    )
    if retryable and state.attempt < policy.max_retries:
        state.attempt += 1
        report.retries += 1
        state.not_before = time.monotonic() + policy.backoff_seconds(state.attempt)
        return "retry"
    if state.pos + 1 < len(state.chain):
        state.pos += 1
        state.attempt = 0
        state.not_before = 0.0
        report.fallbacks += 1
        return "fallback"
    return "exhausted"


def _resolution_details(state: _ChainState, rung_name: str) -> Dict[str, object]:
    return {
        "rung": rung_name,
        "attempts": state.total_attempts,
        "failed_rungs": [f.rung for f in state.failures],
    }


def _exhausted_outcome(
    state: _ChainState, policy: ResiliencePolicy, report: ResilienceReport
) -> ComponentOutcome:
    """Apply the on_error policy to a chain that ran dry."""
    uncoverable = any(f.kind == "uncoverable" for f in state.failures)
    if policy.on_error == "raise":
        if uncoverable:
            raise UncoverableQueryError(
                next(iter(state.component.queries)),
                f"component {state.index}: {state.failures[-1].message}",
            )
        raise FallbackExhaustedError(state.index, state.failures)
    if policy.on_error == "degrade" and not uncoverable:
        # The safety net runs unwrapped (no chaos) and untimed: it is
        # the deterministic floor the degrade contract promises.
        rung = QueryOrientedRung()
        started = time.perf_counter()
        with use_backend(state.backend):
            classifiers, details = rung.solve_component(state.component)
        seconds = time.perf_counter() - started
        report.degraded.append(state.index)
        details = dict(details)
        details["resilience"] = _resolution_details(state, "degraded")
        return ComponentOutcome(
            state.index,
            frozenset(classifiers),
            details,
            seconds,
            state.component.n,
            state.route,
            rung="degraded",
            attempts=state.total_attempts,
            backend=state.backend,
        )
    # "skip" — and "degrade" of a genuinely uncoverable component, which
    # even the last-resort rung cannot cover.
    report.skipped.append(state.index)
    report.uncovered_queries.update(state.component.queries)
    details: Dict[str, object] = {"resilience": _resolution_details(state, "skipped")}
    return ComponentOutcome(
        state.index,
        frozenset(),
        details,
        0.0,
        state.component.n,
        state.route,
        rung="skipped",
        attempts=state.total_attempts,
        backend=state.backend,
    )


def _breaker_gate(
    state: _ChainState, policy: ResiliencePolicy, report: ResilienceReport
) -> Optional[ComponentOutcome]:
    """Skip chain rungs whose circuit is open before attempting them.

    Walks the chain past every rung the breaker board refuses (each
    skip is a synthesized ``"breaker-open"`` failure, so the chain
    history stays complete); returns the exhausted outcome when the
    whole remaining chain is gated off, else ``None`` (the current
    rung may run).  With no board configured this is a no-op.
    """
    if policy.breakers is None:
        return None
    while not policy.breakers.allow(state.rung.name):
        failure = state.failure(
            kind="breaker-open",
            error_type="CircuitBreakerOpen",
            message=f"rung {state.rung.name!r} skipped: circuit breaker is open",
        )
        if _advance(state, failure, policy, report) == "exhausted":
            return _exhausted_outcome(state, policy, report)
    return None


def _success_outcome(
    state: _ChainState,
    classifiers: FrozenSet[Classifier],
    details: Dict[str, object],
    seconds: float,
    policy: ResiliencePolicy,
) -> ComponentOutcome:
    if policy.breakers is not None:
        policy.breakers.record(state.rung.name, True)
    if state.failures:
        details = dict(details)
        details["resilience"] = _resolution_details(state, state.rung.name)
    return ComponentOutcome(
        state.index,
        classifiers,
        details,
        seconds,
        state.component.n,
        state.route,
        rung=state.rung.name,
        attempts=state.total_attempts,
        backend=state.backend,
    )


def _adjudicate(
    state: _ChainState,
    classifiers: FrozenSet[Classifier],
    details: Dict[str, object],
    seconds: float,
    policy: ResiliencePolicy,
) -> Optional[ComponentFailure]:
    """Post-hoc checks on a completed attempt: budget, then feasibility.

    Returns a failure record when the attempt must be rejected, else
    ``None``.  Uses the worker-measured solve time so sequential and
    pool runs adjudicate identically.
    """
    if policy.timeout_seconds is not None and seconds > policy.timeout_seconds:
        return state.failure(
            kind="timeout",
            error_type="TimeoutError",
            message=(
                f"attempt took {seconds:.3f}s, budget is "
                f"{policy.timeout_seconds:.3f}s"
            ),
        )
    if policy.validate_covers:
        try:
            verify_cover(state.component.queries, classifiers)
        except InfeasibleSolutionError as exc:
            return state.failure(
                kind="infeasible",
                error_type=type(exc).__name__,
                message=str(exc),
            )
    return None


# ----------------------------------------------------------------------
# Sequential resilient execution
# ----------------------------------------------------------------------


def _sleep_until(not_before: float) -> None:
    delay = not_before - time.monotonic()
    if delay > 0:
        time.sleep(delay)


def _solve_chain_inprocess(
    state: _ChainState, policy: ResiliencePolicy, report: ResilienceReport
) -> ComponentOutcome:
    """Walk one component's chain to completion in the calling process."""
    while True:
        gated = _breaker_gate(state, policy, report)
        if gated is not None:
            return gated
        _sleep_until(state.not_before)
        try:
            _, classifiers, details, seconds, _, _, _ = _solve_one(
                state.attempt_task(policy)
            )
        except (ReproError, MemoryError, RecursionError) as exc:
            failure = _failure_from_exception(state, exc)
            action = _advance(state, failure, policy, report)
            if action == "exhausted":
                return _exhausted_outcome(state, policy, report)
            continue
        rejected = _adjudicate(state, classifiers, details, seconds, policy)
        if rejected is None:
            return _success_outcome(state, classifiers, details, seconds, policy)
        action = _advance(state, rejected, policy, report)
        if action == "exhausted":
            return _exhausted_outcome(state, policy, report)


def _run_sequential_resilient(
    tasks: List[ComponentTask], policy: ResiliencePolicy, report: ResilienceReport
) -> List[ComponentOutcome]:
    return [
        _solve_chain_inprocess(_ChainState(task, policy), policy, report)
        for task in tasks
    ]


# ----------------------------------------------------------------------
# Pool resilient execution
# ----------------------------------------------------------------------


def _new_pool(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=workers, mp_context=pool_context())


def _crash_failure(state: _ChainState) -> ComponentFailure:
    return state.failure(
        kind="crash",
        error_type="BrokenProcessPool",
        message=(
            "worker process died while solving this component "
            "(no traceback survives a worker death)"
        ),
    )


def _rerun_isolated(
    state: _ChainState,
    policy: ResiliencePolicy,
    report: ResilienceReport,
    outcomes: Dict[int, ComponentOutcome],
    requeue: deque,
) -> None:
    """Re-run one interrupted attempt in its own single-worker pool.

    The attempt keeps its (rung, attempt) key, so a deterministic fault
    recurs here and is now unambiguously attributable to this component;
    an innocent bystander of someone else's crash simply completes.  A
    recurring death quarantines the component: every later rung of its
    chain runs on the in-process sequential path, where it cannot take
    workers down with it.
    """
    deadline = None
    if policy.timeout_seconds is not None:
        deadline = policy.timeout_seconds + policy.timeout_grace_seconds
    # No ``with`` block: context exit would wait for the worker, and the
    # abandonment path must *not* wait for a stalled attempt.
    mini = ProcessPoolExecutor(max_workers=1, mp_context=pool_context())
    try:
        future = mini.submit(_solve_one, state.attempt_task(policy))
        try:
            _, classifiers, details, seconds, _, _, _ = future.result(timeout=deadline)
        except BrokenProcessPool:
            # The lone worker is dead, so waiting is safe — and joining
            # the manager thread here keeps its wakeup pipe from being
            # poked by CPython's atexit hook after it is closed.
            mini.shutdown(wait=True)
            report.quarantined.append(state.index)
            state.quarantined = True
            action = _advance(state, _crash_failure(state), policy, report)
            if action == "exhausted":
                outcomes[state.index] = _exhausted_outcome(state, policy, report)
            else:
                outcomes[state.index] = _solve_chain_inprocess(state, policy, report)
            return
        except FuturesTimeoutError:
            report.abandoned_attempts += 1
            failure = state.failure(
                kind="timeout",
                error_type="TimeoutError",
                message=(
                    f"attempt abandoned after {deadline:.3f}s "
                    "(isolated worker still running)"
                ),
            )
            action = _advance(state, failure, policy, report)
            if action == "exhausted":
                outcomes[state.index] = _exhausted_outcome(state, policy, report)
            else:
                requeue.append(state)
            return
        except (ReproError, MemoryError, RecursionError) as exc:
            action = _advance(state, _failure_from_exception(state, exc), policy, report)
            if action == "exhausted":
                outcomes[state.index] = _exhausted_outcome(state, policy, report)
            else:
                requeue.append(state)
            return
    finally:
        mini.shutdown(wait=False)
    rejected = _adjudicate(state, classifiers, details, seconds, policy)
    if rejected is None:
        outcomes[state.index] = _success_outcome(
            state, classifiers, details, seconds, policy
        )
        return
    action = _advance(state, rejected, policy, report)
    if action == "exhausted":
        outcomes[state.index] = _exhausted_outcome(state, policy, report)
    else:
        requeue.append(state)


def _run_pool_resilient(
    tasks: List[ComponentTask],
    jobs: int,
    policy: ResiliencePolicy,
    report: ResilienceReport,
) -> List[ComponentOutcome]:
    workers = max(1, min(jobs, len(tasks)))
    outcomes: Dict[int, ComponentOutcome] = {}
    queue = deque(_ChainState(task, policy) for task in tasks)
    pool = _new_pool(workers)
    active: Dict[object, _ChainState] = {}
    submit_times: Dict[object, float] = {}
    abandoned: Set[object] = set()

    def handle_action(state: _ChainState, action: str) -> None:
        if action == "exhausted":
            outcomes[state.index] = _exhausted_outcome(state, policy, report)
        else:
            queue.append(state)

    try:
        while queue or active:
            now = time.monotonic()
            done = {f for f in abandoned if f.done()}  # reprolint: ignore[RPL101] set difference commutes
            abandoned.difference_update(done)
            # Submit while a worker slot is free (abandoned-but-running
            # attempts still occupy their worker until they finish).
            progressed = False
            for _ in range(len(queue)):
                if len(active) + len(abandoned) >= workers:
                    break
                state = queue.popleft()
                if state.quarantined:
                    outcomes[state.index] = _solve_chain_inprocess(
                        state, policy, report
                    )
                    progressed = True
                    continue
                if state.not_before > now:
                    queue.append(state)  # backoff pending; try again later
                    continue
                gated = _breaker_gate(state, policy, report)
                if gated is not None:
                    outcomes[state.index] = gated
                    progressed = True
                    continue
                future = pool.submit(_solve_one, state.attempt_task(policy))
                active[future] = state
                submit_times[future] = time.monotonic()
                progressed = True
            if not active:
                if queue and not progressed:
                    if abandoned:
                        # Every slot is held by an abandoned attempt:
                        # replace the pool so progress can resume.
                        pool.shutdown(wait=False)
                        pool = _new_pool(workers)
                        abandoned.clear()
                        report.pool_rebuilds += 1
                    else:
                        _sleep_until(min(s.not_before for s in queue))
                continue
            done, _ = wait(set(active), timeout=policy.poll_interval_seconds,
                           return_when=FIRST_COMPLETED)
            survivors: List[_ChainState] = []
            for future in done:
                state = active.pop(future)
                submit_times.pop(future, None)
                try:
                    _, classifiers, details, seconds, _, _, _ = future.result()
                except BrokenProcessPool:
                    survivors.append(state)
                    continue
                except (ReproError, MemoryError, RecursionError) as exc:
                    handle_action(
                        state, _advance(state, _failure_from_exception(state, exc),
                                        policy, report)
                    )
                    continue
                rejected = _adjudicate(state, classifiers, details, seconds, policy)
                if rejected is None:
                    outcomes[state.index] = _success_outcome(
                        state, classifiers, details, seconds, policy
                    )
                else:
                    handle_action(state, _advance(state, rejected, policy, report))
            if survivors:
                # The pool is broken: every in-flight attempt died with
                # it.  Re-run each survivor in isolation (attributable),
                # then continue on a fresh pool.
                survivors.extend(active.values())
                active.clear()
                submit_times.clear()
                abandoned.clear()
                # Broken pool: every worker is already dead, so waiting
                # is safe and lets the manager thread close its wakeup
                # pipe before CPython's atexit hook tries to use it.
                pool.shutdown(wait=True)
                pool = _new_pool(workers)
                report.pool_rebuilds += 1
                for state in sorted(survivors, key=lambda s: s.index):
                    _rerun_isolated(state, policy, report, outcomes, queue)
                continue
            if policy.timeout_seconds is not None:
                limit = policy.timeout_seconds + policy.timeout_grace_seconds
                now = time.monotonic()
                for future, state in list(active.items()):
                    if now - submit_times.get(future, now) <= limit:
                        continue
                    # The worker is still running well past the budget:
                    # abandon the attempt (the result, if it ever comes,
                    # is discarded) and move the chain along.
                    active.pop(future)
                    submit_times.pop(future, None)
                    abandoned.add(future)
                    report.abandoned_attempts += 1
                    failure = state.failure(
                        kind="timeout",
                        error_type="TimeoutError",
                        message=(
                            f"attempt abandoned after {limit:.3f}s "
                            "(worker still running)"
                        ),
                    )
                    handle_action(state, _advance(state, failure, policy, report))
    finally:
        pool.shutdown(wait=False)
    return [outcomes[index] for index in sorted(outcomes)]


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_components_resilient(
    tasks: List[ComponentTask],
    jobs: int,
    policy: ResiliencePolicy,
) -> Tuple[List[ComponentOutcome], ResilienceReport]:
    """Dispatch ``tasks`` under ``policy``; returns outcomes in index
    order plus the accumulated :class:`ResilienceReport`.

    Mirrors :func:`repro.engine.executors.run_components`' strategy
    choice: fewer than two tasks, or ``jobs <= 1``, run in-process.
    """
    report = ResilienceReport()
    if jobs <= 1 or len(tasks) < 2:
        outcomes = _run_sequential_resilient(tasks, policy, report)
    else:
        outcomes = _run_pool_resilient(tasks, jobs, policy, report)
    return outcomes, report
