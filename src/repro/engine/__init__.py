"""The shared component-solving engine.

Owns the solve pipeline every MC³ solver shares — preprocessing,
component scheduling, per-component dispatch (sequential or process
pool), deterministic merging, and per-stage telemetry — so solvers
implement only the narrow ``solve_component`` contract.  See
:mod:`repro.engine.engine` for the pipeline,
:mod:`repro.engine.routing` for engine-level rules like the exact
k ≤ 2 dispatch, and :mod:`repro.engine.resilience` for the
fault-tolerant execution layer (budgets, fallback chains, worker-crash
recovery, partial solutions).
"""

from repro.engine.cache import (
    CacheConfig,
    DiskSolutionCache,
    MemorySolutionCache,
    SolutionCache,
    cache_choices,
    default_cache_dir,
    resolve_cache,
    set_default_cache,
)
from repro.engine.component import ComponentOutcome, SolvesComponents
from repro.engine.engine import SolveEngine
from repro.engine.executors import pool_context, run_components
from repro.engine.resilience import (
    FALLBACK_RUNGS,
    ComponentFailure,
    PartialSolution,
    ResiliencePolicy,
    ResilienceReport,
    resolve_rung,
    run_components_resilient,
)
from repro.engine.routing import (
    EXACT_K2_ROUTE,
    Route,
    exact_k2_route,
    solve_component_k2,
)
from repro.engine.telemetry import EngineTelemetry, size_histogram

__all__ = [
    "CacheConfig",
    "ComponentFailure",
    "ComponentOutcome",
    "DiskSolutionCache",
    "EXACT_K2_ROUTE",
    "EngineTelemetry",
    "FALLBACK_RUNGS",
    "MemorySolutionCache",
    "PartialSolution",
    "ResiliencePolicy",
    "ResilienceReport",
    "Route",
    "SolutionCache",
    "SolveEngine",
    "SolvesComponents",
    "cache_choices",
    "default_cache_dir",
    "exact_k2_route",
    "pool_context",
    "resolve_cache",
    "resolve_rung",
    "run_components",
    "run_components_resilient",
    "set_default_cache",
    "size_histogram",
    "solve_component_k2",
]
