"""The shared component-solving engine.

Owns the solve pipeline every MC³ solver shares — preprocessing,
component scheduling, per-component dispatch (sequential or process
pool), deterministic merging, and per-stage telemetry — so solvers
implement only the narrow ``solve_component`` contract.  See
:mod:`repro.engine.engine` for the pipeline and
:mod:`repro.engine.routing` for engine-level rules like the exact
k ≤ 2 dispatch.
"""

from repro.engine.component import ComponentOutcome, SolvesComponents
from repro.engine.engine import SolveEngine
from repro.engine.executors import run_components
from repro.engine.routing import (
    EXACT_K2_ROUTE,
    Route,
    exact_k2_route,
    solve_component_k2,
)
from repro.engine.telemetry import EngineTelemetry, size_histogram

__all__ = [
    "ComponentOutcome",
    "EXACT_K2_ROUTE",
    "EngineTelemetry",
    "Route",
    "SolveEngine",
    "SolvesComponents",
    "exact_k2_route",
    "run_components",
    "size_histogram",
    "solve_component_k2",
]
