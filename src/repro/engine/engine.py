"""The shared component-solving engine.

Every MC³ solver pipeline has the same shape (the paper's Algorithms 2
and 3 both open with "Run preprocessing procedure" and close by
composing per-component answers):

1. **preprocess** — Algorithm 1 forces/removes classifiers and splits
   the residual load into property-disjoint components;
2. **schedule** — assign each component to the default component solver
   or to the first matching :class:`~repro.engine.routing.Route`;
3. **dispatch** — solve components sequentially or across a process
   pool (``jobs``), Observation 3.2 guaranteeing independence;
4. **merge** — union the per-component selections in deterministic
   component order, so ``jobs=N`` output is bit-identical to ``jobs=1``;
5. **finalize** — combine with the forced classifiers and price against
   the original instance;
6. **telemetry** — per-stage timings, per-component solve times, and a
   component-size histogram under ``details["engine"]``.

Solvers plug in through the narrow
:class:`~repro.engine.component.SolvesComponents` contract plus an
optional ``aggregate_details(outcomes)`` hook for solver-specific
details (WSC arm wins, total flow value, …).  Verification stays where
it always was — :meth:`repro.solvers.base.Solver.solve` runs the
independent coverage checker on the engine's output.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.instance import MC3Instance
from repro.core.kernels.registry import resolve_backend_name
from repro.core.solution import Solution
from repro.engine.component import ComponentOutcome, SolvesComponents
from repro.engine.executors import ComponentTask, run_components
from repro.engine.resilience import (
    PartialSolution,
    ResiliencePolicy,
    run_components_resilient,
)
from repro.engine.routing import Route
from repro.engine.telemetry import EngineTelemetry
from repro.preprocess import ALL_STEPS, preprocess


class SolveEngine:
    """Owns the preprocess → dispatch → merge → finalize pipeline.

    Parameters
    ----------
    preprocess_steps:
        Algorithm 1 steps to run; the empty tuple disables preprocessing
        (the Figure 3c/3e/3f ablations measure exactly this difference).
    jobs:
        Worker processes for per-component dispatch.  ``1`` solves
        in-process; higher values fan components out over a process
        pool.  Output is identical either way, only wall-clock differs.
    routes:
        Engine-level routing rules tried in order before the default
        component solver (see :func:`repro.engine.routing.exact_k2_route`).
    resilience:
        Optional :class:`~repro.engine.resilience.ResiliencePolicy`.
        ``None`` (the default) keeps the zero-overhead plain dispatch
        path; a policy activates per-component budgets, fallback
        chains, worker-crash recovery, and the ``on_error`` behavior —
        runs that degraded or skipped components return a
        :class:`~repro.engine.resilience.PartialSolution`.
    backend:
        Kernel-backend choice for the mask kernels (a
        :mod:`repro.core.kernels.registry` choice string: a backend
        name or ``"auto"``).  ``None`` (the default) uses the active
        registry default; per-route ``backend`` overrides win for their
        components.  Resolved once per run, so telemetry and worker
        tasks always carry a concrete name.
    """

    def __init__(
        self,
        preprocess_steps: Sequence[int] = ALL_STEPS,
        jobs: int = 1,
        routes: Sequence[Route] = (),
        resilience: Optional[ResiliencePolicy] = None,
        backend: Optional[str] = None,
    ):
        self.preprocess_steps = tuple(preprocess_steps)
        self.jobs = max(1, int(jobs))
        self.routes = tuple(routes)
        self.resilience = resilience
        self.backend = backend

    # ------------------------------------------------------------------

    def run(
        self, instance: MC3Instance, component_solver: SolvesComponents
    ) -> Tuple[Solution, Dict[str, object]]:
        """Execute the full pipeline; returns (solution, details)."""
        backend_name = resolve_backend_name(self.backend)
        prep = preprocess(instance, steps=self.preprocess_steps)
        tasks = self._schedule(prep.components, component_solver, backend_name)

        mode = "process-pool" if self.jobs > 1 and len(tasks) >= 2 else "sequential"
        telemetry = EngineTelemetry(jobs=self.jobs, mode=mode, backend=backend_name)
        telemetry.preprocess_seconds = prep.report.elapsed_seconds

        dispatch_started = time.perf_counter()
        if self.resilience is not None:
            outcomes, resilience_report = run_components_resilient(
                tasks, jobs=self.jobs, policy=self.resilience
            )
            telemetry.resilience = resilience_report.as_dict()
        else:
            outcomes = run_components(tasks, jobs=self.jobs)
            resilience_report = None
        telemetry.solve_seconds = time.perf_counter() - dispatch_started

        merge_started = time.perf_counter()
        selected = set()
        for outcome in outcomes:  # already in component index order
            selected |= outcome.classifiers
            bitspace = outcome.details.get("bitspace")
            telemetry.record_component(
                outcome.size,
                outcome.seconds,
                outcome.route,
                bitspace if isinstance(bitspace, dict) else None,
                rung=outcome.rung,
                backend=outcome.backend,
            )
        solution = prep.finalize(selected)
        if resilience_report is not None and not resilience_report.clean:
            solution = PartialSolution(
                solution.classifiers,
                solution.cost,
                failures=resilience_report.failures,
                uncovered_queries=resilience_report.uncovered_queries,
                degraded_components=sorted(resilience_report.degraded),
                skipped_components=sorted(resilience_report.skipped),
            )
        telemetry.merge_seconds = time.perf_counter() - merge_started

        details: Dict[str, object] = {
            "preprocess": prep.report.as_dict(),
            "components": len(prep.components),
        }
        details.update(self._aggregate(component_solver, outcomes))
        details["engine"] = telemetry.as_dict()
        return solution, details

    # ------------------------------------------------------------------

    def _schedule(
        self,
        components: Iterable[MC3Instance],
        component_solver: SolvesComponents,
        backend_name: str,
    ) -> List[ComponentTask]:
        """Assign each component to the first matching route, else the
        default solver; every task carries its resolved kernel backend
        (the route's override when present, else the engine's)."""
        tasks: List[ComponentTask] = []
        for index, component in enumerate(components):
            target: SolvesComponents = component_solver
            route_name: Optional[str] = None
            task_backend = backend_name
            for route in self.routes:
                if route.matches(component):
                    target = route
                    route_name = route.name
                    route_backend = getattr(route, "backend", None)
                    if route_backend is not None:
                        task_backend = resolve_backend_name(route_backend)
                    break
            tasks.append((index, target, component, route_name, task_backend))
        return tasks

    @staticmethod
    def _aggregate(
        component_solver: SolvesComponents, outcomes: List[ComponentOutcome]
    ) -> Dict[str, object]:
        aggregate = getattr(component_solver, "aggregate_details", None)
        if aggregate is None:
            return {}
        return aggregate(outcomes)
