"""The shared component-solving engine.

Every MC³ solver pipeline has the same shape (the paper's Algorithms 2
and 3 both open with "Run preprocessing procedure" and close by
composing per-component answers):

1. **preprocess** — Algorithm 1 forces/removes classifiers and splits
   the residual load into property-disjoint components;
2. **schedule** — assign each component to the default component solver
   or to the first matching :class:`~repro.engine.routing.Route`;
3. **dispatch** — solve components sequentially or across a process
   pool (``jobs``), Observation 3.2 guaranteeing independence;
4. **merge** — union the per-component selections in deterministic
   component order, so ``jobs=N`` output is bit-identical to ``jobs=1``;
5. **finalize** — combine with the forced classifiers and price against
   the original instance;
6. **telemetry** — per-stage timings, per-component solve times, and a
   component-size histogram under ``details["engine"]``.

Solvers plug in through the narrow
:class:`~repro.engine.component.SolvesComponents` contract plus an
optional ``aggregate_details(outcomes)`` hook for solver-specific
details (WSC arm wins, total flow value, …).  Verification stays where
it always was — :meth:`repro.solvers.base.Solver.solve` runs the
independent coverage checker on the engine's output.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.bitspace import component_fingerprint
from repro.core.instance import MC3Instance
from repro.core.kernels.registry import resolve_backend_name
from repro.core.solution import Solution
from repro.engine.cache import (
    CacheRunStats,
    SolutionCache,
    cache_token_of,
    decode_entry,
    encode_entry,
    resolve_cache,
)
from repro.engine.component import ComponentOutcome, SolvesComponents
from repro.engine.executors import ComponentTask, run_components
from repro.engine.resilience import (
    PartialSolution,
    ResiliencePolicy,
    run_components_resilient,
)
from repro.engine.routing import Route
from repro.engine.telemetry import EngineTelemetry
from repro.preprocess import ALL_STEPS, preprocess


def _covers(queries, classifiers) -> bool:
    """Exact coverage check, sized for one component: every query must
    contain at least one selected classifier.  Semantically the check
    :func:`repro.core.coverage.verify_cover` performs, without building
    its per-query mutable-set machinery — this runs once per cache
    insert inside the < 3 % cold-path overhead budget
    (``BENCH_cache.json``)."""
    selected = list(classifiers)
    return all(any(clf <= q for clf in selected) for q in queries)


class SolveEngine:
    """Owns the preprocess → dispatch → merge → finalize pipeline.

    Parameters
    ----------
    preprocess_steps:
        Algorithm 1 steps to run; the empty tuple disables preprocessing
        (the Figure 3c/3e/3f ablations measure exactly this difference).
    jobs:
        Worker processes for per-component dispatch.  ``1`` solves
        in-process; higher values fan components out over a process
        pool.  Output is identical either way, only wall-clock differs.
    routes:
        Engine-level routing rules tried in order before the default
        component solver (see :func:`repro.engine.routing.exact_k2_route`).
    resilience:
        Optional :class:`~repro.engine.resilience.ResiliencePolicy`.
        ``None`` (the default) keeps the zero-overhead plain dispatch
        path; a policy activates per-component budgets, fallback
        chains, worker-crash recovery, and the ``on_error`` behavior —
        runs that degraded or skipped components return a
        :class:`~repro.engine.resilience.PartialSolution`.
    backend:
        Kernel-backend choice for the mask kernels (a
        :mod:`repro.core.kernels.registry` choice string: a backend
        name or ``"auto"``).  ``None`` (the default) uses the active
        registry default; per-route ``backend`` overrides win for their
        components.  Resolved once per run, so telemetry and worker
        tasks always carry a concrete name.
    cache:
        Component-solution cache spec (see :mod:`repro.engine.cache`):
        a choice string (``"off"``/``"memory"``/``"disk"``), a
        :class:`~repro.engine.cache.CacheConfig`, a live
        :class:`~repro.engine.cache.SolutionCache`, or ``None`` for the
        process default (``REPRO_SOLUTION_CACHE``).  Lookups happen
        after preprocessing and routing, keyed by the canonical
        :func:`~repro.core.bitspace.component_fingerprint`; only
        fully-verified, non-degraded outcomes are inserted, and runs
        with an active chaos injector bypass the cache entirely so
        injected faults always exercise the fallback machinery.
    """

    def __init__(
        self,
        preprocess_steps: Sequence[int] = ALL_STEPS,
        jobs: int = 1,
        routes: Sequence[Route] = (),
        resilience: Optional[ResiliencePolicy] = None,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
    ):
        self.preprocess_steps = tuple(preprocess_steps)
        self.jobs = max(1, int(jobs))
        self.routes = tuple(routes)
        self.resilience = resilience
        self.backend = backend
        self.cache = cache

    # ------------------------------------------------------------------

    def run(
        self, instance: MC3Instance, component_solver: SolvesComponents
    ) -> Tuple[Solution, Dict[str, object]]:
        """Execute the full pipeline; returns (solution, details)."""
        backend_name = resolve_backend_name(self.backend)
        cache = resolve_cache(self.cache)
        prep = preprocess(instance, steps=self.preprocess_steps)
        tasks = self._schedule(prep.components, component_solver, backend_name)

        mode = "process-pool" if self.jobs > 1 and len(tasks) >= 2 else "sequential"
        telemetry = EngineTelemetry(jobs=self.jobs, mode=mode, backend=backend_name)
        telemetry.preprocess_seconds = prep.report.elapsed_seconds

        # An active chaos injector bypasses the cache entirely: a hit
        # would skip the solve a planned fault was scheduled into, and
        # the injector's per-(rung, index, attempt) schedule must stay
        # exercised for the determinism tests to mean anything.
        chaos_active = (
            self.resilience is not None
            and getattr(self.resilience, "chaos", None) is not None
        )
        cache_stats: Optional[CacheRunStats] = None
        hits: List[ComponentOutcome] = []
        pending = tasks
        fingerprints: Dict[int, str] = {}
        cached_components: Dict[int, MC3Instance] = {}
        if cache is not None and not chaos_active:
            cache_stats = CacheRunStats(cache.kind)
            hits, pending = self._cache_lookup(
                tasks, cache, cache_stats, fingerprints, cached_components
            )

        dispatch_started = time.perf_counter()
        if self.resilience is not None:
            solved, resilience_report = run_components_resilient(
                pending, jobs=self.jobs, policy=self.resilience
            )
            telemetry.resilience = resilience_report.as_dict()
        else:
            solved = run_components(pending, jobs=self.jobs)
            resilience_report = None
        telemetry.solve_seconds = time.perf_counter() - dispatch_started

        if cache is not None and cache_stats is not None and fingerprints:
            self._cache_insert(
                cache,
                cache_stats,
                solved,
                fingerprints,
                cached_components,
                resilience_report,
            )

        outcomes = sorted(hits + list(solved), key=lambda outcome: outcome.index)
        if cache_stats is not None:
            telemetry.cache = cache_stats.as_dict(cache.stats())

        merge_started = time.perf_counter()
        selected = set()
        for outcome in outcomes:  # already in component index order
            # ComponentOutcome rows carry wall-clock telemetry next to
            # the classifiers; the classifier sets themselves come from
            # the deterministic kernels and set-union merging commutes.
            selected |= outcome.classifiers  # reprolint: sanitize
            bitspace = outcome.details.get("bitspace")
            gap = outcome.details.get("gap")
            telemetry.record_component(
                outcome.size,
                outcome.seconds,
                outcome.route,
                bitspace if isinstance(bitspace, dict) else None,
                rung=outcome.rung,
                backend=outcome.backend,
                gap=gap if isinstance(gap, dict) else None,
            )
        solution = prep.finalize(selected)
        if resilience_report is not None and not resilience_report.clean:
            solution = PartialSolution(
                solution.classifiers,
                solution.cost,
                failures=resilience_report.failures,
                uncovered_queries=resilience_report.uncovered_queries,
                degraded_components=sorted(resilience_report.degraded),
                skipped_components=sorted(resilience_report.skipped),
            )
        telemetry.merge_seconds = time.perf_counter() - merge_started

        details: Dict[str, object] = {
            "preprocess": prep.report.as_dict(),
            "components": len(prep.components),
        }
        details.update(self._aggregate(component_solver, outcomes))
        details["engine"] = telemetry.as_dict()
        return solution, details

    # ------------------------------------------------------------------

    def _schedule(
        self,
        components: Iterable[MC3Instance],
        component_solver: SolvesComponents,
        backend_name: str,
    ) -> List[ComponentTask]:
        """Assign each component to the first matching route, else the
        default solver; every task carries its resolved kernel backend
        (the route's override when present, else the engine's)."""
        tasks: List[ComponentTask] = []
        for index, component in enumerate(components):
            target: SolvesComponents = component_solver
            route_name: Optional[str] = None
            task_backend = backend_name
            for route in self.routes:
                if route.matches(component):
                    target = route
                    route_name = route.name
                    route_backend = getattr(route, "backend", None)
                    if route_backend is not None:
                        task_backend = resolve_backend_name(route_backend)
                    break
            tasks.append((index, target, component, route_name, task_backend))
        return tasks

    # ------------------------------------------------------------------
    # Content-addressed component-solution cache (see repro.engine.cache)
    # ------------------------------------------------------------------

    def _cache_lookup(
        self,
        tasks: List[ComponentTask],
        cache: SolutionCache,
        stats: CacheRunStats,
        fingerprints: Dict[int, str],
        cached_components: Dict[int, MC3Instance],
    ) -> Tuple[List[ComponentOutcome], List[ComponentTask]]:
        """Split tasks into cache-hit outcomes and still-pending tasks.

        A task is cacheable only when its dispatch target exposes a
        cache token (every in-repo solver and route does; custom
        ``SolvesComponents`` objects do not and are never cached).  The
        fingerprint pins the *primary* rung slot — under a resilience
        policy a hit stands in for the primary solver's clean answer,
        so the hit outcome carries the primary rung name exactly as an
        uncached clean resilient run would.
        """
        resilient = self.resilience is not None
        hit_outcomes: List[ComponentOutcome] = []
        pending: List[ComponentTask] = []
        for task in tasks:
            index, target, component, route_name, task_backend = task
            token = cache_token_of(target)
            if token is None:
                stats.uncacheable += 1
                pending.append(task)
                continue
            started = time.perf_counter()
            fingerprint = component_fingerprint(
                component,
                solver_token=token,
                route=route_name,
                backend=task_backend,
            )
            blob = cache.get(fingerprint)
            decoded = decode_entry(blob, fingerprint) if blob is not None else None
            if blob is not None and decoded is None:
                # The stored bytes are corrupt (damaged file, foreign
                # entry version): evict them so the store stops
                # re-reading and re-failing the same entry — and stops
                # charging it against the byte budget — on every lookup.
                invalidate = getattr(cache, "invalidate", None)
                if invalidate is not None:
                    invalidate(fingerprint)
            elapsed = time.perf_counter() - started
            stats.lookup_seconds += elapsed
            if decoded is None:
                stats.misses += 1
                fingerprints[index] = fingerprint
                cached_components[index] = component
                pending.append(task)
                continue
            stats.hits += 1
            classifiers, details = decoded
            hit_outcomes.append(
                ComponentOutcome(
                    index,
                    classifiers,
                    details,
                    elapsed,
                    component.n,
                    route_name,
                    rung=getattr(target, "name", None) if resilient else None,
                    backend=task_backend,
                )
            )
        return hit_outcomes, pending

    def _cache_insert(
        self,
        cache: SolutionCache,
        stats: CacheRunStats,
        solved: List[ComponentOutcome],
        fingerprints: Dict[int, str],
        cached_components: Dict[int, MC3Instance],
        resilience_report,
    ) -> None:
        """Insert fully-verified, non-degraded outcomes only.

        Components with any recorded failure, degraded/skipped status,
        or retried attempts are never inserted — a cached entry must be
        indistinguishable from a clean first-attempt primary solve.
        Every candidate is re-checked for exact coverage before it is
        written, and outcomes whose details do not serialize are
        skipped rather than cached lossily.
        """
        failed = set()
        if resilience_report is not None:
            failed.update(f.index for f in resilience_report.failures)
            failed.update(resilience_report.degraded)
            failed.update(resilience_report.skipped)
        for outcome in solved:
            fingerprint = fingerprints.get(outcome.index)
            if fingerprint is None or outcome.index in failed:
                continue
            if outcome.attempts > 1:
                continue
            started = time.perf_counter()
            component = cached_components[outcome.index]
            if not _covers(component.queries, outcome.classifiers):
                stats.insert_skips += 1
                stats.insert_seconds += time.perf_counter() - started
                continue
            blob = encode_entry(fingerprint, outcome.classifiers, outcome.details)
            if blob is not None and cache.put(fingerprint, blob):
                stats.inserts += 1
            else:
                stats.insert_skips += 1
            stats.insert_seconds += time.perf_counter() - started

    @staticmethod
    def _aggregate(
        component_solver: SolvesComponents, outcomes: List[ComponentOutcome]
    ) -> Dict[str, object]:
        aggregate = getattr(component_solver, "aggregate_details", None)
        if aggregate is None:
            return {}
        return aggregate(outcomes)
