"""Engine-level component routing.

A :class:`Route` pairs a predicate over components with a dedicated
component solver: when the predicate matches, the engine dispatches the
component to the route instead of the default solver.  Routing happens
*after* preprocessing, so rules see the residual sub-instances — the
level at which specialisation is lossless (components share no
properties, so composing per-component optima is exact, Observation
3.2).

The flagship rule is :func:`exact_k2_route`: components whose queries
all have length ≤ 2 are solved *exactly* through the Theorem 4.1
reduction chain (bipartite WVC → max-flow) instead of the WSC
approximation.  This used to live inside ``GeneralSolver`` (as the
``dispatch_k2`` special case, with a local import of ``K2Solver`` to
dodge a circular dependency); hoisting it into the engine makes it
available to every approximate solver and removes the cycle — the k ≤ 2
per-component algorithm itself lives here, below the solver layer, and
``K2Solver`` reuses it.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.costs import OverlayCost
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier, Query
from repro.exceptions import UncoverableQueryError
from repro.reductions import mc3_to_bipartite_wvc, solve_bipartite_wvc


def solve_component_k2(
    component: MC3Instance, flow_algorithm: str = "dinic"
) -> Tuple[Set[Classifier], Dict[str, object]]:
    """Solve one property-disjoint component with k ≤ 2 exactly.

    The Theorem 4.1 chain: bipartite Weighted Vertex Cover → max-flow →
    translation back to classifiers.  Singleton queries may be present
    when preprocessing step 1 was disabled; their classifiers are forced
    here so the WVC reduction receives only length-2 queries, keeping
    the no-preprocessing mode correct.
    """
    forced: Set[Classifier] = set()
    length_two: List[Query] = []
    for q in component.queries:
        if len(q) == 1:
            if not math.isfinite(component.weight(q)):
                raise UncoverableQueryError(q)
            forced.add(q)
        else:
            length_two.append(q)
    if not length_two:
        return forced, {"flow_value": 0.0}
    cost = component.cost
    if forced:
        # Forced singletons are already paid for; the WVC must see them
        # as free or it may buy a pair classifier redundantly.
        overlay = OverlayCost(cost)
        # RPL101 suppressed below: overlay.select is commutative — zeroing
        # weights in any order yields the same overlay.
        for clf in forced:  # reprolint: ignore[RPL101]
            overlay.select(clf)
        cost = overlay
    graph = mc3_to_bipartite_wvc(length_two, cost)
    cover, flow_value = solve_bipartite_wvc(graph, algorithm=flow_algorithm)
    return forced | cover, {"flow_value": flow_value}


class Route:
    """A (predicate, component solver) routing rule.

    ``matches`` decides per component; the route's ``solve_component``
    satisfies the same contract as a solver's, so the executor treats
    routed and default work identically.  Routes must be picklable for
    process-pool dispatch.

    ``backend`` optionally pins routed components to a specific kernel
    backend (a :func:`repro.core.kernels.registry` choice string,
    including ``"auto"``); ``None`` inherits the engine-level backend.
    A route that knows its components are large can opt into the array
    backend while small components stay on the cheaper pure-python one.

    ``cache_token`` is the route's contribution to the
    component-solution cache key (see :mod:`repro.engine.cache`): a flat
    tuple of scalars naming every output-affecting knob of the routed
    algorithm.  ``None`` (the default) marks the route's components as
    uncacheable — the safe choice for a bespoke route whose knobs the
    token would miss.
    """

    __slots__ = ("name", "_predicate", "_solve", "backend", "cache_token")

    def __init__(
        self,
        name: str,
        predicate: Callable[[MC3Instance], bool],
        solve: Callable[[MC3Instance], Tuple[Set[Classifier], Dict[str, object]]],
        backend: Optional[str] = None,
        cache_token: Optional[Tuple[object, ...]] = None,
    ):
        self.name = name
        self._predicate = predicate
        self._solve = solve
        self.backend = backend
        self.cache_token = None if cache_token is None else tuple(cache_token)

    def matches(self, component: MC3Instance) -> bool:
        return self._predicate(component)

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        return self._solve(component)


class _IsK2Component:
    """Picklable predicate: every query in the component has length ≤ 2."""

    def __call__(self, component: MC3Instance) -> bool:
        return component.max_query_length <= 2


class _SolveK2Component:
    """Picklable k ≤ 2 exact solve bound to a flow kernel."""

    def __init__(self, flow_algorithm: str):
        self.flow_algorithm = flow_algorithm

    def __call__(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        return solve_component_k2(component, flow_algorithm=self.flow_algorithm)


class _IsLargeComponent:
    """Picklable predicate: the component has at least ``min_queries``
    residual queries (the size tier where sub-linear gain estimation
    starts beating exact greedy's full-universe scans)."""

    def __init__(self, min_queries: int):
        self.min_queries = min_queries

    def __call__(self, component: MC3Instance) -> bool:
        return component.n >= self.min_queries


class _SolveSampledComponent:
    """Picklable sampled-greedy WSC solve for one large component.

    The per-component RNG seed is derived from the run seed and the
    component's query content (blake2b, not ``hash()``), so outputs are
    bit-identical across ``jobs=1``/``jobs=N`` and ``PYTHONHASHSEED``
    values — each component's randomness is a pure function of (seed,
    its queries), independent of scheduling order.
    """

    def __init__(self, seed: int, rates: Tuple[float, ...], exact_threshold: int):
        self.seed = seed
        self.rates = tuple(rates)
        self.exact_threshold = exact_threshold

    def __call__(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        from repro.core.bitspace import PropertySpace
        from repro.reductions import mc3_to_wsc
        from repro.setcover import derive_seed, sampled_greedy_wsc

        space = PropertySpace.from_queries(component.queries)
        wsc = mc3_to_wsc(component, space=space)
        stats: Dict[str, object] = {}
        wsc_solution = sampled_greedy_wsc(
            wsc,
            seed=derive_seed(self.seed, component.queries),
            rates=self.rates,
            exact_threshold=self.exact_threshold,
            stats=stats,
        )
        classifiers = {wsc.set_label(set_id) for set_id in wsc_solution.set_ids}
        return classifiers, {
            "sampled": stats,
            "bitspace": {
                "properties": space.size,
                "elements": wsc.universe_size,
                "sets": wsc.num_sets,
            },
        }


#: Route name used in telemetry and details aggregation.
EXACT_K2_ROUTE = "exact-k2"

#: Route name of the sampled sub-linear greedy size-tier rule.
SAMPLED_WSC_ROUTE = "sampled-wsc"

#: Components below this many residual queries stay on the default
#: solver: sampling only pays once universes are large enough that the
#: sample is much smaller than the universe.
SAMPLED_ROUTE_MIN_QUERIES = 20_000


def sampled_wsc_route(
    min_queries: int = SAMPLED_ROUTE_MIN_QUERIES,
    seed: int = 0,
    rates: Optional[Tuple[float, ...]] = None,
    exact_threshold: Optional[int] = None,
    backend: Optional[str] = None,
) -> Route:
    """Size-tier rule: very large components go to the sampling-based
    sub-linear greedy (Indyk et al.) instead of the exact-gain greedy.

    The cache token names every output-affecting knob — run seed, the
    sample-rate schedule, and the exactness fallback threshold — so a
    cached component solution is only reused for an identical sampling
    configuration.
    """
    from repro.setcover import DEFAULT_EXACT_THRESHOLD, DEFAULT_SAMPLE_RATES

    resolved_rates = DEFAULT_SAMPLE_RATES if rates is None else tuple(rates)
    resolved_threshold = (
        DEFAULT_EXACT_THRESHOLD if exact_threshold is None else int(exact_threshold)
    )
    return Route(
        SAMPLED_WSC_ROUTE,
        _IsLargeComponent(min_queries),
        _SolveSampledComponent(seed, resolved_rates, resolved_threshold),
        backend=backend,
        cache_token=(
            "route",
            SAMPLED_WSC_ROUTE,
            int(seed),
            *resolved_rates,
            resolved_threshold,
        ),
    )


def exact_k2_route(
    flow_algorithm: str = "dinic", backend: Optional[str] = None
) -> Route:
    """The k ≤ 2 exact-dispatch rule (``dispatch_k2`` hoisted engine-level).

    Because the routed components are solved optimally and components
    interact with nothing outside themselves, enabling this route can
    only improve an approximate solver's output — it subsumes
    Short-First's idea at the component level without its
    cross-interaction loss.
    """
    return Route(
        EXACT_K2_ROUTE,
        _IsK2Component(),
        _SolveK2Component(flow_algorithm),
        backend=backend,
        cache_token=("route", EXACT_K2_ROUTE, flow_algorithm),
    )
