"""Per-stage telemetry for the solving engine.

Every engine run records how long each pipeline stage took and how the
instance decomposed, so experiment reports can attribute wall-clock to
preprocessing vs. per-component solving and spot skewed decompositions
(one giant component means component-parallelism cannot help — the
histogram makes that visible without logging every size).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def size_histogram(sizes: List[int]) -> Dict[str, int]:
    """Bucket component sizes (query counts) into power-of-two ranges.

    Buckets are ``"1"``, ``"2"``, ``"3-4"``, ``"5-8"``, … — compact even
    for loads that decompose into thousands of components.
    """
    histogram: Dict[str, int] = {}
    for size in sizes:
        low, high = 1, 1
        while size > high:
            low, high = high + 1, high * 2
        label = str(low) if low == high else f"{low}-{high}"
        histogram[label] = histogram.get(label, 0) + 1
    return histogram


class EngineTelemetry:
    """Structured timings for one engine run.

    Rendered into ``SolverResult.details["engine"]``; all times are
    seconds.  ``component_seconds`` is index-aligned with
    ``component_sizes`` (component order is the deterministic
    preprocessing order, identical in sequential and parallel runs).
    """

    __slots__ = (
        "jobs",
        "mode",
        "preprocess_seconds",
        "solve_seconds",
        "merge_seconds",
        "component_sizes",
        "component_seconds",
        "routed",
    )

    def __init__(self, jobs: int, mode: str):
        self.jobs = jobs
        self.mode = mode
        self.preprocess_seconds = 0.0
        self.solve_seconds = 0.0
        self.merge_seconds = 0.0
        self.component_sizes: List[int] = []
        self.component_seconds: List[float] = []
        self.routed: Dict[str, int] = {}

    def record_component(
        self, size: int, seconds: float, route: Optional[str]
    ) -> None:
        self.component_sizes.append(size)
        self.component_seconds.append(seconds)
        if route is not None:
            self.routed[route] = self.routed.get(route, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "mode": self.mode,
            "preprocess_seconds": self.preprocess_seconds,
            "solve_seconds": self.solve_seconds,
            "merge_seconds": self.merge_seconds,
            "component_sizes": list(self.component_sizes),
            "component_seconds": list(self.component_seconds),
            "component_size_histogram": size_histogram(self.component_sizes),
            "routed": dict(self.routed),
        }
