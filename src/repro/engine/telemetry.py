"""Per-stage telemetry for the solving engine.

Every engine run records how long each pipeline stage took and how the
instance decomposed, so experiment reports can attribute wall-clock to
preprocessing vs. per-component solving and spot skewed decompositions
(one giant component means component-parallelism cannot help — the
histogram makes that visible without logging every size).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def size_histogram(sizes: List[int]) -> Dict[str, int]:
    """Bucket component sizes (query counts) into power-of-two ranges.

    Buckets are ``"1"``, ``"2"``, ``"3-4"``, ``"5-8"``, … — compact even
    for loads that decompose into thousands of components.
    """
    histogram: Dict[str, int] = {}
    for size in sizes:
        low, high = 1, 1
        while size > high:
            low, high = high + 1, high * 2
        label = str(low) if low == high else f"{low}-{high}"
        histogram[label] = histogram.get(label, 0) + 1
    return histogram


class EngineTelemetry:
    """Structured timings for one engine run.

    Rendered into ``SolverResult.details["engine"]``; all times are
    seconds.  ``component_seconds`` is index-aligned with
    ``component_sizes`` (component order is the deterministic
    preprocessing order, identical in sequential and parallel runs).
    """

    __slots__ = (
        "jobs",
        "mode",
        "backend",
        "preprocess_seconds",
        "solve_seconds",
        "merge_seconds",
        "component_sizes",
        "component_seconds",
        "routed",
        "backends",
        "rungs",
        "resilience",
        "cache",
        "bitspace_properties",
        "bitspace_elements",
        "bitspace_sets",
        "gap_ratios_vs_greedy",
        "gap_ratios_vs_exact",
    )

    def __init__(self, jobs: int, mode: str, backend: Optional[str] = None):
        self.jobs = jobs
        self.mode = mode
        # Engine-level resolved kernel backend; per-route overrides show
        # up in the per-component ``backends`` counts instead.
        self.backend = backend
        self.preprocess_seconds = 0.0
        self.solve_seconds = 0.0
        self.merge_seconds = 0.0
        self.component_sizes: List[int] = []
        self.component_seconds: List[float] = []
        self.routed: Dict[str, int] = {}
        self.backends: Dict[str, int] = {}
        # Fallback-chain resolution counts per rung name (resilient runs
        # only; plain runs leave this empty) and the resilience report
        # rendered by the engine when a policy was active.
        self.rungs: Dict[str, int] = {}
        self.resilience: Optional[Dict[str, object]] = None
        # Component-solution cache counters for this run (hits, misses,
        # inserts, lookup/insert seconds + the backing store's lifetime
        # stats); None when the run had no cache configured.
        self.cache: Optional[Dict[str, object]] = None
        # Per-component bitset property-space footprints (components
        # whose solver reported a "bitspace" details entry — i.e. went
        # through the interned-mask WSC path rather than e.g. max-flow).
        self.bitspace_properties: List[int] = []
        self.bitspace_elements: List[int] = []
        self.bitspace_sets: List[int] = []
        # Approximation-gap probes: components whose solver also ran
        # reference algorithms (greedy, and exact where tractable) and
        # reported cost ratios in a "gap" details entry.
        self.gap_ratios_vs_greedy: List[float] = []
        self.gap_ratios_vs_exact: List[float] = []

    def record_component(
        self,
        size: int,
        seconds: float,
        route: Optional[str],
        bitspace: Optional[Dict[str, int]] = None,
        rung: Optional[str] = None,
        backend: Optional[str] = None,
        gap: Optional[Dict[str, float]] = None,
    ) -> None:
        self.component_sizes.append(size)
        self.component_seconds.append(seconds)
        if route is not None:
            self.routed[route] = self.routed.get(route, 0) + 1
        if rung is not None:
            self.rungs[rung] = self.rungs.get(rung, 0) + 1
        if backend is not None:
            self.backends[backend] = self.backends.get(backend, 0) + 1
        if bitspace is not None:
            self.bitspace_properties.append(int(bitspace.get("properties", 0)))
            self.bitspace_elements.append(int(bitspace.get("elements", 0)))
            self.bitspace_sets.append(int(bitspace.get("sets", 0)))
        if gap is not None:
            ratio = gap.get("ratio_vs_greedy")
            if ratio is not None:
                self.gap_ratios_vs_greedy.append(float(ratio))
            ratio = gap.get("ratio_vs_exact")
            if ratio is not None:
                self.gap_ratios_vs_exact.append(float(ratio))

    def approx_gap_summary(self) -> Optional[Dict[str, object]]:
        """Aggregate the per-component approximation-gap probes, or
        ``None`` when no component reported one.

        ``max``/``mean`` ratios answer the operational question the
        probes exist for: how far off the sampled answer was from the
        exact-gain greedy (and, on tiny components, from the optimum)
        on the slices where both were computed.
        """
        if not self.gap_ratios_vs_greedy and not self.gap_ratios_vs_exact:
            return None
        summary: Dict[str, object] = {
            "components_probed": len(self.gap_ratios_vs_greedy),
        }
        if self.gap_ratios_vs_greedy:
            ratios = self.gap_ratios_vs_greedy
            summary["max_ratio_vs_greedy"] = max(ratios)
            summary["mean_ratio_vs_greedy"] = sum(ratios) / len(ratios)
        if self.gap_ratios_vs_exact:
            ratios = self.gap_ratios_vs_exact
            summary["components_probed_exact"] = len(ratios)
            summary["max_ratio_vs_exact"] = max(ratios)
        return summary

    def bitspace_summary(self) -> Dict[str, int]:
        """Aggregate interning footprint across mask-path components.

        ``max_properties`` is the widest mask any component needed — the
        number that shows whether the per-component interning scope is
        doing its job of keeping masks machine-word sized.
        """
        props = self.bitspace_properties
        return {
            "components": len(props),
            "max_properties": max(props) if props else 0,
            "total_properties": sum(props),
            "total_elements": sum(self.bitspace_elements),
            "total_sets": sum(self.bitspace_sets),
        }

    def as_dict(self) -> Dict[str, object]:
        rendered: Dict[str, object] = {
            "jobs": self.jobs,
            "mode": self.mode,
            "backend": self.backend,
            "preprocess_seconds": self.preprocess_seconds,
            "solve_seconds": self.solve_seconds,
            "merge_seconds": self.merge_seconds,
            "component_sizes": list(self.component_sizes),
            "component_seconds": list(self.component_seconds),
            "component_size_histogram": size_histogram(self.component_sizes),
            "routed": dict(self.routed),
            "backends": dict(self.backends),
            "bitspace": self.bitspace_summary(),
        }
        approx_gap = self.approx_gap_summary()
        if approx_gap is not None:
            rendered["approx_gap"] = approx_gap
        if self.rungs:
            rendered["rungs"] = dict(self.rungs)
        if self.resilience is not None:
            rendered["resilience"] = self.resilience
        if self.cache is not None:
            rendered["cache"] = self.cache
        return rendered
