"""Capacity-scaling max flow: augment only along edges with residual
``>= Δ``, halving Δ until 1 (then a final exact phase for fractional
capacities).

``O(E^2 log U)`` with ``U`` the largest capacity.  Included because the
paper discusses capacity-dependent algorithms as incomparable
alternatives (Section 7, [34]); the benchmark in
``benchmarks/bench_ablation_maxflow.py`` compares it against Dinic on the
bipartite WVC instances.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.exceptions import SolverError
from repro.flow.network import FlowNetwork


def capacity_scaling(network: FlowNetwork, source: Hashable, sink: Hashable) -> float:
    """Run capacity-scaling augmentation; mutates residual capacities and
    returns the max-flow value."""
    s = network.node_id(source)
    t = network.node_id(sink)
    if s == t:
        raise SolverError("source and sink must differ")
    adj = network.raw_adj
    cap = network.raw_cap
    to = network.raw_to
    n = network.num_nodes

    top = network.max_finite_capacity()
    delta = 1.0
    while delta * 2 <= top:
        delta *= 2

    total = 0.0
    while delta >= 1.0:
        while True:
            pushed = _augment_above(adj, cap, to, n, s, t, delta)
            if pushed == 0.0:
                break
            total += pushed
        delta /= 2
    # Final exact phase catches fractional residuals below 1.
    while True:
        pushed = _augment_above(adj, cap, to, n, s, t, 0.0)
        if pushed == 0.0:
            break
        total += pushed
    return total


def _augment_above(adj, cap, to, n, s, t, delta) -> float:
    """One DFS augmentation using only residual edges ``> delta`` (or
    ``> 0`` when delta is 0).  Returns the amount pushed (0 if no path)."""
    threshold = delta if delta > 0 else 0.0
    parent_edge = [-1] * n
    parent_edge[s] = -2
    stack = [s]
    while stack:
        node = stack.pop()
        if node == t:
            break
        for index in adj[node]:
            head = to[index]
            residual = cap[index]
            admissible = residual >= threshold if threshold > 0 else residual > 0
            if admissible and parent_edge[head] == -1:
                parent_edge[head] = index
                stack.append(head)
    if parent_edge[t] == -1:
        return 0.0
    bottleneck = math.inf
    node = t
    while node != s:
        index = parent_edge[node]
        bottleneck = min(bottleneck, cap[index])
        node = to[index ^ 1]
    if not math.isfinite(bottleneck):
        raise SolverError("unbounded flow: an all-infinite s-t path exists")
    node = t
    while node != s:
        index = parent_edge[node]
        cap[index] -= bottleneck
        cap[index ^ 1] += bottleneck
        node = to[index ^ 1]
    return bottleneck
