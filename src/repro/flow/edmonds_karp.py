"""Edmonds–Karp max flow: BFS shortest augmenting paths, ``O(V · E^2)``.

The simplest correct kernel; used as the reference implementation the
other kernels are property-tested against.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Hashable

from repro.exceptions import SolverError
from repro.flow.network import FlowNetwork


def edmonds_karp(network: FlowNetwork, source: Hashable, sink: Hashable) -> float:
    """Run Edmonds–Karp; mutates the network's residual capacities and
    returns the max-flow value."""
    s = network.node_id(source)
    t = network.node_id(sink)
    if s == t:
        raise SolverError("source and sink must differ")
    adj = network.raw_adj
    cap = network.raw_cap
    to = network.raw_to
    n = network.num_nodes

    total = 0.0
    while True:
        # BFS recording the edge used to reach each node.
        parent_edge = [-1] * n
        parent_edge[s] = -2
        frontier = deque([s])
        while frontier and parent_edge[t] == -1:
            node = frontier.popleft()
            for index in adj[node]:
                head = to[index]
                if parent_edge[head] == -1 and cap[index] > 0:
                    parent_edge[head] = index
                    frontier.append(head)
        if parent_edge[t] == -1:
            return total

        # Bottleneck along the path.
        bottleneck = math.inf
        node = t
        while node != s:
            index = parent_edge[node]
            bottleneck = min(bottleneck, cap[index])
            node = to[index ^ 1]
        if not math.isfinite(bottleneck):
            raise SolverError("unbounded flow: an all-infinite s-t path exists")

        # Augment.
        node = t
        while node != s:
            index = parent_edge[node]
            cap[index] -= bottleneck
            cap[index ^ 1] += bottleneck
            node = to[index ^ 1]
        total += bottleneck
