"""FIFO push–relabel (preflow) max flow with the gap heuristic.

``O(V^3)`` worst case; in practice highly competitive, and the preflow
algorithm is the one the bipartite-WVC literature builds on
([Baïou & Barahona 2016], the reduction cited as Theorem 2.3).

Infinite capacities are handled with a "big M" substitute when computing
push amounts: because every infinite edge lies strictly between two
finite layers in the reductions we build, no minimum cut ever uses one,
and M larger than the total finite capacity preserves all cuts.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Hashable

from repro.exceptions import SolverError
from repro.flow.network import FlowNetwork


def push_relabel(network: FlowNetwork, source: Hashable, sink: Hashable) -> float:
    """Run FIFO push–relabel; mutates residual capacities, returns the
    max-flow value."""
    s = network.node_id(source)
    t = network.node_id(sink)
    if s == t:
        raise SolverError("source and sink must differ")
    adj = network.raw_adj
    cap = network.raw_cap
    to = network.raw_to
    n = network.num_nodes

    # An all-infinite s-t path means the flow is unbounded; the big-M
    # substitution below would silently return M instead, so detect it
    # up front (cheap BFS over infinite edges only).
    _reject_unbounded(adj, cap, to, n, s, t)

    # Big-M stand-in for infinite capacities in *push amounts* only; the
    # residual array keeps real infinities.
    finite_total = sum(c for c in cap if math.isfinite(c))
    big = finite_total + 1.0

    height = [0] * n
    excess = [0.0] * n
    count = [0] * (2 * n + 1)  # nodes per height, for the gap heuristic
    count[0] = n
    height[s] = n
    count[0] -= 1
    count[n] += 1

    active: deque = deque()

    def push(index: int, amount: float) -> None:
        head = to[index]
        cap[index] -= amount
        cap[index ^ 1] += amount
        excess[to[index ^ 1]] -= amount
        excess[head] += amount
        if head not in (s, t) and excess[head] == amount:
            active.append(head)

    # Saturate all source edges.
    for index in adj[s]:
        residual = cap[index]
        if residual > 0:
            amount = residual if math.isfinite(residual) else big
            push(index, amount)

    while active:
        node = active.popleft()
        # Discharge: push while excess remains, relabel when stuck.
        while excess[node] > 0:
            pushed = False
            for index in adj[node]:
                if excess[node] <= 0:
                    break
                head = to[index]
                residual = cap[index]
                if residual > 0 and height[node] == height[head] + 1:
                    limit = residual if math.isfinite(residual) else big
                    push(index, min(excess[node], limit))
                    pushed = True
            if excess[node] <= 0:
                break
            if not pushed:
                # Relabel to one above the lowest admissible neighbour.
                old_height = height[node]
                new_height = min(
                    (height[to[index]] for index in adj[node] if cap[index] > 0),
                    default=2 * n,
                ) + 1
                if new_height >= 2 * n + 1:
                    new_height = 2 * n
                count[old_height] -= 1
                height[node] = new_height
                count[new_height] += 1
                # Gap heuristic: if no node remains at old_height, every
                # node above it (below n) can never reach the sink.
                if count[old_height] == 0 and old_height < n:
                    for other in range(n):
                        if other != s and old_height < height[other] < n:
                            count[height[other]] -= 1
                            height[other] = n + 1
                            count[n + 1] += 1
                if new_height >= 2 * n:
                    break  # cannot push anywhere; park the excess

    _drain_excess(network, s, t, excess)
    return excess[t]


def _reject_unbounded(adj, cap, to, n, s, t) -> None:
    """Raise if the sink is reachable from the source through infinite
    capacities alone."""
    seen = [False] * n
    seen[s] = True
    stack = [s]
    while stack:
        node = stack.pop()
        for index in adj[node]:
            head = to[index]
            if math.isinf(cap[index]) and not seen[head]:
                if head == t:
                    raise SolverError("unbounded flow: an all-infinite s-t path exists")
                seen[head] = True
                stack.append(head)


def _drain_excess(network: FlowNetwork, s: int, t: int, excess) -> None:
    """Return parked excess to the source so the residual network encodes
    a *feasible* maximum flow (conservation at every node), which the
    min-cut extraction relies on.

    For every node with positive excess there is, by the preflow
    invariant, a residual path back to the source; we repeatedly push the
    excess along such paths (found by DFS).
    """
    adj = network.raw_adj
    cap = network.raw_cap
    to = network.raw_to
    n = network.num_nodes
    for node in range(n):
        if node in (s, t):
            continue
        while excess[node] > 1e-12:
            # DFS for a residual path node -> s.
            parent = {node: -1}
            stack = [node]
            found = False
            while stack and not found:
                current = stack.pop()
                for index in adj[current]:
                    head = to[index]
                    if cap[index] > 0 and head not in parent:
                        parent[head] = index
                        if head == s:
                            found = True
                            break
                        stack.append(head)
            if not found:
                raise SolverError("push-relabel invariant violated: excess cannot drain")
            # Reconstruct path and push the bottleneck (capped by excess).
            path = []
            current = s
            while current != node:
                index = parent[current]
                path.append(index)
                current = to[index ^ 1]
            amount = min([excess[node]] + [cap[index] for index in path])
            for index in path:
                cap[index] -= amount
                cap[index ^ 1] += amount
            excess[node] -= amount
            excess[s] += amount
