"""Dinic's algorithm [Dinic 1970]: level graphs + blocking flows.

This is the kernel the paper settled on for the bipartite instances
produced by the k = 2 reduction ("the best performance was consistently
achieved by [10]", Section 6.1).  On unit-ish bipartite networks it runs
in ``O(E √V)``; in general ``O(V^2 E)``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Hashable, List

from repro.exceptions import SolverError
from repro.flow.network import FlowNetwork


def dinic(network: FlowNetwork, source: Hashable, sink: Hashable) -> float:
    """Run Dinic's algorithm; mutates residual capacities, returns the
    max-flow value."""
    s = network.node_id(source)
    t = network.node_id(sink)
    if s == t:
        raise SolverError("source and sink must differ")
    adj = network.raw_adj
    cap = network.raw_cap
    to = network.raw_to
    n = network.num_nodes

    total = 0.0
    level: List[int] = [0] * n
    iterator: List[int] = [0] * n

    def build_levels() -> bool:
        for i in range(n):
            level[i] = -1
        level[s] = 0
        frontier = deque([s])
        while frontier:
            node = frontier.popleft()
            for index in adj[node]:
                head = to[index]
                if level[head] == -1 and cap[index] > 0:
                    level[head] = level[node] + 1
                    frontier.append(head)
        return level[t] != -1

    def blocking_flow() -> float:
        """Iterative DFS pushing one augmenting path per descent."""
        pushed_total = 0.0
        while True:
            # Descend from s following admissible edges.
            path: List[int] = []
            node = s
            while node != t:
                advanced = False
                while iterator[node] < len(adj[node]):
                    index = adj[node][iterator[node]]
                    head = to[index]
                    if cap[index] > 0 and level[head] == level[node] + 1:
                        path.append(index)
                        node = head
                        advanced = True
                        break
                    iterator[node] += 1
                if advanced:
                    continue
                # Dead end: retreat (or finish if stuck at source).
                if node == s:
                    return pushed_total
                level[node] = -1  # prune from this phase
                index = path.pop()
                node = to[index ^ 1]
                iterator[node] += 1
            # Found an s-t path; push the bottleneck.
            bottleneck = min(cap[index] for index in path)
            if not math.isfinite(bottleneck):
                raise SolverError("unbounded flow: an all-infinite s-t path exists")
            for index in path:
                cap[index] -= bottleneck
                cap[index ^ 1] += bottleneck
            pushed_total += bottleneck
            # Restart the descent from the source; the iterator array is
            # kept across descents, so saturated prefixes are skipped in
            # O(1) amortised and the phase stays linear in E.

    while build_levels():
        for i in range(n):
            iterator[i] = 0
        total += blocking_flow()
    return total
