"""Max-flow substrate: residual networks and four interchangeable kernels
(Dinic — the paper's choice —, Edmonds–Karp, FIFO push–relabel with gap
heuristic, capacity scaling)."""

from repro.flow.api import (
    ALGORITHMS,
    DEFAULT_ALGORITHM,
    FlowResult,
    choose_algorithm,
    max_flow,
)
from repro.flow.capacity_scaling import capacity_scaling
from repro.flow.dinic import dinic
from repro.flow.edmonds_karp import edmonds_karp
from repro.flow.network import Edge, FlowNetwork
from repro.flow.push_relabel import push_relabel

__all__ = [
    "ALGORITHMS",
    "DEFAULT_ALGORITHM",
    "Edge",
    "FlowNetwork",
    "FlowResult",
    "capacity_scaling",
    "choose_algorithm",
    "dinic",
    "edmonds_karp",
    "max_flow",
    "push_relabel",
]
