"""Uniform facade over the max-flow kernels.

``max_flow(network, s, t, algorithm="dinic")`` dispatches to a kernel,
times it, and returns a :class:`FlowResult` that also exposes the
minimum cut (via the residual network).  Kernels mutate the network, so
call :meth:`FlowNetwork.reset_flow` between runs when comparing
algorithms on the same instance.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Hashable, List, Tuple

from repro.exceptions import SolverError
from repro.flow.capacity_scaling import capacity_scaling
from repro.flow.dinic import dinic
from repro.flow.edmonds_karp import edmonds_karp
from repro.flow.network import Edge, FlowNetwork
from repro.flow.push_relabel import push_relabel

ALGORITHMS: Dict[str, Callable[[FlowNetwork, Hashable, Hashable], float]] = {
    "dinic": dinic,
    "edmonds_karp": edmonds_karp,
    "push_relabel": push_relabel,
    "capacity_scaling": capacity_scaling,
}

DEFAULT_ALGORITHM = "dinic"


class FlowResult:
    """Outcome of a max-flow computation."""

    __slots__ = ("value", "algorithm", "elapsed_seconds", "_network", "_source", "_sink")

    def __init__(
        self,
        value: float,
        algorithm: str,
        elapsed_seconds: float,
        network: FlowNetwork,
        source: Hashable,
        sink: Hashable,
    ):
        self.value = value
        self.algorithm = algorithm
        self.elapsed_seconds = elapsed_seconds
        self._network = network
        self._source = source
        self._sink = sink

    def min_cut(self) -> Tuple[List[Hashable], List[Edge]]:
        """Source-side node labels and saturated cut edges (max-flow =
        min-cut, so the cut edges' capacities sum to :attr:`value`)."""
        return self._network.min_cut(self._source, self._sink)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowResult {self.algorithm}: value={self.value}>"


def choose_algorithm(network: FlowNetwork) -> str:
    """Heuristic kernel selection (Section 6.1 notes the best choice
    depends on parameters such as the maximum edge capacity and the
    smaller bipartition side).

    Rules of thumb encoded here, backed by the max-flow ablation bench:

    * tiny networks — Edmonds–Karp (lowest constant factor);
    * huge finite capacities relative to edge count — capacity scaling
      (augmentation counts scale with ``log U``, not ``U``);
    * otherwise — Dinic (the paper's production choice).
    """
    if network.num_edges <= 64:
        return "edmonds_karp"
    top = network.max_finite_capacity()
    if top > 32 * max(1, network.num_edges):
        return "capacity_scaling"
    return "dinic"


def max_flow(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    algorithm: str = DEFAULT_ALGORITHM,
) -> FlowResult:
    """Compute a maximum flow with the named kernel.

    ``algorithm="auto"`` delegates to :func:`choose_algorithm`.  Unknown
    names raise :class:`SolverError` so typos fail loudly rather than
    silently defaulting.
    """
    if algorithm == "auto":
        algorithm = choose_algorithm(network)
    try:
        kernel = ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise SolverError(f"unknown max-flow algorithm {algorithm!r} (known: {known})") from None
    started = time.perf_counter()
    value = kernel(network, source, sink)
    elapsed = time.perf_counter() - started
    return FlowResult(value, algorithm, elapsed, network, source, sink)
