"""Residual flow networks (Definition 2.2).

A :class:`FlowNetwork` stores a directed capacitated graph in the
standard residual representation: every edge is paired with a reverse
edge of capacity 0, and pushing flow increases the reverse residual.
Nodes are referred to by arbitrary hashable labels externally and dense
integer ids internally, so the max-flow kernels run on plain lists.

Capacities may be ``math.inf`` — the bipartite vertex-cover reduction
(Theorem 2.3) uses infinite middle edges that must never be cut.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterator, List, NamedTuple, Optional, Tuple

from repro.exceptions import ReductionError


class Edge(NamedTuple):
    """A directed edge as seen by callers (not the residual twin)."""

    source: Hashable
    target: Hashable
    capacity: float
    flow: float


class FlowNetwork:
    """Directed graph with capacities in the residual representation."""

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []
        # Parallel edge arrays: edge i has twin i ^ 1.
        self._to: List[int] = []
        self._cap: List[float] = []
        self._adj: List[List[int]] = []
        self._forward_edges: List[int] = []  # indices of caller-added edges

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, label: Hashable) -> int:
        """Register a node; returns its dense id (idempotent)."""
        if label in self._ids:
            return self._ids[label]
        node_id = len(self._labels)
        self._ids[label] = node_id
        self._labels.append(label)
        self._adj.append([])
        return node_id

    def add_edge(self, source: Hashable, target: Hashable, capacity: float) -> int:
        """Add a directed edge; returns its index.

        Negative capacities are rejected; zero-capacity edges are allowed
        (they simply never carry flow).
        """
        if capacity < 0 or math.isnan(capacity):
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        u = self.add_node(source)
        v = self.add_node(target)
        index = len(self._to)
        self._to.append(v)
        self._cap.append(float(capacity))
        self._adj[u].append(index)
        self._to.append(u)
        self._cap.append(0.0)
        self._adj[v].append(index + 1)
        self._forward_edges.append(index)
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def node_id(self, label: Hashable) -> int:
        try:
            return self._ids[label]
        except KeyError:
            raise ReductionError(f"unknown node {label!r}") from None

    def label(self, node_id: int) -> Hashable:
        return self._labels[node_id]

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._forward_edges)

    def edges(self) -> Iterator[Edge]:
        """Caller-added edges with their current flow."""
        for index in self._forward_edges:
            twin = index ^ 1
            original = self._original_capacity(index)
            flow = self._cap[twin]  # residual on the twin == pushed flow
            yield Edge(
                self._labels[self._to[twin]],
                self._labels[self._to[index]],
                original,
                flow,
            )

    def _original_capacity(self, index: int) -> float:
        return self._cap[index] + self._cap[index ^ 1]

    def flow_on(self, edge_index: int) -> float:
        """Flow currently pushed through a caller-added edge."""
        return self._cap[edge_index ^ 1]

    def reset_flow(self) -> None:
        """Return every edge to zero flow (for algorithm comparisons)."""
        for index in self._forward_edges:
            twin = index ^ 1
            total = self._cap[index] + self._cap[twin]
            self._cap[index] = total
            self._cap[twin] = 0.0

    # ------------------------------------------------------------------
    # Kernel-facing raw accessors (lists, ints only)
    # ------------------------------------------------------------------

    @property
    def raw_to(self) -> List[int]:
        return self._to

    @property
    def raw_cap(self) -> List[float]:
        return self._cap

    @property
    def raw_adj(self) -> List[List[int]]:
        return self._adj

    # ------------------------------------------------------------------
    # Residual reachability / cuts
    # ------------------------------------------------------------------

    def residual_reachable(self, source: Hashable) -> List[bool]:
        """Nodes reachable from ``source`` along positive residual edges.

        After a max flow this is the source side of a minimum cut.
        """
        start = self.node_id(source)
        seen = [False] * self.num_nodes
        seen[start] = True
        stack = [start]
        adj, cap, to = self._adj, self._cap, self._to
        while stack:
            node = stack.pop()
            for index in adj[node]:
                if cap[index] > 0 and not seen[to[index]]:
                    seen[to[index]] = True
                    stack.append(to[index])
        return seen

    def min_cut(self, source: Hashable, sink: Hashable) -> Tuple[List[Hashable], List[Edge]]:
        """After max flow: the source-side labels and the saturated cut edges.

        Raises if the sink is still reachable (i.e. max flow has not been
        run to completion).
        """
        reachable = self.residual_reachable(source)
        if reachable[self.node_id(sink)]:
            raise ReductionError("min_cut requires a completed max flow (sink reachable)")
        source_side = [label for label, nid in self._ids.items() if reachable[nid]]
        cut_edges = []
        for index in self._forward_edges:
            twin = index ^ 1
            u = self._to[twin]
            v = self._to[index]
            if reachable[u] and not reachable[v]:
                cut_edges.append(
                    Edge(
                        self._labels[u],
                        self._labels[v],
                        self._original_capacity(index),
                        self._cap[twin],
                    )
                )
        return source_side, cut_edges

    def max_finite_capacity(self) -> float:
        """Largest finite forward capacity (0.0 if none); used by the
        capacity-scaling kernel to pick its initial threshold."""
        best = 0.0
        for index in self._forward_edges:
            total = self._original_capacity(index)
            if math.isfinite(total) and total > best:
                best = total
        return best
