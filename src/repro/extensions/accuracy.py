"""Accuracy-aware classifier construction (Section 8 future work).

The paper fixes every classifier's accuracy at an implicit threshold
("the cost of each classifier is fixed to match a predefined (implicit)
accuracy threshold") and names the cost/accuracy trade-off as future
work.  This extension models it:

* every classifier comes in *tiers* — (cost, accuracy) pairs; more
  labelled data buys higher accuracy;
* answering a query through a conjunction of classifiers multiplies
  their error-free probabilities, so a query ``q`` with requirement
  ``τ_q`` is covered by picks ``{(c_i, a_i)}`` iff ``⋃ c_i = q`` and
  ``Π a_i ≥ τ_q``;
* the goal is again minimum total cost.

Algorithms:

* :func:`min_cover_with_accuracy` — exact single-query optimum via a DP
  over (property mask, quantised accuracy budget);
* :class:`AccuracyAwarePlanner` — a Local-Greedy-style global loop with
  *tier upgrades*: a classifier already bought at a low tier can be
  upgraded by paying the cost difference (relabelling more data), so
  sharing across queries stays beneficial.

Choosing fewer, longer classifiers now has a second advantage the paper
hints at: a single classifier must clear ``τ`` alone, while a conjunction
of three must clear it jointly — exactly the trade-off this model makes
quantifiable.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Mapping, NamedTuple, Optional, Sequence, Set, Tuple

from repro.core.properties import Classifier, PropertySet, Query, iter_nonempty_subsets
from repro.exceptions import InvalidInstanceError, UncoverableQueryError


class Tier(NamedTuple):
    """One buying option for a classifier."""

    cost: float
    accuracy: float


def validate_tiers(clf: Classifier, tiers: Sequence[Tier]) -> Tuple[Tier, ...]:
    """Tiers must have positive finite cost ordering and accuracy in
    (0, 1]; they are normalised to strictly-improving (cost, accuracy)
    pairs (dominated tiers dropped)."""
    if not tiers:
        raise InvalidInstanceError(f"classifier {sorted(clf)!r} has no tiers")
    cleaned = []
    for tier in tiers:
        cost, accuracy = float(tier[0]), float(tier[1])
        if cost < 0 or math.isnan(cost) or math.isinf(cost):
            raise InvalidInstanceError(f"tier cost must be finite >= 0, got {cost}")
        if not 0 < accuracy <= 1:
            raise InvalidInstanceError(f"tier accuracy must be in (0, 1], got {accuracy}")
        cleaned.append(Tier(cost, accuracy))
    cleaned.sort()
    result: List[Tier] = []
    for tier in cleaned:
        if result and tier.accuracy <= result[-1].accuracy:
            continue  # dominated: costs more (or equal), no better accuracy
        result.append(tier)
    return tuple(result)


class TieredCostModel:
    """Maps classifiers to their buying tiers.

    Built either from an explicit table or from a base
    :class:`~repro.core.costs.CostModel` plus a *accuracy curve*: tier
    ``i`` costs ``base · multiplier_i`` and reaches ``accuracy_i``
    (labelled-example counts scale superlinearly with target accuracy).
    """

    def __init__(self, table: Mapping[Classifier, Sequence[Tier]]):
        self._table: Dict[Classifier, Tuple[Tier, ...]] = {}
        for clf, tiers in table.items():
            key = frozenset(clf)
            self._table[key] = validate_tiers(key, [Tier(*t) for t in tiers])

    @classmethod
    def from_cost_model(
        cls,
        base,
        queries: Iterable[Query],
        accuracies: Sequence[float] = (0.9, 0.95, 0.99),
        multipliers: Sequence[float] = (1.0, 1.7, 3.0),
        max_classifier_length: Optional[int] = None,
    ) -> "TieredCostModel":
        """Derive tiers for every finite-cost candidate classifier of the
        query load."""
        if len(accuracies) != len(multipliers):
            raise InvalidInstanceError("accuracies and multipliers must align")
        table: Dict[Classifier, List[Tier]] = {}
        for q in queries:
            for clf in iter_nonempty_subsets(q, max_classifier_length):
                if clf in table:
                    continue
                cost = base.cost(clf)
                if math.isfinite(cost):
                    table[clf] = [
                        Tier(cost * m, a) for m, a in zip(multipliers, accuracies)
                    ]
        return cls(table)

    def tiers(self, clf: Classifier) -> Tuple[Tier, ...]:
        return self._table.get(frozenset(clf), ())

    def classifiers(self) -> List[Classifier]:
        return sorted(self._table, key=lambda c: (len(c), tuple(sorted(c))))

    def __contains__(self, clf: Classifier) -> bool:
        return frozenset(clf) in self._table


class TierPick(NamedTuple):
    """A purchased (classifier, tier) pair."""

    classifier: Classifier
    tier: Tier


class AccuracyCover(NamedTuple):
    """Minimum-cost accuracy-feasible cover of one query."""

    picks: Tuple[TierPick, ...]
    cost: float
    accuracy: float


#: Quantisation steps for the accuracy-budget dimension of the DP.
DEFAULT_RESOLUTION = 200


def min_cover_with_accuracy(
    q: Query,
    model: TieredCostModel,
    threshold: float,
    upgrades: Optional[Mapping[Classifier, Tier]] = None,
    resolution: int = DEFAULT_RESOLUTION,
) -> Optional[AccuracyCover]:
    """Exact (up to quantisation) single-query optimum.

    DP over ``(covered mask, consumed accuracy budget)`` where the budget
    is ``-ln(threshold)`` cut into ``resolution`` steps and each pick
    consumes ``ceil(-ln(accuracy) / step)`` — a conservative rounding, so
    the returned cover always truly satisfies the threshold.

    ``upgrades`` prices already-bought classifiers: a tier's incremental
    cost is ``max(0, tier.cost - bought.cost)``.
    """
    if not 0 < threshold <= 1:
        raise InvalidInstanceError(f"threshold must be in (0, 1], got {threshold}")
    props = sorted(q)
    index = {prop: i for i, prop in enumerate(props)}
    full = (1 << len(props)) - 1
    budget_total = -math.log(threshold)
    step = budget_total / resolution if budget_total > 0 else 0.0

    def units(accuracy: float) -> int:
        if accuracy >= 1.0:
            return 0
        if step == 0.0:
            return resolution + 1  # any inaccuracy breaks a τ = 1 requirement
        return math.ceil((-math.log(accuracy)) / step - 1e-12)

    options: List[Tuple[int, int, float, Classifier, Tier]] = []
    upgrades = upgrades or {}
    for clf in model.classifiers():
        if not clf <= q:
            continue
        mask = 0
        for prop in clf:
            mask |= 1 << index[prop]
        bought = upgrades.get(clf)
        for tier in model.tiers(clf):
            consumed = units(tier.accuracy)
            if consumed > resolution:
                continue
            incremental = tier.cost
            if bought is not None:
                if tier.accuracy <= bought.accuracy:
                    incremental = 0.0
                    consumed = min(consumed, units(bought.accuracy))
                    tier = bought
                else:
                    incremental = max(0.0, tier.cost - bought.cost)
            options.append((mask, consumed, incremental, clf, tier))

    size = full + 1
    INF = math.inf
    # dp[mask] = list over budget-units of (cost, picks-backpointer)
    dp_cost = [[INF] * (resolution + 1) for _ in range(size)]
    back: List[List[Optional[Tuple[int, int, int]]]] = [
        [None] * (resolution + 1) for _ in range(size)
    ]
    dp_cost[0][0] = 0.0

    for mask in range(size):
        row = dp_cost[mask]
        for used in range(resolution + 1):
            cost_here = row[used]
            if cost_here is INF:
                continue
            for option_index, (clf_mask, consumed, incremental, _clf, _tier) in enumerate(options):
                next_mask = mask | clf_mask
                if next_mask == mask:
                    continue
                next_used = used + consumed
                if next_used > resolution:
                    continue
                new_cost = cost_here + incremental
                if new_cost < dp_cost[next_mask][next_used]:
                    dp_cost[next_mask][next_used] = new_cost
                    back[next_mask][next_used] = (mask, used, option_index)

    best_used = None
    best_cost = INF
    for used in range(resolution + 1):
        if dp_cost[full][used] < best_cost:
            best_cost = dp_cost[full][used]
            best_used = used
    if best_used is None or best_cost is INF:
        return None

    picks: List[TierPick] = []
    mask, used = full, best_used
    accuracy = 1.0
    total = 0.0
    while mask:
        pointer = back[mask][used]
        assert pointer is not None
        mask, used, option_index = pointer
        _m, _c, incremental, clf, tier = options[option_index]
        picks.append(TierPick(clf, tier))
        accuracy *= tier.accuracy
        total += incremental
    picks.reverse()
    return AccuracyCover(tuple(picks), total, accuracy)


class AccuracyAwarePlan:
    """Outcome of the global accuracy-aware planning loop."""

    def __init__(self, picks: Mapping[Classifier, Tier], cost: float):
        self.picks: Dict[Classifier, Tier] = dict(picks)
        self.cost = float(cost)

    def accuracy_of(self, q: Query) -> float:
        """Best achievable accuracy for ``q`` from the purchased picks:
        maximise the accuracy product over subsets whose union is ``q``
        (exact DP over the property mask — queries are short)."""
        props = sorted(q)
        index = {prop: i for i, prop in enumerate(props)}
        full = (1 << len(props)) - 1
        best = [-math.inf] * (full + 1)
        best[0] = 0.0  # log-accuracy
        usable = [
            (clf, self.picks[clf]) for clf in self.picks if clf <= q
        ]
        for mask in range(full + 1):
            if best[mask] == -math.inf:
                continue
            for clf, tier in usable:
                clf_mask = 0
                for prop in clf:
                    clf_mask |= 1 << index[prop]
                next_mask = mask | clf_mask
                if next_mask == mask:
                    continue
                candidate = best[mask] + math.log(tier.accuracy)
                if candidate > best[next_mask]:
                    best[next_mask] = candidate
        if best[full] == -math.inf:
            return 0.0
        return math.exp(best[full])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AccuracyAwarePlan cost={self.cost} picks={len(self.picks)}>"


class AccuracyAwarePlanner:
    """Local-Greedy-style global loop with tier upgrades.

    Iteratively covers the query whose cheapest accuracy-feasible
    residual cover is globally cheapest; classifiers bought for earlier
    queries can be *upgraded* (pay the tier difference) when a later
    query needs more accuracy.
    """

    def __init__(
        self,
        model: TieredCostModel,
        threshold: float = 0.9,
        per_query_thresholds: Optional[Mapping[Query, float]] = None,
        resolution: int = DEFAULT_RESOLUTION,
    ):
        if not 0 < threshold <= 1:
            raise InvalidInstanceError(f"threshold must be in (0, 1], got {threshold}")
        self.model = model
        self.threshold = threshold
        self.per_query_thresholds = dict(per_query_thresholds or {})
        self.resolution = resolution

    def threshold_of(self, q: Query) -> float:
        return float(self.per_query_thresholds.get(q, self.threshold))

    def plan(self, queries: Sequence[Query]) -> AccuracyAwarePlan:
        bought: Dict[Classifier, Tier] = {}
        total = 0.0
        remaining: List[Query] = list(dict.fromkeys(queries))

        while remaining:
            best_index = None
            best_cover: Optional[AccuracyCover] = None
            for position, q in enumerate(remaining):
                cover = min_cover_with_accuracy(
                    q,
                    self.model,
                    self.threshold_of(q),
                    upgrades=bought,
                    resolution=self.resolution,
                )
                if cover is None:
                    raise UncoverableQueryError(
                        q,
                        f"query {sorted(q)!r} cannot reach accuracy "
                        f"{self.threshold_of(q)} with the available tiers",
                    )
                if best_cover is None or cover.cost < best_cover.cost:
                    best_cover = cover
                    best_index = position
            assert best_cover is not None and best_index is not None
            for clf, tier in best_cover.picks:
                current = bought.get(clf)
                if current is None or tier.accuracy > current.accuracy:
                    bought[clf] = tier
            total += best_cover.cost
            remaining.pop(best_index)

        return AccuracyAwarePlan(bought, total)


def verify_plan(
    plan: AccuracyAwarePlan,
    queries: Sequence[Query],
    model: TieredCostModel,
    threshold: float,
    per_query_thresholds: Optional[Mapping[Query, float]] = None,
) -> None:
    """Independent feasibility check of an accuracy-aware plan."""
    per_query_thresholds = per_query_thresholds or {}
    for q in queries:
        required = float(per_query_thresholds.get(q, threshold))
        achieved = plan.accuracy_of(q)
        if achieved + 1e-12 < required:
            raise InvalidInstanceError(
                f"query {sorted(q)!r} reaches accuracy {achieved:.4f} < {required}"
            )
    recomputed = sum(tier.cost for tier in plan.picks.values())
    if plan.cost > recomputed + 1e-9:
        raise InvalidInstanceError(
            f"plan cost {plan.cost} exceeds the sum of tier prices {recomputed}"
        )
