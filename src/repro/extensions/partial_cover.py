"""The *partial cover* variant (Sections 2.1, 5.3 and 8 — the paper's
declared future work, implemented here as an extension).

Queries carry weights reflecting their importance, the classifier budget
is bounded, and the goal is to maximise the total weight of *fully*
covered queries (partially satisfying a query is worthless — the paper
cites evidence it can be worse than not matching at all).

The paper proves nothing positive here and notes the problem is "much
harder to approximate" (its WSC reduction breaks: covering some of a
query's elements gains nothing).  Accordingly this module provides

* :func:`exact_partial_cover` — branch-and-bound optimum for small
  instances (the test oracle);
* :func:`greedy_partial_cover` — a query-bundle greedy: repeatedly buy
  the residual cover with the best covered-weight / incremental-cost
  ratio that still fits the budget;
* :func:`classifier_greedy_partial_cover` — a per-classifier greedy
  (marginal covered weight per cost), cheaper per step but blind to
  multi-classifier bundles.

Both heuristics are feasible-by-construction and anytime; neither
carries an approximation guarantee, matching the paper's assessment.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.costs import OverlayCost
from repro.core.coverage import CoverageChecker
from repro.core.instance import MC3Instance
from repro.core.mincover import min_cover
from repro.core.properties import Classifier, Query
from repro.exceptions import InvalidInstanceError, SolverError


class BudgetedSolution:
    """Outcome of a budgeted partial-cover computation."""

    __slots__ = ("classifiers", "cost", "covered_queries", "covered_weight", "budget")

    def __init__(
        self,
        classifiers: Iterable[Classifier],
        cost: float,
        covered_queries: Iterable[Query],
        covered_weight: float,
        budget: float,
    ):
        self.classifiers: FrozenSet[Classifier] = frozenset(classifiers)
        self.cost = float(cost)
        self.covered_queries: FrozenSet[Query] = frozenset(covered_queries)
        self.covered_weight = float(covered_weight)
        self.budget = float(budget)

    def verify(self, instance: MC3Instance, weights: Mapping[Query, float]) -> "BudgetedSolution":
        """Independent feasibility check: within budget, coverage claims
        true, weight adds up.  Returns self so calls chain."""
        if self.cost > self.budget + 1e-9:
            raise InvalidInstanceError(
                f"budgeted solution spends {self.cost} > budget {self.budget}"
            )
        actual_cost = instance.total_weight(self.classifiers)
        if not math.isclose(actual_cost, self.cost, rel_tol=1e-9, abs_tol=1e-9):
            raise InvalidInstanceError(
                f"recorded cost {self.cost} != instance pricing {actual_cost}"
            )
        checker = CoverageChecker(instance.queries)
        uncovered = set(checker.uncovered_queries(self.classifiers))
        weight = 0.0
        for q in instance.queries:
            covered = q not in uncovered
            if covered != (q in self.covered_queries):
                raise InvalidInstanceError(f"coverage claim wrong for {sorted(q)!r}")
            if covered:
                weight += float(weights.get(q, 1.0))
        if not math.isclose(weight, self.covered_weight, rel_tol=1e-9, abs_tol=1e-9):
            raise InvalidInstanceError(
                f"recorded weight {self.covered_weight} != actual {weight}"
            )
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BudgetedSolution weight={self.covered_weight} cost={self.cost}"
            f"/{self.budget} ({len(self.covered_queries)} queries)>"
        )


def _validate(instance: MC3Instance, weights: Mapping[Query, float], budget: float):
    if budget < 0 or math.isnan(budget):
        raise InvalidInstanceError(f"budget must be >= 0, got {budget}")
    for q, w in weights.items():
        if w < 0 or math.isnan(float(w)):
            raise InvalidInstanceError(f"query weight must be >= 0, got {w}")


def _weight_of(weights: Mapping[Query, float], q: Query) -> float:
    return float(weights.get(q, 1.0))


def _covered_set(instance: MC3Instance, selected: Set[Classifier]) -> Set[Query]:
    checker = CoverageChecker(instance.queries)
    uncovered = set(checker.uncovered_queries(selected))
    return {q for q in instance.queries if q not in uncovered}


def _finish(
    instance: MC3Instance,
    weights: Mapping[Query, float],
    budget: float,
    selected: Set[Classifier],
) -> BudgetedSolution:
    covered = _covered_set(instance, selected)
    return BudgetedSolution(
        selected,
        instance.total_weight(selected),
        covered,
        sum(_weight_of(weights, q) for q in covered),
        budget,
    )


# ----------------------------------------------------------------------
# Exact branch-and-bound (test oracle, small instances)
# ----------------------------------------------------------------------

def exact_partial_cover(
    instance: MC3Instance,
    weights: Mapping[Query, float],
    budget: float,
    node_limit: int = 1_000_000,
) -> BudgetedSolution:
    """Optimal budgeted partial cover by branching on classifiers.

    Branches on the classifier universe (include/exclude, by enumeration
    order); prunes when even covering every remaining query cannot beat
    the incumbent.  Exponential — meant for instances whose universe has
    at most a few dozen classifiers.
    """
    _validate(instance, weights, budget)
    universe = instance.classifier_universe()
    universe = [clf for clf in universe if instance.weight(clf) <= budget]
    costs = [instance.weight(clf) for clf in universe]
    queries = list(instance.queries)
    query_weights = [_weight_of(weights, q) for q in queries]

    # For pruning: which classifiers can help which query.
    usable_for: List[List[int]] = [
        [i for i, clf in enumerate(universe) if clf <= q] for q in queries
    ]

    best_weight = -1.0
    best_selection: Tuple[int, ...] = ()
    best_cost = 0.0
    nodes = [0]

    def covered_weight(selection: Set[int]) -> float:
        total = 0.0
        for qi, q in enumerate(queries):
            remaining = set(q)
            for ci in usable_for[qi]:
                if ci in selection:
                    remaining -= universe[ci]
                    if not remaining:
                        break
            if not remaining:
                total += query_weights[qi]
        return total

    def upper_bound(index: int, selection: Set[int]) -> float:
        """Optimistic: every query that could still be covered by
        selected + remaining classifiers counts fully."""
        total = 0.0
        available = selection | set(range(index, len(universe)))
        for qi, q in enumerate(queries):
            union: Set[str] = set()
            for ci in usable_for[qi]:
                if ci in available:
                    union |= universe[ci]
            if union >= q:
                total += query_weights[qi]
        return total

    def descend(index: int, selection: Set[int], cost: float) -> None:
        nonlocal best_weight, best_selection, best_cost
        nodes[0] += 1
        if nodes[0] > node_limit:
            raise SolverError(
                f"exact partial cover exceeded {node_limit} nodes; instance too large"
            )
        current = covered_weight(selection)
        if current > best_weight or (
            current == best_weight and cost < best_cost
        ):
            best_weight = current
            best_selection = tuple(sorted(selection))
            best_cost = cost
        if index >= len(universe):
            return
        if upper_bound(index, selection) <= best_weight + 1e-12:
            return
        # Include (if affordable), then exclude.
        clf_cost = costs[index]
        if cost + clf_cost <= budget + 1e-12:
            selection.add(index)
            descend(index + 1, selection, cost + clf_cost)
            selection.remove(index)
        descend(index + 1, selection, cost)

    descend(0, set(), 0.0)
    selected = {universe[i] for i in best_selection}
    return _finish(instance, weights, budget, selected)


# ----------------------------------------------------------------------
# Query-bundle greedy
# ----------------------------------------------------------------------

def greedy_partial_cover(
    instance: MC3Instance,
    weights: Mapping[Query, float],
    budget: float,
) -> BudgetedSolution:
    """Repeatedly buy the best-ratio residual query cover that fits.

    Per iteration, computes for every uncovered query its cheapest
    residual cover (already-bought classifiers are free, via the
    single-query DP) and selects the query maximising
    ``weight / incremental cost`` among those whose incremental cost
    fits the remaining budget; zero-incremental-cost covers are always
    taken.  Stops when nothing fits.
    """
    _validate(instance, weights, budget)
    overlay = OverlayCost(instance.cost)
    selected: Set[Classifier] = set()
    spent = 0.0
    remaining: Dict[Query, float] = {
        q: _weight_of(weights, q) for q in instance.queries
    }
    by_property: Dict[str, Set[Query]] = {}
    for q in remaining:
        for prop in q:
            by_property.setdefault(prop, set()).add(q)

    def residual_cover(q: Query):
        pairs = []
        for clf in instance.candidates(q):
            weight = overlay.cost(clf)
            if math.isfinite(weight):
                pairs.append((clf, weight))
        return min_cover(q, pairs, required=False)

    # Residual covers only change for queries sharing a property with a
    # purchase, so they are cached and invalidated selectively.
    cover_cache: Dict[Query, object] = {}

    while remaining:
        best_query: Optional[Query] = None
        best_cover = None
        best_ratio = -1.0
        for q, query_weight in remaining.items():
            cover = cover_cache.get(q)
            if cover is None:
                cover = residual_cover(q)
                cover_cache[q] = cover if cover is not None else "none"
            if cover == "none" or cover is None:
                continue
            if spent + cover.cost > budget + 1e-12:
                continue
            if cover.cost <= 1e-12:
                ratio = math.inf
            elif query_weight <= 0:
                continue
            else:
                ratio = query_weight / cover.cost
            if ratio > best_ratio:
                best_ratio = ratio
                best_query = q
                best_cover = cover
        if best_query is None:
            break
        touched: Set[str] = set()
        for clf in best_cover.classifiers:
            if clf not in selected:
                selected.add(clf)
                overlay.select(clf)
                touched |= clf
        spent += best_cover.cost
        # Invalidate caches of affected queries and collect those the new
        # purchases completed for free.
        affected: Set[Query] = set()
        for prop in touched:
            affected |= by_property.get(prop, set())
        for q in affected:
            cover_cache.pop(q, None)
        for q in affected:
            if q not in remaining:
                continue
            cover = residual_cover(q)
            cover_cache[q] = cover if cover is not None else "none"
            if cover is not None and cover.cost <= 1e-12:
                del remaining[q]

    return _finish(instance, weights, budget, selected)


# ----------------------------------------------------------------------
# Per-classifier greedy
# ----------------------------------------------------------------------

def classifier_greedy_partial_cover(
    instance: MC3Instance,
    weights: Mapping[Query, float],
    budget: float,
) -> BudgetedSolution:
    """Greedy over individual classifiers by marginal covered weight per
    cost (completed-query weight gained by adding the classifier).

    Simpler and faster per step than the bundle greedy but cannot see
    that two classifiers jointly complete a query; the ablation bench
    contrasts the two.
    """
    _validate(instance, weights, budget)
    universe = [
        clf for clf in instance.classifier_universe() if instance.weight(clf) <= budget
    ]
    selected: Set[Classifier] = set()
    spent = 0.0

    # Residual property sets per query.
    residual: Dict[Query, Set[str]] = {q: set(q) for q in instance.queries}

    def gain_of(clf: Classifier) -> float:
        gained = 0.0
        for q, remaining in residual.items():
            if remaining and clf <= q and remaining <= clf:
                gained += _weight_of(weights, q)
        return gained

    while True:
        best_clf: Optional[Classifier] = None
        best_score = 0.0
        for clf in universe:
            if clf in selected:
                continue
            cost = instance.weight(clf)
            if spent + cost > budget + 1e-12:
                continue
            gained = gain_of(clf)
            if gained <= 0:
                continue
            score = gained / cost if cost > 0 else math.inf
            if score > best_score:
                best_score = score
                best_clf = clf
        if best_clf is None:
            break
        selected.add(best_clf)
        spent += instance.weight(best_clf)
        for q, remaining in residual.items():
            if best_clf <= q:
                remaining -= best_clf

    return _finish(instance, weights, budget, selected)
