"""Incremental classifier planning.

Query loads evolve: new popular queries arrive after classifiers have
already been trained.  Re-solving from scratch would ignore the sunk
cost of existing classifiers; the incremental planner instead solves
each batch's *residual* problem — previously built classifiers are free
(weight 0, exactly the paper's modelling of "selected" classifiers) —
and accumulates the selection.

This wraps any registered solver.  Batch-by-batch costs are reported
incrementally; :meth:`IncrementalPlanner.replan` computes the
from-scratch optimum over everything seen so far, quantifying the price
of incrementality.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.costs import CostModel, OverlayCost
from repro.core.coverage import verify_cover
from repro.core.instance import MC3Instance
from repro.core.properties import (
    Classifier,
    Query,
    classifier_sort_key,
    query as make_query,
)
from repro.core.solution import Solution, SolverResult
from repro.exceptions import InvalidInstanceError
from repro.solvers import make_solver


class BatchOutcome:
    """Result of planning one batch of queries."""

    __slots__ = ("batch_index", "new_queries", "incremental_cost", "new_classifiers", "solver_result")

    def __init__(
        self,
        batch_index: int,
        new_queries: Tuple[Query, ...],
        incremental_cost: float,
        new_classifiers: FrozenSet[Classifier],
        solver_result: Optional[SolverResult],
    ):
        self.batch_index = batch_index
        self.new_queries = new_queries
        self.incremental_cost = incremental_cost
        self.new_classifiers = new_classifiers
        self.solver_result = solver_result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BatchOutcome #{self.batch_index}: +{len(self.new_queries)} queries, "
            f"+{len(self.new_classifiers)} classifiers, cost +{self.incremental_cost:g}>"
        )


class IncrementalPlanner:
    """Stateful planner over an evolving query load.

    Parameters
    ----------
    cost:
        The (stable) classifier cost model.
    solver_name / solver_kwargs:
        Which solver handles each residual batch (default: Algorithm 3).
    max_classifier_length:
        Optional bound k' applied to every batch.
    cache:
        Component-solution cache spec (see :mod:`repro.engine.cache`)
        shared by every batch solve *and* :meth:`replan`.  This is the
        incremental fast path: a new batch's residual decomposes into
        components, and every component untouched by the batch (no new
        query shares properties with it, no built classifier changed its
        candidate costs) fingerprints identically to last time and is
        served from the cache instead of re-solved.
    """

    def __init__(
        self,
        cost: CostModel,
        solver_name: str = "mc3-general",
        solver_kwargs: Optional[Dict[str, object]] = None,
        max_classifier_length: Optional[int] = None,
        cache: Optional[object] = None,
    ):
        self.cost = cost
        self.solver_name = solver_name
        self.solver_kwargs = dict(solver_kwargs or {})
        if cache is not None:
            self.solver_kwargs["cache"] = cache
        self.cache = self.solver_kwargs.get("cache")
        self.max_classifier_length = max_classifier_length
        self._built: Set[Classifier] = set()
        self._queries: List[Query] = []
        self._query_set: Set[Query] = set()
        self._batches: List[BatchOutcome] = []
        self._total_cost = 0.0
        self._digest_chain = hashlib.blake2b(
            b"mc3-incremental-state/v2", digest_size=16
        ).digest()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def built_classifiers(self) -> FrozenSet[Classifier]:
        """Everything trained so far."""
        return frozenset(self._built)

    @property
    def queries(self) -> Tuple[Query, ...]:
        """Every distinct query seen so far, in arrival order."""
        return tuple(self._queries)

    @property
    def total_cost(self) -> float:
        """Cumulative training spend."""
        return self._total_cost

    @property
    def batches(self) -> Tuple[BatchOutcome, ...]:
        return tuple(self._batches)

    def state_digest(self) -> str:
        """Content digest of the planner's workload state.

        A blake2b hash chain folded forward by :meth:`add_batch`: each
        link hashes the previous link together with that batch's
        canonical outcome — the fresh queries in arrival order, the new
        classifiers in canonical order, and the exact incremental cost
        (float bit pattern, not a rounded rendering).  Two planners
        with equal digests went through bit-identical batch-outcome
        histories, which is precisely what the journal-replay
        equivalence contract promises to reproduce; transient health
        state (breakers, caches) is deliberately outside the digest.
        Chaining makes reads O(1) — the planner daemon stamps every
        reply with the digest, so it must not rescan the whole
        accumulated state per request — and the sorted content keeps it
        stable across processes and ``PYTHONHASHSEED`` values.
        """
        return self._digest_chain.hex()

    def _fold_digest(self, outcome: BatchOutcome) -> None:
        """Advance the state-digest hash chain by one batch outcome."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self._digest_chain)
        digest.update(
            struct.pack(
                "<IId",
                outcome.batch_index,
                len(outcome.new_queries),
                outcome.incremental_cost,
            )
        )
        for q in outcome.new_queries:
            digest.update(",".join(sorted(q)).encode("utf-8") + b"\x00")
        digest.update(struct.pack("<I", len(outcome.new_classifiers)))
        for clf in sorted(outcome.new_classifiers, key=classifier_sort_key):
            digest.update(",".join(sorted(clf)).encode("utf-8") + b"\x00")
        self._digest_chain = digest.digest()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def add_batch(
        self,
        queries: Iterable[object],
        solver_overrides: Optional[Dict[str, object]] = None,
    ) -> BatchOutcome:
        """Plan classifiers for a new batch of queries.

        Already-seen queries are ignored; already-built classifiers are
        free for the residual solve.  Returns the batch outcome (empty
        batch ⇒ zero-cost outcome).

        ``solver_overrides`` layers per-batch solver kwargs over the
        planner's defaults for this batch only — the planner daemon uses
        it to thread a request-scoped :class:`~repro.engine.resilience.ResiliencePolicy`
        (deadline-derived budget, breaker board) into the residual
        solve without perturbing the planner's configuration.
        """
        fresh: List[Query] = []
        for spec in queries:
            q = make_query(spec)
            if q not in self._query_set:
                self._query_set.add(q)
                self._queries.append(q)
                fresh.append(q)
        index = len(self._batches)
        if not fresh:
            outcome = BatchOutcome(index, (), 0.0, frozenset(), None)
            self._batches.append(outcome)
            self._fold_digest(outcome)
            return outcome

        overlay = OverlayCost(self.cost)
        for clf in self._built:
            overlay.select(clf)
        residual = MC3Instance(
            fresh,
            overlay,
            max_classifier_length=self.max_classifier_length,
            name=f"batch{index}",
        )
        kwargs = self.solver_kwargs
        if solver_overrides:
            kwargs = {**kwargs, **solver_overrides}
        solver = make_solver(self.solver_name, **kwargs)
        result = solver.solve(residual)

        new_classifiers = frozenset(result.solution.classifiers) - self._built
        incremental_cost = sum(self.cost.cost(clf) for clf in new_classifiers)
        self._built |= new_classifiers
        self._total_cost += incremental_cost
        outcome = BatchOutcome(index, tuple(fresh), incremental_cost, new_classifiers, result)
        self._batches.append(outcome)
        self._fold_digest(outcome)
        return outcome

    def verify(self) -> None:
        """The built set must cover every query seen so far."""
        if self._queries:
            verify_cover(self._queries, self._built)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def replan(self) -> SolverResult:
        """From-scratch solve over everything seen so far (ignores sunk
        costs).  The gap ``total_cost - replan().cost`` is the price paid
        for incrementality."""
        if not self._queries:
            raise InvalidInstanceError("no queries have been added yet")
        instance = MC3Instance(
            self._queries,
            self.cost,
            max_classifier_length=self.max_classifier_length,
            name="replanned",
        )
        solver = make_solver(self.solver_name, **self.solver_kwargs)
        return solver.solve(instance)

    def regret(self) -> float:
        """``total_cost / replan cost`` (1.0 = incrementality was free)."""
        replanned = self.replan().cost
        if replanned == 0:
            return 1.0
        return self._total_cost / replanned

    def as_solution(self) -> Solution:
        """The cumulative selection priced against the base cost model."""
        total = sum(self.cost.cost(clf) for clf in self._built)
        return Solution(self._built, total)
