"""Model extensions from Section 5.3: bounded classifier length and
multi-valued classifiers; plus Section 2.1's zero-cost known properties
(see :class:`repro.core.costs.ZeroedCost`)."""

from repro.extensions.bounded import (
    approximation_guarantee,
    degree_bound,
    frequency_bound,
    instance_guarantee,
)
from repro.extensions.multivalued import (
    MULTIVALUED_LABEL_KIND,
    AttributeSchema,
    MixedSelection,
    extended_wsc,
    merge_attributes,
    solve_with_multivalued,
)
from repro.extensions.accuracy import (
    AccuracyAwarePlan,
    AccuracyAwarePlanner,
    AccuracyCover,
    Tier,
    TieredCostModel,
    TierPick,
    min_cover_with_accuracy,
    verify_plan,
)
from repro.extensions.incremental import BatchOutcome, IncrementalPlanner
from repro.extensions.partial_cover import (
    BudgetedSolution,
    classifier_greedy_partial_cover,
    exact_partial_cover,
    greedy_partial_cover,
)
from repro.extensions.shared_cost import (
    LocalSearchResult,
    SharedLabelingCost,
    shared_cost_local_search,
)

__all__ = [
    "AccuracyAwarePlan",
    "AccuracyAwarePlanner",
    "AccuracyCover",
    "BatchOutcome",
    "BudgetedSolution",
    "IncrementalPlanner",
    "LocalSearchResult",
    "SharedLabelingCost",
    "shared_cost_local_search",
    "Tier",
    "TierPick",
    "TieredCostModel",
    "min_cover_with_accuracy",
    "verify_plan",
    "classifier_greedy_partial_cover",
    "exact_partial_cover",
    "greedy_partial_cover",
    "AttributeSchema",
    "MULTIVALUED_LABEL_KIND",
    "MixedSelection",
    "approximation_guarantee",
    "degree_bound",
    "extended_wsc",
    "frequency_bound",
    "instance_guarantee",
    "merge_attributes",
    "solve_with_multivalued",
]
