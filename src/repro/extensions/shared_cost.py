"""Overlapping construction costs (Section 8 future work).

The paper's model prices classifiers independently and notes that in
practice "there may be some overlap, e.g., in terms of data labeling or
crowd-worker time", leaving a set-level cost model as future work.
This extension implements one:

* a classifier's cost is apportioned to its properties (harder
  properties need more labelled examples);
* when several selected classifiers test the same property, a fraction
  ``sigma`` of the duplicated per-property work is shared (labelling a
  shirt's brand once serves every classifier that checks the brand) —
  only the largest per-property share is paid in full;
* the resulting set function is subadditive and equals the paper's
  additive model at ``sigma = 0``.

Because Algorithm 3 optimises the additive proxy, its solution is a
natural starting point; :func:`shared_cost_local_search` then exploits
sharing with feasibility-preserving moves (add / drop / swap-decompose).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.coverage import CoverageChecker
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier, Query, iter_nonempty_subsets
from repro.exceptions import InvalidInstanceError


class SharedLabelingCost:
    """Set-level cost with per-property work sharing.

    Parameters
    ----------
    instance:
        Supplies the additive per-classifier costs ``W``.
    sigma:
        Sharing coefficient in [0, 1]: the fraction of *duplicated*
        per-property work that is saved.  0 recovers the additive model;
        1 means a property is labelled once no matter how many selected
        classifiers test it.
    property_difficulty:
        Optional relative difficulty per property, used to apportion a
        classifier's cost to its properties (default: equal shares).
    """

    def __init__(
        self,
        instance: MC3Instance,
        sigma: float = 0.5,
        property_difficulty: Optional[Mapping[str, float]] = None,
    ):
        if not 0 <= sigma <= 1:
            raise InvalidInstanceError(f"sigma must be in [0, 1], got {sigma}")
        self.instance = instance
        self.sigma = float(sigma)
        self._difficulty = dict(property_difficulty or {})
        for prop, value in self._difficulty.items():
            if value <= 0 or math.isnan(value):
                raise InvalidInstanceError(
                    f"difficulty of {prop!r} must be > 0, got {value}"
                )

    def _shares(self, clf: Classifier) -> Dict[str, float]:
        """Apportion ``W(clf)`` to its properties."""
        total_weight = self.instance.weight(clf)
        if not math.isfinite(total_weight):
            return {}
        raw = {prop: self._difficulty.get(prop, 1.0) for prop in clf}
        denominator = sum(raw.values())
        return {prop: total_weight * value / denominator for prop, value in raw.items()}

    def set_cost(self, classifiers: Iterable[Classifier]) -> float:
        """Cost of building the whole set, with sharing."""
        selected = set(classifiers)
        additive = 0.0
        per_property: Dict[str, List[float]] = {}
        for clf in selected:
            weight = self.instance.weight(clf)
            if not math.isfinite(weight):
                return math.inf
            additive += weight
            for prop, share in self._shares(clf).items():
                per_property.setdefault(prop, []).append(share)
        saving = 0.0
        for shares in per_property.values():
            if len(shares) > 1:
                saving += self.sigma * (sum(shares) - max(shares))
        return additive - saving

    def marginal_cost(self, clf: Classifier, selected: Iterable[Classifier]) -> float:
        """Incremental cost of adding ``clf`` to ``selected``."""
        selected = set(selected)
        if clf in selected:
            return 0.0
        return self.set_cost(selected | {clf}) - self.set_cost(selected)


class LocalSearchResult:
    """Outcome of the overlap-aware local search."""

    def __init__(
        self,
        classifiers: FrozenSet[Classifier],
        cost: float,
        start_cost: float,
        moves: List[str],
    ):
        self.classifiers = classifiers
        self.cost = cost
        self.start_cost = start_cost
        self.moves = moves

    @property
    def improvement(self) -> float:
        if self.start_cost == 0:
            return 0.0
        return 1.0 - self.cost / self.start_cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LocalSearchResult cost={self.cost:g} (start {self.start_cost:g}, "
            f"{len(self.moves)} moves)>"
        )


def shared_cost_local_search(
    instance: MC3Instance,
    cost: SharedLabelingCost,
    start: Iterable[Classifier],
    max_rounds: int = 20,
) -> LocalSearchResult:
    """Improve a feasible selection under the set-level cost.

    Moves, tried to local optimality each round:

    * **drop** — remove a classifier whose absence keeps every query
      covered (sharing can make a classifier pure overhead);
    * **re-cover** — for a query, add the classifiers of one of its
      alternative irredundant covers, then greedily drop whatever became
      redundant, and keep the result if the set-level cost improved.
      Adding before dropping lets the search cross additive-cost hills
      (e.g. migrate from shared singletons to a family of pair
      classifiers pooled on one property).

    Feasibility is re-verified against the independent coverage checker
    after every accepted move.
    """
    from repro.core.mincover import enumerate_covers

    checker = CoverageChecker(instance.queries)
    selected: Set[Classifier] = set(start)
    if not checker.all_covered(selected):
        raise InvalidInstanceError("local search requires a feasible starting selection")
    start_cost = cost.set_cost(selected)
    current = start_cost
    moves: List[str] = []

    def greedy_drop(candidate: Set[Classifier]) -> Set[Classifier]:
        """Remove classifiers while feasibility holds and cost falls."""
        candidate = set(candidate)
        changed = True
        while changed:
            changed = False
            base_cost = cost.set_cost(candidate)
            for clf in sorted(candidate, key=lambda c: -instance.weight(c)):
                reduced = candidate - {clf}
                if not checker.all_covered(reduced):
                    continue
                # Strictly improving drops only: a tie would immediately
                # undo the classifier a re-cover move just added.
                if cost.set_cost(reduced) < base_cost - 1e-12:
                    candidate = reduced
                    changed = True
                    break
        return candidate

    def try_selection(candidate: Set[Classifier], label: str) -> bool:
        nonlocal selected, current
        if not checker.all_covered(candidate):
            return False
        candidate_cost = cost.set_cost(candidate)
        if candidate_cost < current - 1e-9:
            selected = candidate
            current = candidate_cost
            moves.append(label)
            return True
        return False

    def alternative_covers(q: Query):
        candidates = [
            (clf, instance.weight(clf))
            for clf in iter_nonempty_subsets(q, instance.max_classifier_length)
            if math.isfinite(instance.weight(clf))
        ]
        return enumerate_covers(q, candidates, limit=24, node_budget=4000)

    for _round in range(max_rounds):
        improved = False

        # Drop moves.
        for clf in sorted(selected, key=lambda c: -instance.weight(c)):
            if try_selection(selected - {clf}, f"drop {sorted(clf)}"):
                improved = True

        # Re-cover moves.
        for q in instance.queries:
            for cover in alternative_covers(q):
                additions = set(cover.classifiers) - selected
                if not additions:
                    continue
                candidate = greedy_drop(selected | additions)
                if try_selection(candidate, f"recover {sorted(q)}"):
                    improved = True
                    break

        if not improved:
            break

    return LocalSearchResult(frozenset(selected), current, start_cost, moves)
