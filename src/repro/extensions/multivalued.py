"""Multi-valued classifiers (Section 5.3).

Two regimes from the paper:

* **Only multi-valued classifiers** — merge all properties belonging to
  the same attribute ("color = red", "color = blue" → "color"); the
  result is again an ordinary MC³ instance over attributes
  (:func:`merge_attributes`).
* **Multi-valued alongside binary classifiers** — extend the WSC
  reduction with one extra set per multi-valued classifier that covers
  every element whose property is a value of that attribute
  (:func:`extended_wsc`).  Analysis then follows the binary case.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.costs import CallableCost, CostModel, TableCost
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier, Query
from repro.core.solution import Solution
from repro.exceptions import InvalidInstanceError
from repro.reductions import mc3_to_wsc
from repro.setcover import WSCInstance, WSCSolution, solve_wsc


class AttributeSchema:
    """Maps properties ("color=red") to attributes ("color").

    Properties without an attribute are their own singleton attribute —
    convenient for loads where only some properties are attribute
    values.
    """

    def __init__(self, attribute_of: Mapping[str, str]):
        self.attribute_of: Dict[str, str] = {str(k): str(v) for k, v in attribute_of.items()}

    def attribute(self, prop: str) -> str:
        return self.attribute_of.get(prop, prop)

    def values_of(self, attribute: str, properties: Iterable[str]) -> List[str]:
        """Properties among ``properties`` whose attribute is ``attribute``."""
        return sorted(p for p in properties if self.attribute(p) == attribute)

    def merge_query(self, q: Query) -> Query:
        """A query over properties → a query over attributes."""
        return frozenset(self.attribute(p) for p in q)


def merge_attributes(
    instance: MC3Instance,
    schema: AttributeSchema,
    attribute_costs: Mapping[object, float],
    name: str = "",
) -> MC3Instance:
    """The "only multi-valued classifiers" regime: transform the instance
    into an MC³ instance over attributes.

    ``attribute_costs`` prices the attribute-level classifiers (these are
    external estimations of training multi-valued classifiers, per the
    paper); the result adheres to exactly the same model and any solver
    applies unchanged.
    """
    merged = [schema.merge_query(q) for q in instance.queries]
    return MC3Instance(
        merged,
        TableCost(attribute_costs),
        max_classifier_length=instance.max_classifier_length,
        name=name or f"{instance.name}|attributes",
    )


#: Marker distinguishing multi-valued sets in the extended WSC reduction.
MULTIVALUED_LABEL_KIND = "multivalued"


def extended_wsc(
    instance: MC3Instance,
    schema: AttributeSchema,
    multivalued_costs: Mapping[str, float],
) -> WSCInstance:
    """The mixed regime: binary classifiers *and* multi-valued attribute
    classifiers compete in one WSC instance.

    Starts from the standard reduction (Section 5.2) and adds, per
    attribute classifier ``A`` with finite cost, a set covering every
    element ``(p, q)`` whose property ``p`` is a value of ``A`` — e.g. a
    team classifier covers the "chelsea" and "juventus" elements of
    every query they appear in.  Set labels are
    ``(MULTIVALUED_LABEL_KIND, attribute)`` tuples, so solutions remain
    translatable.
    """
    wsc = mc3_to_wsc(instance)
    by_attribute: Dict[str, List[Tuple[str, int]]] = {}
    for query_index, q in enumerate(instance.queries):
        for prop in q:
            attribute = schema.attribute(prop)
            by_attribute.setdefault(attribute, []).append((prop, query_index))
    for attribute in sorted(by_attribute):
        cost = multivalued_costs.get(attribute)
        if cost is None or not math.isfinite(cost):
            continue
        # A multi-valued classifier only makes sense when cheaper than
        # the sum of the binary classifiers it subsumes (the paper prunes
        # it otherwise); we add it regardless and let the optimiser skip
        # it, which is equivalent and simpler.
        wsc.add_set(
            (MULTIVALUED_LABEL_KIND, attribute), by_attribute[attribute], float(cost)
        )
    return wsc


class MixedSelection:
    """Outcome of solving the mixed binary/multi-valued problem."""

    def __init__(
        self,
        binary_classifiers: List[Classifier],
        multivalued_attributes: List[str],
        cost: float,
    ):
        self.binary_classifiers = binary_classifiers
        self.multivalued_attributes = multivalued_attributes
        self.cost = cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MixedSelection cost={self.cost} binary={len(self.binary_classifiers)} "
            f"multivalued={self.multivalued_attributes}>"
        )


def solve_with_multivalued(
    instance: MC3Instance,
    schema: AttributeSchema,
    multivalued_costs: Mapping[str, float],
    method: str = "best_of",
) -> MixedSelection:
    """Solve the mixed regime end to end (reduction + WSC solve +
    translation)."""
    wsc = extended_wsc(instance, schema, multivalued_costs)
    solution = solve_wsc(wsc, method=method)
    binary: List[Classifier] = []
    attributes: List[str] = []
    for set_id in solution.set_ids:
        label = wsc.set_label(set_id)
        if isinstance(label, tuple) and label and label[0] == MULTIVALUED_LABEL_KIND:
            attributes.append(label[1])
        else:
            binary.append(label)
    return MixedSelection(binary, sorted(attributes), solution.cost)
