"""Bounded classifiers (Section 5.3): only classifiers of length
``k' < k`` are considered.

The regime itself is expressed with
:class:`~repro.core.costs.LengthCappedCost` or the instance-level
``max_classifier_length``; this module adds the *parameter analysis* the
paper derives for it — the improved frequency and degree bounds of the
WSC reduction, and the resulting approximation guarantee — so tests and
EXPERIMENTS.md can report guarantee-vs-achieved.
"""

from __future__ import annotations

import math
from math import comb
from typing import Optional

from repro.core.instance import MC3Instance


def frequency_bound(k: int, k_prime: Optional[int] = None) -> int:
    """Upper bound on the WSC frequency ``f`` (Section 5.3).

    Unbounded: ``f = 2^(k-1)``.  With classifiers capped at ``k'``:
    ``f ≤ sum_{i=0}^{k'-1} C(k-1, i)`` (the classifier must include the
    element's property plus at most ``k'-1`` of the other ``k-1``).  For
    ``k' = 2`` this is ``k``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k_prime is None or k_prime >= k:
        return 2 ** (k - 1)
    if k_prime < 1:
        raise ValueError("k' must be >= 1")
    return sum(comb(k - 1, i) for i in range(k_prime))


def degree_bound(k: int, incidence: int, k_prime: Optional[int] = None) -> int:
    """Upper bound on the WSC degree ``Δ ≤ (k'-1)·I`` (``(k-1)·I``
    unbounded), Section 5.2/5.3."""
    if incidence < 0:
        raise ValueError("incidence must be >= 0")
    effective = k if k_prime is None or k_prime >= k else k_prime
    if effective < 1:
        raise ValueError("k' must be >= 1")
    return max(1, effective - 1) * incidence


def approximation_guarantee(
    k: int, incidence: int, k_prime: Optional[int] = None
) -> float:
    """Theorem 5.3's guarantee ``min{ln I + ln(k-1) + 1, f}`` with the
    bounded-classifier refinements of Section 5.3 applied."""
    f = frequency_bound(k, k_prime)
    if incidence <= 0:
        return float(f)
    effective_k = k if k_prime is None or k_prime >= k else k
    greedy = math.log(max(1, incidence)) + math.log(max(1, effective_k - 1)) + 1
    return min(greedy, float(f))


def instance_guarantee(instance: MC3Instance) -> float:
    """The guarantee Algorithm 3 carries on this specific instance."""
    return approximation_guarantee(
        instance.max_query_length,
        instance.incidence(),
        instance.max_classifier_length,
    )
