"""Undirected graphs with hashable node labels and BFS components.

Preprocessing step 2 (Observation 3.2) builds a graph whose nodes are
properties, with a path connecting the properties of each query, and
splits the instance along connected components.  This module provides
exactly that machinery, kept generic so tests and other substrates can
reuse it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple


class UndirectedGraph:
    """Adjacency-set undirected graph over hashable labels."""

    def __init__(self) -> None:
        self._adjacency: Dict[Hashable, Set[Hashable]] = {}

    def add_node(self, node: Hashable) -> None:
        """Ensure ``node`` exists (isolated nodes form their own component)."""
        self._adjacency.setdefault(node, set())

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add the undirected edge ``{u, v}`` (self-loops are ignored)."""
        self.add_node(u)
        self.add_node(v)
        if u != v:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)

    def add_path(self, nodes: Iterable[Hashable]) -> None:
        """Connect consecutive nodes with edges.

        This is the paper's trick for query decomposition: a path over a
        query's properties suffices to keep them in one component while
        adding only ``|q| - 1`` edges instead of ``O(|q|^2)``.
        """
        previous = None
        for node in nodes:
            self.add_node(node)
            if previous is not None:
                self.add_edge(previous, node)
            previous = node

    def neighbors(self, node: Hashable) -> Set[Hashable]:
        return self._adjacency[node]

    def nodes(self) -> Iterator[Hashable]:
        return iter(self._adjacency)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def num_edges(self) -> int:
        return sum(len(neigh) for neigh in self._adjacency.values()) // 2

    def bfs(self, start: Hashable) -> List[Hashable]:
        """Nodes reachable from ``start`` in BFS order."""
        if start not in self._adjacency:
            raise KeyError(start)
        visited = {start}
        order = [start]
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbor in self._adjacency[node]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    order.append(neighbor)
                    frontier.append(neighbor)
        return order

    def components(self) -> List[Set[Hashable]]:
        """Connected components (deterministic order: by first-seen node).

        Node iteration follows insertion order (Python dicts), so the
        result is stable for a fixed construction sequence.
        """
        seen: Set[Hashable] = set()
        result: List[Set[Hashable]] = []
        for node in self._adjacency:
            if node in seen:
                continue
            component = set(self.bfs(node))
            seen |= component
            result.append(component)
        return result


def connected_components(edges: Iterable[Tuple[Hashable, Hashable]]) -> List[Set[Hashable]]:
    """Components of the graph given by an edge list."""
    graph = UndirectedGraph()
    for u, v in edges:
        graph.add_edge(u, v)
    return graph.components()
