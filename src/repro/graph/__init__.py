"""Lightweight graph substrate: undirected graphs and traversals.

Used by preprocessing step 2 (connected-component decomposition of the
query load) and by tests.  The flow networks used by the k = 2 solver
live in :mod:`repro.flow`.
"""

from repro.graph.undirected import UndirectedGraph, connected_components

__all__ = ["UndirectedGraph", "connected_components"]
