"""Scale-tier workloads: 1M–10M-element instances generated lazily.

The paper's synthetic sweep stops at n = 100,000 queries; the ROADMAP
north star asks for two orders of magnitude more.  No eager generator
survives that — at 10M queries even the id lists of a materialised
:class:`~repro.setcover.instance.WSCInstance` run to gigabytes — so the
scale tiers are *dual-access* set systems defined by arithmetic instead
of storage:

* ``frequency`` affine maps ``e ↦ (a_j·e + b_j) mod m`` (with ``a_j``
  invertible mod ``m``) send each element to its candidate sets, so
  ``sets_containing(e)`` is O(f) multiplications;
* inverting a map recovers a set's members as arithmetic progressions
  ``e ≡ a_j⁻¹(s − b_j) (mod m)``, so ``set_members(s)`` is O(f·n/m)
  *on demand* — only the solver's selected sets ever pay it.

Total resident state is O(m): the per-set cost table and the map
parameters.  A 10M-element tier fits in a few megabytes while its
materialised twin needs gigabytes — which is exactly the pairing the
``bench_setcover_sublinear`` memory-cap legs demonstrate (the
materialising path dies under a cap the lazy solvers never notice).

Query-load-side scale tiers reuse the paper's own S recipe through
:class:`~repro.datasets.synthetic.SyntheticQueryStream`;
:class:`LazyQueryLoad` gives the stream the read surface the streaming
MC³ solver needs (iteration, ``weight``, length cap) without an O(n)
query tuple.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.costs import HashCost
from repro.core.properties import Classifier, Query
from repro.datasets.synthetic import (
    COST_HIGH,
    COST_LOW,
    MAX_QUERY_LENGTH,
    SyntheticQueryStream,
)
from repro.exceptions import DatasetError
from repro.setcover.instance import WSCInstance

#: Named tiers: workload name → universe size.  The 100k tier matches
#: the paper's largest synthetic sweep point (used for smoke runs); the
#: 1m/3m/10m tiers are the ROADMAP's production-scale targets.
SCALE_TIERS: Dict[str, int] = {
    "100k": 100_000,
    "300k": 300_000,
    "1m": 1_000_000,
    "3m": 3_000_000,
    "10m": 10_000_000,
}

#: Default elements-per-set scale: ``m = n // 250`` sets keeps per-set
#: membership around ``frequency * 250`` elements across tiers.
_ELEMENTS_PER_SET = 250


class ScaleTierWorkload:
    """A lazily-evaluated weighted set system of ``n`` elements.

    Satisfies the duck-typed set-system protocol of
    :func:`repro.setcover.sampled_greedy.sampled_greedy_wsc` and
    :func:`repro.setcover.streaming.streaming_greedy_wsc`
    (``universe_size`` / ``num_sets`` / ``set_cost`` / ``set_members`` /
    ``sets_containing`` plus the streaming ``iter_items``), and can
    materialise itself into a concrete :class:`WSCInstance` for the
    conventional pipeline — that path exists to *measure*, not to use:
    it is the O(n·f) time-and-memory wall the lazy solvers remove.

    All parameters are derived from ``seed`` with string-seeded
    ``random.Random`` draws, so workloads are bit-identical across
    processes and ``PYTHONHASHSEED`` values.  Every element has exactly
    ``frequency`` candidate maps (≥ 1 distinct set), so instances are
    always coverable.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0,
        num_sets: Optional[int] = None,
        frequency: int = 4,
        cost_low: int = COST_LOW,
        cost_high: int = COST_HIGH,
    ):
        if n < 1:
            raise DatasetError("n must be >= 1")
        if frequency < 1:
            raise DatasetError("frequency must be >= 1")
        m = num_sets if num_sets is not None else max(frequency + 1, n // _ELEMENTS_PER_SET)
        if m < 1:
            raise DatasetError("num_sets must be >= 1")
        if m > n:
            raise DatasetError("num_sets must not exceed n (every set must be non-empty)")
        self.universe_size = n
        self.num_sets = m
        self.frequency = frequency
        self.seed = seed
        self.name = f"scale(n={n},m={m},f={frequency},seed={seed})"
        rng = random.Random(f"scale-wsc-{seed}-{n}-{m}-{frequency}")
        maps: List[Tuple[int, int, int]] = []
        for _ in range(frequency):
            while True:
                a = rng.randrange(1, m) if m > 1 else 0
                if m == 1 or math.gcd(a, m) == 1:
                    break
            b = rng.randrange(m)
            inverse = pow(a, -1, m) if m > 1 else 0
            maps.append((a, b, inverse))
        self._maps = maps
        self._costs = [float(rng.randint(cost_low, cost_high)) for _ in range(m)]

    # -- set-system protocol -------------------------------------------

    def set_cost(self, set_id: int) -> float:
        return self._costs[set_id]

    def set_costs(self) -> List[float]:
        return self._costs

    def sets_containing(self, element_id: int) -> List[int]:
        m = self.num_sets
        return sorted({(a * element_id + b) % m for a, b, _ in self._maps})

    def set_members(self, set_id: int) -> List[int]:
        n = self.universe_size
        m = self.num_sets
        members = set()
        for _, b, inverse in self._maps:
            first = (inverse * (set_id - b)) % m
            members.update(range(first, n, m))
        return sorted(members)

    def iter_items(self) -> Iterator[Tuple[int, List[int]]]:
        """The element stream: ``(element_id, candidate set ids)`` pairs
        computed arithmetically — O(1) transient memory per item."""
        m = self.num_sets
        maps = self._maps
        for element_id in range(self.universe_size):
            yield element_id, sorted({(a * element_id + b) % m for a, b, _ in maps})

    # -- the materialising twin ----------------------------------------

    def wsc_instance(self) -> WSCInstance:
        """Materialise the workload into a concrete :class:`WSCInstance`.

        This is the conventional pipeline's entry: O(n·f) member-id
        lists plus per-set masks.  It exists so benchmarks can price
        that wall honestly; production paths should stay on the lazy
        protocol.
        """
        instance = WSCInstance()
        for element_id in range(self.universe_size):
            instance.add_element(element_id)
        for set_id in range(self.num_sets):
            instance.add_set_ids(set_id, self.set_members(set_id), self._costs[set_id])
        return instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScaleTierWorkload {self.name}>"


def scale_tier_workload(tier: str, seed: int = 0, **kwargs) -> ScaleTierWorkload:
    """A :class:`ScaleTierWorkload` for a named tier (see :data:`SCALE_TIERS`)."""
    try:
        n = SCALE_TIERS[tier]
    except KeyError:
        known = ", ".join(sorted(SCALE_TIERS, key=SCALE_TIERS.get))
        raise DatasetError(f"unknown scale tier {tier!r} (known: {known})") from None
    return ScaleTierWorkload(n, seed=seed, **kwargs)


class LazyQueryLoad:
    """A lazy MC³ query load: iteration + pricing, no O(n) query tuple.

    Exposes the read surface the streaming solver consumes —
    ``queries`` (a restartable iterable), ``__len__``/``n``, ``weight``
    with the instance-level classifier length cap, and ``name`` — while
    holding only the underlying stream object and cost model.  It is
    *not* an :class:`~repro.core.instance.MC3Instance`: anything needing
    random access or canonicalised tuples should materialise explicitly
    via :meth:`materialize`.
    """

    def __init__(
        self,
        stream,
        cost,
        max_classifier_length: Optional[int] = None,
        name: str = "lazy",
    ):
        self._stream = stream
        self._cost = cost
        self.max_classifier_length = max_classifier_length
        self.name = name

    @property
    def queries(self):
        return self._stream

    @property
    def n(self) -> int:
        return len(self._stream)

    def __len__(self) -> int:
        return len(self._stream)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._stream)

    def weight(self, clf: Classifier) -> float:
        """``W(clf)``, honouring the load-level length bound (same
        contract as :meth:`MC3Instance.weight`)."""
        if (
            self.max_classifier_length is not None
            and len(clf) > self.max_classifier_length
        ):
            return math.inf
        return self._cost.cost(clf)

    def total_weight(self, classifiers) -> float:
        return sum(self.weight(clf) for clf in classifiers)

    def candidates(self, q: Query) -> Iterator[Classifier]:
        """Finite-weight classifiers usable for ``q`` (the paper's
        ``C_q``), in the same deterministic order as
        :meth:`MC3Instance.candidates`."""
        from repro.core.properties import iter_nonempty_subsets

        for clf in iter_nonempty_subsets(q, self.max_classifier_length):
            if math.isfinite(self.weight(clf)):
                yield clf

    def materialize(self):
        """The eager :class:`MC3Instance` twin (small loads only)."""
        from repro.core.instance import MC3Instance

        return MC3Instance(
            self._stream,
            self._cost,
            max_classifier_length=self.max_classifier_length,
            name=self.name,
        )


def scale_tier_queries(
    tier: str,
    seed: int = 0,
    max_length: int = MAX_QUERY_LENGTH,
    max_classifier_length: Optional[int] = None,
) -> LazyQueryLoad:
    """The S recipe at scale-tier size as a :class:`LazyQueryLoad`."""
    try:
        n = SCALE_TIERS[tier]
    except KeyError:
        known = ", ".join(sorted(SCALE_TIERS, key=SCALE_TIERS.get))
        raise DatasetError(f"unknown scale tier {tier!r} (known: {known})") from None
    stream = SyntheticQueryStream(n, seed=seed, max_length=max_length)
    cost = HashCost(COST_LOW, COST_HIGH, seed=seed)
    return LazyQueryLoad(
        stream,
        cost,
        max_classifier_length=max_classifier_length,
        name=f"S-scale({tier},seed={seed})",
    )
