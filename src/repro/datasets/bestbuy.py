"""The BestBuy-like dataset (Section 6.1, Table 1 row "BB").

The original is a public query log of ~1000 electronics queries used by
the prior work [13]; it is not redistributable here, so this module
generates a stand-in matching the published summary statistics:

* ~1000 queries, electronics domain;
* uniform classifier costs (the prior work's setting — all weights 1);
* 95% of queries of length ≤ 2; maximal length 4 (Table 1);
* a property vocabulary larger than the query count (real logs are full
  of one-off model/series terms), which is what makes the
  Property-Oriented baseline the worst performer in Figure 3a.

Because the MC³ algorithms see only ``⟨Q, W⟩``, matching these marginals
(plus Zipfian property sharing) exercises the same code paths as the
original log.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.costs import UniformCost
from repro.core.instance import MC3Instance
from repro.datasets.composer import CategoryQuerySampler, draw_lengths
from repro.exceptions import DatasetError

#: Published length marginals: 95% of queries have at most 2 properties.
LENGTH_DISTRIBUTION: Dict[int, float] = {1: 0.25, 2: 0.70, 3: 0.04, 4: 0.01}


def bestbuy_like(n: int = 1000, seed: int = 0, uniform_cost: float = 1.0) -> MC3Instance:
    """Generate the BB stand-in dataset.

    Parameters
    ----------
    n:
        Number of distinct queries (paper: ~1000).
    seed:
        Generator seed; identical seeds give identical instances.
    uniform_cost:
        The single classifier cost (paper/Table 1: max cost 1).
    """
    if n < 1:
        raise DatasetError("n must be >= 1")
    # String seeds hash deterministically (sha512 path), unlike tuples.
    rng = random.Random(f"bestbuy-{seed}")
    sampler = CategoryQuerySampler(
        "electronics", rng, skew=0.9, tail_size=max(200, 2 * n), tail_weight=2.5
    )
    lengths = draw_lengths(rng, n, LENGTH_DISTRIBUTION)
    queries = sampler.sample_distinct(lengths)
    return MC3Instance(
        queries,
        UniformCost(uniform_cost),
        name=f"BB(n={n},seed={seed})",
    )
