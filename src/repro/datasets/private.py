"""The Private-like dataset (Section 6.1, Table 1 row "P").

The original is a proprietary e-commerce log: 10,000 popular queries of
lengths 1–6 across three product categories (Electronics, Fashion,
Home & Garden), with classifier costs 1–63 estimated as normalised
labelled-example counts.  This module generates a stand-in that matches
those published marginals:

* 10,000 queries; lengths 1–6 with a length/frequency inverse
  correlation; costs in [1, 63];
* the Fashion sub-dataset has ~1000 queries, 96% of length ≤ 2 (the
  paper runs separate experiments on that slice — Figure 3d);
* costs are *sub-additive* with property-level base difficulties
  (:class:`~repro.datasets.costmodels.SubAdditiveHashCost`), reproducing
  the regime where multi-property classifiers can undercut the sum of
  their parts.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.instance import MC3Instance
from repro.core.properties import Query
from repro.datasets.composer import CategoryQuerySampler, draw_lengths
from repro.datasets.costmodels import SubAdditiveHashCost
from repro.datasets.vocab import vocabulary
from repro.exceptions import DatasetError

#: Per-category share of the 10,000-query load and length marginals.
CATEGORY_MIX: Dict[str, float] = {"electronics": 0.55, "fashion": 0.10, "home": 0.35}

#: General categories: lengths 1-6, inversely correlated with frequency.
#: Combined with the fashion slice this puts ~80% of the load at length
#: <= 2, matching the share Figure 3b is run on.
GENERAL_LENGTHS: Dict[int, float] = {1: 0.12, 2: 0.66, 3: 0.12, 4: 0.06, 5: 0.03, 6: 0.01}

#: Fashion slice: 96% of queries of length <= 2 (Section 6.1).
FASHION_LENGTHS: Dict[int, float] = {1: 0.30, 2: 0.66, 3: 0.03, 4: 0.01}

COST_LOW = 1
COST_HIGH = 63

#: Long-tail model/series properties per category: the tail grows with
#: the log (real logs accrue new one-off model/team terms roughly
#: linearly in size), keeping the rare-property density — and therefore
#: the baselines' relative behaviour — invariant across scales.
TAIL_DENSITY = 0.5
TAIL_SIZE_MIN = 150


def tail_size_for(count: int) -> int:
    """Tail vocabulary size for a category slice of ``count`` queries."""
    return max(TAIL_SIZE_MIN, round(TAIL_DENSITY * count))


def _base_costs(seed: int, tail_sizes: Dict[str, int]) -> Dict[str, float]:
    """Per-property base difficulty, deterministic in the seed.

    Popular brand-like properties get the upper range (many visual
    variants to learn), colours the lower.  ``tail_sizes`` gives the
    number of tail properties priced per category.  Tail bases use a
    per-property hash-style draw (via a dedicated RNG stream per rank)
    so the price of ``electronics-t7`` does not depend on how many tail
    properties exist — instances of different sizes stay consistent.
    """
    rng = random.Random(f"private-bases-{seed}")
    bases: Dict[str, float] = {}
    for category in sorted(CATEGORY_MIX):
        vocab = vocabulary(category)
        for prop in vocab["types"]:
            bases.setdefault(prop, rng.randint(6, 28))
        for prop in vocab["brands"]:
            bases.setdefault(prop, rng.randint(12, 40))
        for prop in vocab["attributes"]:
            bases.setdefault(prop, rng.randint(5, 30))
        for prop in vocab["colors"]:
            bases.setdefault(prop, rng.randint(3, 12))
        # Tail properties are specific variants: few training examples
        # exist, each must be expert-labelled — the costly end of the
        # range.  Conjunctions restrict the variant space, so the
        # sub-additive discount bites hardest exactly here.
        for rank in range(tail_sizes.get(category, 0)):
            prop = f"{category}-t{rank}"
            bases.setdefault(
                prop, random.Random(f"private-base-{seed}-{prop}").randint(30, 63)
            )
    return bases


def _category_queries(
    category: str, count: int, seed: int
) -> List[Query]:
    rng = random.Random(f"private-{category}-{seed}")
    sampler = CategoryQuerySampler(
        category, rng, skew=0.8, tail_size=tail_size_for(count), tail_weight=0.9
    )
    marginals = FASHION_LENGTHS if category == "fashion" else GENERAL_LENGTHS
    lengths = draw_lengths(rng, count, marginals)
    return sampler.sample_distinct(lengths)


def private_like(n: int = 10_000, seed: int = 0) -> MC3Instance:
    """Generate the full P stand-in dataset (all three categories).

    Categories share colour properties, so a handful of queries can
    collide across categories; a second pass tops the load back up to
    exactly ``n`` distinct queries.
    """
    if n < len(CATEGORY_MIX):
        raise DatasetError(f"n must be >= {len(CATEGORY_MIX)}")
    queries: List[Query] = []
    seen = set()
    remaining = n
    categories = sorted(CATEGORY_MIX)
    tail_sizes: Dict[str, int] = {}
    for index, category in enumerate(categories):
        count = round(n * CATEGORY_MIX[category]) if index < len(categories) - 1 else remaining
        count = min(count, remaining)
        remaining -= count
        tail_sizes[category] = max(
            tail_sizes.get(category, 0), tail_size_for(count)
        )
        for q in _category_queries(category, count, seed):
            if q not in seen:
                seen.add(q)
                queries.append(q)
    top_up = n - len(queries)
    if top_up > 0:
        count = 3 * top_up
        tail_sizes[categories[0]] = max(
            tail_sizes[categories[0]], tail_size_for(count)
        )
        for q in _category_queries(categories[0], count, seed + 104729):
            if q not in seen:
                seen.add(q)
                queries.append(q)
                if len(queries) == n:
                    break
    cost = SubAdditiveHashCost(
        _base_costs(seed, tail_sizes), low=COST_LOW, high=COST_HIGH, seed=seed
    )
    return MC3Instance(queries, cost, name=f"P(n={n},seed={seed})")


def private_like_category(
    category: str, n: int = 1000, seed: int = 0
) -> MC3Instance:
    """One category slice of P (the paper's fashion experiments use
    ``private_like_category("fashion", 1000)``)."""
    if category not in CATEGORY_MIX:
        raise DatasetError(
            f"unknown category {category!r}; expected one of {sorted(CATEGORY_MIX)}"
        )
    queries = _category_queries(category, n, seed)
    cost = SubAdditiveHashCost(
        _base_costs(seed, {category: tail_size_for(n)}),
        low=COST_LOW,
        high=COST_HIGH,
        seed=seed,
    )
    return MC3Instance(queries, cost, name=f"P.{category}(n={n},seed={seed})")


def private_like_short(n: int = 10_000, seed: int = 0) -> MC3Instance:
    """P restricted to queries of length ≤ 2 (~80% of the load), the
    workload of Figure 3b."""
    full = private_like(n, seed)
    return full.restricted_to(lambda q: len(q) <= 2, name=f"P-short(n={n},seed={seed})")
