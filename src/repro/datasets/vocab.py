"""E-commerce property vocabularies used by the dataset generators.

Properties are the atoms of queries ("white", "adidas", "juventus" in
the paper's running example).  Each category bundles product types,
brands, attributes and colours; generators compose queries from them
with popularity skew so that properties are shared across queries —
the structure that makes the MC³ trade-offs interesting.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

ELECTRONICS_TYPES: Sequence[str] = (
    "laptop", "tv", "headphones", "camera", "phone", "tablet", "monitor",
    "router", "printer", "speaker", "drone", "keyboard", "mouse",
    "smartwatch", "projector", "console", "earbuds", "soundbar",
    "microphone", "webcam", "charger", "powerbank", "ssd", "harddrive",
    "dashcam", "scanner", "modem", "ups", "nas", "graphics-card",
    "motherboard", "cpu", "ram", "case-fan", "docking-station", "stylus",
    "e-reader", "tripod", "lens", "flash", "gimbal", "vr-headset",
    "media-player", "turntable", "amplifier", "receiver", "subwoofer",
    "intercom", "doorbell-cam", "thermostat",
)

ELECTRONICS_BRANDS: Sequence[str] = (
    "samsung", "sony", "apple", "lg", "hp", "dell", "lenovo", "canon",
    "nikon", "bose", "jbl", "asus", "acer", "logitech", "microsoft",
    "panasonic", "philips", "sennheiser", "garmin", "gopro", "razer",
    "corsair", "msi", "gigabyte", "tplink", "netgear", "anker",
    "beats", "fitbit", "xiaomi", "oneplus", "huawei", "epson", "brother",
)

ELECTRONICS_ATTRIBUTES: Sequence[str] = (
    "wireless", "bluetooth", "4k", "oled", "gaming", "refurbished",
    "portable", "waterproof", "curved", "touchscreen", "noise-cancelling",
    "smart", "ultrawide", "mechanical", "rgb", "hdr", "compact",
    "budget", "premium", "usb-c", "8k", "qled", "120hz", "144hz",
    "wifi6", "dolby-atmos", "fast-charging", "dual-sim", "5g",
    "backlit", "ergonomic-design", "low-latency", "open-back",
    "closed-back", "full-frame", "mirrorless", "zoom", "wide-angle",
    "silent", "overclocked", "liquid-cooled", "fanless", "modular",
)

FASHION_TYPES: Sequence[str] = (
    "dress", "shirt", "jeans", "sneakers", "jacket", "skirt", "hoodie",
    "coat", "boots", "sandals", "blouse", "sweater", "shorts", "suit",
    "scarf", "cap", "socks", "belt", "handbag", "t-shirt",
)

FASHION_BRANDS: Sequence[str] = (
    "nike", "adidas", "zara", "gucci", "levis", "puma", "h&m", "uniqlo",
    "prada", "versace", "lacoste", "reebok", "tommy", "calvin-klein",
    "mango", "newbalance",
)

FASHION_ATTRIBUTES: Sequence[str] = (
    "summer", "winter", "vintage", "slim-fit", "leather", "cotton",
    "floral", "long-sleeve", "sleeveless", "denim", "wool", "striped",
    "oversized", "casual", "formal", "waterproof", "knitted", "linen",
)

HOME_TYPES: Sequence[str] = (
    "sofa", "lamp", "rug", "grill", "mower", "desk", "chair", "bookshelf",
    "mattress", "curtains", "mirror", "planter", "wardrobe", "bench",
    "table", "cushion", "blender", "kettle", "vacuum", "heater",
    "toaster", "microwave", "fridge", "freezer", "dishwasher", "oven",
    "cooktop", "airfryer", "mixer", "juicer", "dehumidifier", "fan",
    "air-purifier", "pressure-washer", "hedge-trimmer", "chainsaw",
    "wheelbarrow", "greenhouse", "pergola", "hammock", "firepit",
    "parasol", "shed", "compost-bin", "bird-feeder", "fountain",
)

HOME_BRANDS: Sequence[str] = (
    "ikea", "dyson", "weber", "bosch", "philips-home", "tefal", "kenwood",
    "delonghi", "makita", "karcher", "gardena", "keter", "black-decker",
    "ryobi", "stihl", "husqvarna", "whirlpool", "miele", "zanussi",
    "electrolux", "ninja", "instant-pot", "le-creuset", "brabantia",
)

HOME_ATTRIBUTES: Sequence[str] = (
    "wooden", "rattan", "foldable", "outdoor", "indoor", "cordless",
    "ergonomic", "modern", "rustic", "velvet", "marble", "adjustable",
    "stackable", "energy-efficient", "handmade", "recycled", "oak",
    "bamboo", "weatherproof", "self-propelled", "robotic", "electric",
    "gas-powered", "cast-iron", "stainless", "non-stick", "king-size",
    "queen-size", "memory-foam", "orthopedic", "blackout", "thermal",
    "corner", "three-seater", "reclining", "extendable",
)

COLORS: Sequence[str] = (
    "white", "black", "red", "blue", "green", "grey", "beige", "pink",
    "navy", "brown", "yellow", "silver", "gold", "purple",
)


CATEGORY_VOCAB: Dict[str, Dict[str, Sequence[str]]] = {
    "electronics": {
        "types": ELECTRONICS_TYPES,
        "brands": ELECTRONICS_BRANDS,
        "attributes": ELECTRONICS_ATTRIBUTES,
        "colors": COLORS,
    },
    "fashion": {
        "types": FASHION_TYPES,
        "brands": FASHION_BRANDS,
        "attributes": FASHION_ATTRIBUTES,
        "colors": COLORS,
    },
    "home": {
        "types": HOME_TYPES,
        "brands": HOME_BRANDS,
        "attributes": HOME_ATTRIBUTES,
        "colors": COLORS,
    },
}


def category_names() -> List[str]:
    """Known category labels."""
    return sorted(CATEGORY_VOCAB)


def vocabulary(category: str) -> Dict[str, Sequence[str]]:
    """The vocabulary of one category; raises ``KeyError`` for unknown
    categories (callers validate and re-raise as DatasetError)."""
    return CATEGORY_VOCAB[category]
