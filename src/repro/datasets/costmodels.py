"""Cost models used by the generated datasets.

:class:`SubAdditiveHashCost` captures the phenomenon motivating the
paper (Example 1.1): a multi-property classifier can cost *less* than
its individual parts ("detecting that a shirt is an Adidas shirt may be
non-trivial ... classification for the 'Adidas Juventus' conjunction is
an easier task, since these shirts have just a few variants").

The model: each property has a *base difficulty* (labelled examples
needed for its standalone classifier).  A conjunction restricts the item
variants the classifier must recognise, so its cost anchors on the
*easiest* component, scaled by a deterministic pseudo-random specificity
factor, plus a small spill-over for the remaining components:

    cost(c) = clamp(round(u(c) · min_base(c) + spill · (sum_base − min_base)),
                    low, high)

with ``u(c)`` hash-uniform in ``[u_low, u_high]``.  With ``u_high > 1``
some conjunctions still cost more than their cheapest part (the paper's
``AW: 5N`` vs ``W: 1N``), while most undercut an expensive rare part —
the regime where the MC³ optimisation pays off.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Mapping, Optional

from repro.core.costs import CostModel, validate_weight
from repro.core.properties import Classifier, canonical_label
from repro.exceptions import InvalidInstanceError


class SubAdditiveHashCost(CostModel):
    """Deterministic sub-additive integer costs (see module docstring)."""

    def __init__(
        self,
        base_costs: Mapping[str, float],
        low: int = 1,
        high: int = 63,
        u_low: float = 0.55,
        u_high: float = 1.25,
        spill: float = 0.1,
        seed: int = 0,
        max_length: Optional[int] = None,
    ):
        if low < 0 or high < low:
            raise InvalidInstanceError(f"invalid cost range [{low}, {high}]")
        if not 0 < u_low <= u_high:
            raise InvalidInstanceError(f"invalid specificity range [{u_low}, {u_high}]")
        if spill < 0:
            raise InvalidInstanceError("spill must be >= 0")
        self.base_costs: Dict[str, float] = {}
        for prop, base in base_costs.items():
            self.base_costs[str(prop)] = validate_weight(base)
        self.low = int(low)
        self.high = int(high)
        self.u_low = float(u_low)
        self.u_high = float(u_high)
        self.spill = float(spill)
        self.seed = int(seed)
        self.max_length = max_length

    def _specificity(self, clf: Classifier) -> float:
        digest = hashlib.blake2b(
            canonical_label(clf).encode(),
            digest_size=8,
            salt=self.seed.to_bytes(8, "little", signed=False),
        ).digest()
        unit = int.from_bytes(digest, "little") / float(1 << 64)
        return self.u_low + unit * (self.u_high - self.u_low)

    def cost(self, clf: Classifier) -> float:
        if self.max_length is not None and len(clf) > self.max_length:
            return math.inf
        try:
            bases = [self.base_costs[prop] for prop in clf]
        except KeyError:
            # Unknown property: the classifier is outside this dataset's
            # universe, hence unavailable.
            return math.inf
        if len(bases) == 1:
            value = bases[0]
        else:
            lowest = min(bases)
            value = self._specificity(clf) * lowest + self.spill * (sum(bases) - lowest)
        return float(min(self.high, max(self.low, round(value))))
