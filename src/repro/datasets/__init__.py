"""Dataset generators and loaders for the experimental study.

Three generated datasets mirror the paper's Table 1 (see DESIGN.md for
the substitution rationale): :func:`bestbuy_like` (BB),
:func:`private_like` (P, plus category slices), :func:`synthetic` (S).
"""

from typing import Callable, Dict, List

from repro.core.instance import MC3Instance
from repro.datasets.bestbuy import bestbuy_like
from repro.datasets.composer import CategoryQuerySampler, draw_lengths, zipf_choice
from repro.datasets.costmodels import SubAdditiveHashCost
from repro.datasets.loaders import (
    instance_from_files,
    load_cost_table_csv,
    load_query_log,
    save_cost_table_csv,
    save_query_log,
)
from repro.datasets.private import (
    private_like,
    private_like_category,
    private_like_short,
)
from repro.datasets.scale import (
    SCALE_TIERS,
    LazyQueryLoad,
    ScaleTierWorkload,
    scale_tier_queries,
    scale_tier_workload,
)
from repro.datasets.synthetic import (
    SyntheticQueryStream,
    synthetic,
    synthetic_k2,
    synthetic_query_stream,
)
from repro.exceptions import DatasetError

_GENERATORS: Dict[str, Callable[..., MC3Instance]] = {
    "bestbuy": bestbuy_like,
    "private": private_like,
    "private-short": private_like_short,
    "private-fashion": lambda **kw: private_like_category("fashion", **kw),
    "synthetic": synthetic,
    "synthetic-k2": synthetic_k2,
}


def available_datasets() -> List[str]:
    """Registered dataset generator names."""
    return sorted(_GENERATORS)


def make_dataset(name: str, **kwargs) -> MC3Instance:
    """Generate a dataset by registry name."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        known = ", ".join(available_datasets())
        raise DatasetError(f"unknown dataset {name!r} (known: {known})") from None
    return generator(**kwargs)


__all__ = [
    "CategoryQuerySampler",
    "LazyQueryLoad",
    "SCALE_TIERS",
    "ScaleTierWorkload",
    "SubAdditiveHashCost",
    "SyntheticQueryStream",
    "scale_tier_queries",
    "scale_tier_workload",
    "synthetic_query_stream",
    "available_datasets",
    "bestbuy_like",
    "draw_lengths",
    "instance_from_files",
    "load_cost_table_csv",
    "load_query_log",
    "make_dataset",
    "private_like",
    "private_like_category",
    "private_like_short",
    "save_cost_table_csv",
    "save_query_log",
    "synthetic",
    "synthetic_k2",
    "zipf_choice",
]
