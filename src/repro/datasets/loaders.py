"""Loading query logs and cost tables from files.

Two plain-text formats for interoperability with real logs:

* **query log** — one query per line, properties whitespace-separated;
  blank lines and ``#`` comments ignored;
* **cost table CSV** — ``classifier,cost`` rows, where the classifier
  column uses the canonical ``+``-joined label.

JSON round-tripping of full instances lives in :mod:`repro.core.io`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

from repro.core.costs import TableCost, parse_classifier_key
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier, Query
from repro.exceptions import DatasetError

PathLike = Union[str, Path]


def load_query_log(path: PathLike) -> List[Query]:
    """Read a whitespace-separated query log."""
    queries: List[Query] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            queries.append(frozenset(parts))
    if not queries:
        raise DatasetError(f"{path}: query log is empty")
    return queries


def save_query_log(queries, path: PathLike) -> None:
    """Write a whitespace-separated query log (sorted properties)."""
    with open(path, "w", encoding="utf-8") as handle:
        for q in queries:
            handle.write(" ".join(sorted(q)) + "\n")


def load_cost_table_csv(path: PathLike, default: float = float("inf")) -> TableCost:
    """Read a ``classifier,cost`` CSV into a :class:`TableCost`."""
    table: Dict[Classifier, float] = {}
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        for row_number, row in enumerate(reader, start=1):
            if not row or row[0].strip().startswith("#"):
                continue
            if len(row) != 2:
                raise DatasetError(f"{path}:{row_number}: expected 'classifier,cost'")
            label, cost_text = row
            try:
                cost = float(cost_text)
            except ValueError:
                if row_number == 1:
                    continue  # header row
                raise DatasetError(f"{path}:{row_number}: bad cost {cost_text!r}") from None
            table[parse_classifier_key(label)] = cost
    if not table:
        raise DatasetError(f"{path}: cost table is empty")
    return TableCost(table, default=default)


def save_cost_table_csv(cost: TableCost, path: PathLike) -> None:
    """Write a :class:`TableCost` to a ``classifier,cost`` CSV."""
    from repro.core.properties import canonical_label

    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["classifier", "cost"])
        for clf, weight in sorted(cost.items(), key=lambda kv: canonical_label(kv[0])):
            writer.writerow([canonical_label(clf), weight])


def instance_from_files(
    query_log: PathLike, cost_csv: PathLike, default_cost: float = float("inf"), name: str = ""
) -> MC3Instance:
    """Assemble an instance from a query log and a cost table."""
    return MC3Instance(
        load_query_log(query_log),
        load_cost_table_csv(cost_csv, default=default_cost),
        name=name or str(query_log),
    )
