"""Query composition shared by the BestBuy-like and Private-like
generators.

Queries are built from a category vocabulary: a product type plus
brands/attributes/colours, drawn with Zipf-like popularity skew so that
popular properties recur across many queries (high incidence ``I``) —
exactly the property-sharing structure the MC³ algorithms exploit.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Sequence, Set

from repro.core.properties import Query
from repro.datasets.vocab import vocabulary
from repro.exceptions import DatasetError


def zipf_choice(rng: random.Random, items: Sequence[str], skew: float = 1.0) -> str:
    """Pick an item with probability proportional to ``1/rank^skew``."""
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


#: Relative draw weight of each vocabulary section; types dominate
#: (real queries usually anchor on a product type) but any combination
#: can occur, keeping the space of short queries large.
POOL_WEIGHTS = {"types": 1.0, "brands": 0.8, "attributes": 0.6, "colors": 0.5}


class CategoryQuerySampler:
    """Samples distinct conjunctive queries for one category.

    Properties come from a single merged vocabulary with Zipf-skewed
    per-section weights, so any pair of properties can form a query
    (type+brand, colour+type, brand+attribute, …) — matching free-text
    behaviour and keeping the distinct-query space roomy enough for the
    requested length marginals.
    """

    def __init__(
        self,
        category: str,
        rng: random.Random,
        skew: float = 1.0,
        tail_size: int = 0,
        tail_weight: float = 1.2,
        tail_skew: float = 0.15,
    ):
        try:
            vocab = vocabulary(category)
        except KeyError:
            raise DatasetError(f"unknown category {category!r}") from None
        self.category = category
        self.rng = rng
        self.skew = skew
        self._population: List[str] = []
        weights: List[float] = []
        for section, pool_weight in POOL_WEIGHTS.items():
            for rank, prop in enumerate(vocab[section]):
                self._population.append(prop)
                weights.append(pool_weight / (rank + 1) ** skew)
        # Head-only cumulative weights: single-word queries are popular
        # head terms ("laptop"), never obscure tail variants.
        self._head_population = list(self._population)
        self._head_cum_weights: List[float] = []
        head_total = 0.0
        for weight in weights:
            head_total += weight
            self._head_cum_weights.append(head_total)
        # Long tail of specific model/series/team properties (the paper's
        # "Juventus #14" style): individually rare, collectively a large
        # share of the query mass — the regime where cheap conjunction
        # classifiers beat expensive rare singletons.  Tail draws are
        # nearly flat (``tail_skew`` << head skew): model numbers and team
        # names are one-off terms.  ``tail_weight`` is the total tail draw
        # mass relative to the head's (e.g. 1.5 = 60% of non-singleton
        # property draws come from the tail).
        if tail_size > 0:
            raw = [1.0 / (rank + 1) ** tail_skew for rank in range(tail_size)]
            scale = tail_weight * head_total / sum(raw)
            for rank in range(tail_size):
                self._population.append(f"{category}-t{rank}")
                weights.append(raw[rank] * scale)
        # Cumulative weights let random.choices skip re-normalisation.
        self._cum_weights: List[float] = []
        total = 0.0
        for weight in weights:
            total += weight
            self._cum_weights.append(total)

    def sample_query(self, length: int) -> Query:
        """One query of exactly ``length`` distinct properties."""
        if length < 1:
            raise DatasetError("query length must be >= 1")
        if length > len(self._population):
            raise DatasetError(
                f"vocabulary of {self.category!r} too small for length {length}"
            )
        population = self._population if length > 1 else self._head_population
        cum_weights = self._cum_weights if length > 1 else self._head_cum_weights
        chosen: Set[str] = set()
        attempts = 0
        while len(chosen) < length:
            prop = self.rng.choices(population, cum_weights=cum_weights, k=1)[0]
            chosen.add(prop)
            attempts += 1
            if attempts > 100 * length:
                raise DatasetError(
                    f"vocabulary of {self.category!r} too skewed for length {length}"
                )
        return frozenset(chosen)

    def sample_distinct(
        self, lengths: Sequence[int], max_attempts: int = 500
    ) -> List[Query]:
        """Distinct queries matching the requested length sequence.

        When the space of some length saturates (hundreds of consecutive
        duplicates), the query is lengthened by one instead of looping
        forever; this slightly fattens the tail but preserves the head
        marginals, and generators size their vocabularies so it is rare.
        """
        queries: List[Query] = []
        seen: Set[Query] = set()
        for length in lengths:
            attempts = 0
            while True:
                q = self.sample_query(length)
                if q not in seen:
                    seen.add(q)
                    queries.append(q)
                    break
                attempts += 1
                if attempts > max_attempts:
                    length += 1
                    attempts = 0
        return queries


def draw_lengths(
    rng: random.Random, n: int, distribution: Dict[int, float]
) -> List[int]:
    """Draw ``n`` query lengths from an explicit ``{length: prob}`` table."""
    lengths = sorted(distribution)
    weights = [distribution[length] for length in lengths]
    return rng.choices(lengths, weights=weights, k=n)
