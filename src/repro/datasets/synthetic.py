"""The synthetic dataset (Section 6.1, Table 1 row "S") — the paper's
own generation recipe, implemented directly:

* ``n`` distinct queries (paper: up to 100,000);
* query length ``l ≥ 2`` with probability ``1 / 2^(l-1)`` (half the
  queries have length two, a quarter length three, …), re-drawn above
  10 ("such long queries are rare in practice");
* properties drawn uniformly from a pool of ``n/t`` properties, with
  ``t`` drawn uniformly from ``[2, √n]`` once per dataset;
* classifier costs uniform integers in ``[1, 50]``, realised lazily by
  :class:`~repro.core.costs.HashCost` (the classifier universe is far
  too large to materialise).

``max_classifier_length`` bounds the classifiers considered (the
*bounded classifiers* regime of Section 5.3, "a prevalent approach is to
consider only classifiers of length at most k' < k"); the general-case
benchmarks use ``k' = 3`` to keep single-process wall-clock sane and
record that choice in EXPERIMENTS.md.

Generation is exposed at two granularities: :class:`SyntheticQueryStream`
(a restartable iterator/``__len__`` protocol that yields queries one at
a time, for the streaming solver and the 1M–10M scale tiers of
:mod:`repro.datasets.scale`) and :func:`synthetic` (the historical
eager :class:`~repro.core.instance.MC3Instance` entry point, now a thin
adapter that lets the instance constructor materialise the stream).
Both produce bit-identical query sequences for the same parameters.
"""

from __future__ import annotations

import math
import random
from hashlib import blake2b
from typing import Iterator, Optional

from repro.core.costs import HashCost
from repro.core.instance import MC3Instance
from repro.core.properties import Query
from repro.exceptions import DatasetError

MAX_QUERY_LENGTH = 10
COST_LOW = 1
COST_HIGH = 50


def _draw_length(rng: random.Random, max_length: int) -> int:
    """Geometric: P(l) = 2^-(l-1) for l >= 2, re-drawn beyond the cap."""
    while True:
        length = 2
        while rng.random() < 0.5:
            length += 1
        if length <= max_length:
            return length


class SyntheticQueryStream:
    """Restartable lazy view of the S dataset's query sequence.

    Iterating yields the ``n`` distinct queries in generation order
    without ever holding the query list: each ``__iter__`` call replays
    the seeded generator from scratch (the paper's recipe is cheap, the
    list is not).  Distinctness is enforced with a ledger of 64-bit
    content digests of the canonically-sorted property labels — *not*
    the builtin ``hash``, which varies across processes under
    ``PYTHONHASHSEED`` — so the accept/reject decisions (and therefore
    the sequence) match the historical eager generator draw for draw.
    The digest ledger is the only O(n) state and it stores small ints,
    roughly an order of magnitude lighter than the frozensets it
    replaces.
    """

    def __init__(self, n: int, seed: int = 0, max_length: int = MAX_QUERY_LENGTH):
        if n < 1:
            raise DatasetError("n must be >= 1")
        if max_length < 2:
            raise DatasetError(
                "max_length must be >= 2 (the paper draws lengths >= 2)"
            )
        self.n = n
        self.seed = seed
        self.max_length = max_length

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[Query]:
        n = self.n
        rng = random.Random(f"synthetic-{self.seed}-{n}-{self.max_length}")

        # Property pool: n/t properties, t ~ U[2, sqrt(n)].  Guard
        # against pools too small to hold n *distinct* queries (possible
        # for small n or an unlucky large t): grow the pool until the
        # number of length-2 combinations alone gives a comfortable 3x
        # margin.
        sqrt_n = max(2, int(math.isqrt(n)))
        t = rng.uniform(2, sqrt_n)
        pool_size = max(2, int(n / t))
        while pool_size * (pool_size - 1) // 2 < 3 * n:
            pool_size *= 2
        pool = [f"p{i}" for i in range(pool_size)]

        seen: set = set()
        yielded = 0
        while yielded < n:
            length = _draw_length(rng, self.max_length)
            q = frozenset(rng.sample(pool, length))
            key = int.from_bytes(
                blake2b(",".join(sorted(q)).encode("ascii"), digest_size=8).digest(),
                "little",
            )
            if key not in seen:
                seen.add(key)
                yielded += 1
                yield q


def synthetic_query_stream(
    n: int = 100_000, seed: int = 0, max_length: int = MAX_QUERY_LENGTH
) -> SyntheticQueryStream:
    """The S dataset's queries as a restartable lazy stream."""
    return SyntheticQueryStream(n, seed=seed, max_length=max_length)


def synthetic(
    n: int = 100_000,
    seed: int = 0,
    max_length: int = MAX_QUERY_LENGTH,
    max_classifier_length: Optional[int] = None,
) -> MC3Instance:
    """Generate the S dataset.

    Parameters
    ----------
    n:
        Number of distinct queries.
    seed:
        Generator seed (also seeds the lazy cost hash).
    max_length:
        Query length cap; the paper uses 10.  ``max_length=2`` yields the
        k ≤ 2 load of Figure 3c.
    max_classifier_length:
        Optional bound k' on classifier length (Section 5.3).
    """
    stream = SyntheticQueryStream(n, seed=seed, max_length=max_length)
    cost = HashCost(COST_LOW, COST_HIGH, seed=seed)
    # MC3Instance canonicalises its query iterable into a tuple — the
    # thin list adapter that keeps every eager caller working unchanged.
    return MC3Instance(
        stream,
        cost,
        max_classifier_length=max_classifier_length,
        name=f"S(n={n},seed={seed},maxlen={max_length})",
    )


def synthetic_k2(n: int = 100_000, seed: int = 0) -> MC3Instance:
    """The synthetic load restricted to k ≤ 2 (all queries length 2),
    used by the Figure 3c runtime experiment."""
    return synthetic(n, seed=seed, max_length=2)
