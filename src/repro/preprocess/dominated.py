"""Preprocessing step 3 (Observation 3.3): remove classifiers whose
covering contribution is subsumed by a set of shorter classifiers of at
most the same cost.

The pass iterates classifiers by increasing length (2 … k).  For each
classifier ``S`` it evaluates decompositions into two classifiers whose
union is ``S`` (Algorithm 1, line 8), pricing previously removed (or
never-available) parts by their own cheapest decomposition — the
*effective weight* memo.  If the cheapest decomposition costs no more
than ``W(S)``, ``S`` is removed.

After a pass, queries that are left with a single irredundant cover get
that cover *selected* (line 10), and the pass repeats for classifiers
intersecting the selections (line 11) — selection zeroes weights, which
can enable further removals.

Internally the pass runs entirely on interned integer bitmasks (one
:class:`~repro.core.bitspace.PropertySpace` per component): subset
tests, the decomposition cache, and the effective-weight memo are all
mask-keyed, so the ``O(3^len)`` inner loop does machine-word arithmetic
instead of frozenset allocation.  The public surface — frozenset
queries in, frozenset removals/selections out, write-through to the
shared :class:`~repro.core.costs.OverlayCost` — is unchanged, and the
decisions are bit-identical to the frozenset implementation
(:mod:`repro.core.reference` keeps that claim executable).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.bitspace import MaskCost, PropertySpace, mask_union, popcount
from repro.core.costs import OverlayCost
from repro.core.mincover import enumerate_covers_local
from repro.core.properties import Classifier, Query

#: Beyond this classifier length the ``O(3^len)`` full decomposition
#: enumeration switches to the ``O(2^len)`` disjoint-only family (still a
#: sound pruning rule, merely less aggressive).
FULL_ENUMERATION_MAX_LENGTH = 7

#: Forced-cover detection enumerates irredundant covers, which is
#: exponential in the query length; skip it for longer queries.
FORCED_COVER_MAX_LENGTH = 5

#: Per-query budget for the uniqueness search; exhausting it means the
#: query conservatively counts as having multiple covers.
FORCED_COVER_NODE_BUDGET = 3000

#: Queries with more available candidates than this skip the uniqueness
#: test outright — a unique cover among that many candidates is
#: vanishingly rare and the search is the expensive part.
FORCED_COVER_MAX_CANDIDATES = 24


class DominatedPruner:
    """Stateful step-3 pass over one property-disjoint component."""

    def __init__(
        self,
        queries: Sequence[Query],
        overlay: OverlayCost,
        max_classifier_length: Optional[int] = None,
    ):
        self.queries = list(queries)
        self.overlay = overlay
        self.max_classifier_length = max_classifier_length
        # The component's property universe, interned once; every hot
        # structure below is keyed by mask, not frozenset.
        self.space = PropertySpace.from_queries(self.queries)
        self._cost = MaskCost(self.space, overlay)
        self._query_masks = [self.space.mask_of(q) for q in self.queries]
        # Effective weight: cheapest way to obtain S's covering power from
        # shorter classifiers (or S itself).
        self._effective: Dict[int, float] = {}
        self.removed: Set[Classifier] = set()
        self._removed_masks: Set[int] = set()
        self.forced: List[Classifier] = []
        self._universe_cache: Optional[List[int]] = None
        # Decomposition pairs per classifier never change (only their
        # costs do), so they are materialised once and reused across the
        # fixpoint re-passes.
        self._decomposition_cache: Dict[int, Tuple[Tuple[int, int], ...]] = {}

    # ------------------------------------------------------------------

    def _universe(self) -> List[int]:
        """All candidate classifier masks of the component, by increasing
        length then label, deduplicated.  Computed once — removals are
        tracked separately and never shrink this list."""
        if self._universe_cache is None:
            seen: Set[int] = set()
            ordered: List[int] = []
            for qmask in self._query_masks:
                for mask in self.space.iter_subset_masks(
                    qmask, self.max_classifier_length
                ):
                    if mask not in seen:
                        seen.add(mask)
                        ordered.append(mask)
            # Stable sort by length keeps the deterministic per-query
            # enumeration order within each length class.
            ordered.sort(key=popcount)
            self._universe_cache = ordered
        return self._universe_cache

    def effective_weight(self, clf: Classifier) -> float:
        """Weight of ``clf`` or of its cheapest recorded decomposition."""
        mask = self.space.mask_of(clf)
        memo = self._effective.get(mask)
        direct = self._cost.cost(mask)
        if memo is None:
            return direct
        return min(memo, direct)

    def _decompositions(self, mask: int) -> Tuple[Tuple[int, int], ...]:
        cached = self._decomposition_cache.get(mask)
        if cached is not None:
            return cached
        length = popcount(mask)
        if length == 2:
            # The only pair of proper submasks with union XY is (X, Y).
            low = mask & -mask
            pairs: Tuple[Tuple[int, int], ...] = ((low, mask ^ low),)
        elif length <= FULL_ENUMERATION_MAX_LENGTH:
            pairs = tuple(self.space.iter_two_cover_masks(mask))
        else:
            pairs = tuple(self.space.iter_two_partition_masks(mask))
        self._decomposition_cache[mask] = pairs
        return pairs

    def _cheapest_decomposition(self, mask: int) -> float:
        best = math.inf
        memo = self._effective
        cost = self._cost.cost
        for part_a, part_b in self._decompositions(mask):
            # Inlined effective_weight: min(memoised decomposition, direct).
            weight = cost(part_a)
            cached = memo.get(part_a)
            if cached is not None and cached < weight:
                weight = cached
            direct_b = cost(part_b)
            cached_b = memo.get(part_b)
            if cached_b is not None and cached_b < direct_b:
                direct_b = cached_b
            weight += direct_b
            if weight < best:
                best = weight
        return best

    # ------------------------------------------------------------------

    def _pass_remove(self, targets: Optional[Iterable[int]] = None) -> int:
        """One removal sweep; returns the number of removals.

        Classifiers are processed by increasing length so shorter parts'
        effective weights are final before longer classifiers consult
        them; within a length the order is irrelevant (decompositions use
        strictly shorter classifiers only).
        """
        if targets is None:
            universe = self._universe()
        else:
            universe = sorted(set(targets), key=popcount)
        removed_count = 0
        cost = self._cost.cost
        effective = self._effective
        removed_masks = self._removed_masks
        for mask in universe:
            length = popcount(mask)
            if length < 2 or mask in removed_masks:
                continue
            if length == 2:
                # Inlined fast path: the only decomposition is (X, Y), and
                # singletons are never removed by this step, so their
                # effective weight is just their overlay weight.
                low = mask & -mask
                decomposition_cost = cost(low) + cost(mask ^ low)
            else:
                decomposition_cost = self._cheapest_decomposition(mask)
            direct = cost(mask)
            effective[mask] = min(direct, decomposition_cost)
            if math.isfinite(direct) and decomposition_cost <= direct:
                self._cost.remove(mask)
                removed_masks.add(mask)
                self.removed.add(self.space.set_of(mask))
                removed_count += 1
        return removed_count

    def _available_candidates(self, qmask: int) -> List[Tuple[int, float]]:
        cost = self._cost.cost
        pairs = []
        for mask in self.space.iter_subset_masks(qmask, self.max_classifier_length):
            weight = cost(mask)
            if math.isfinite(weight):
                pairs.append((mask, weight))
        return pairs

    def _detect_forced_covers(self, uncovered: Sequence[int]) -> List[int]:
        """Queries with a single irredundant cover force its classifiers
        (Algorithm 1, line 10).  Takes and returns masks."""
        newly_forced: List[int] = []
        for qmask in uncovered:
            length = popcount(qmask)
            if length > FORCED_COVER_MAX_LENGTH:
                continue
            if length == 2:
                unique = self._unique_cover_k2(qmask)
            else:
                candidates = self._available_candidates(qmask)
                if len(candidates) > FORCED_COVER_MAX_CANDIDATES:
                    continue
                unique = self._unique_cover(qmask, candidates)
            if unique is not None:
                for mask in unique:
                    if self._cost.cost(mask) > 0:
                        self._cost.select(mask)
                        newly_forced.append(mask)
        return newly_forced

    def _unique_cover(
        self, qmask: int, candidates: List[Tuple[int, float]]
    ) -> Optional[Tuple[int, ...]]:
        """Mask-level uniqueness test via the irredundant-cover search.

        Candidate masks are compressed to query-local bits (ascending
        component bits → ascending local bits) so the search order, and
        therefore the budget-exhaustion behaviour, matches the
        frozenset-era enumeration exactly.
        """
        bits = self.space.bits_of(qmask)
        local_of = {bit: i for i, bit in enumerate(bits)}
        full = (1 << len(bits)) - 1
        usable: List[Tuple[int, float]] = []
        for mask, weight in candidates:
            local = 0
            sub = mask
            while sub:
                low = sub & -sub
                local |= 1 << local_of[low.bit_length() - 1]
                sub ^= low
            usable.append((local, weight))
        covers, exhausted = enumerate_covers_local(
            full, usable, limit=2, node_budget=FORCED_COVER_NODE_BUDGET
        )
        if exhausted or len(covers) != 1:
            return None
        picked, _cost = covers[0]
        return tuple(candidates[idx][0] for idx in picked)

    def _unique_cover_k2(self, qmask: int) -> Optional[Tuple[int, ...]]:
        """Closed form of the uniqueness test for length-2 queries: the
        only irredundant covers are {XY} and {X, Y}."""
        singleton_x = qmask & -qmask
        singleton_y = qmask ^ singleton_x
        cost = self._cost.cost
        pair_ok = math.isfinite(cost(qmask))
        singles_ok = math.isfinite(cost(singleton_x)) and math.isfinite(
            cost(singleton_y)
        )
        if pair_ok and not singles_ok:
            return (qmask,)
        if singles_ok and not pair_ok:
            return (singleton_x, singleton_y)
        return None

    # ------------------------------------------------------------------

    def run(self, uncovered: Sequence[Query]) -> Tuple[int, List[Classifier]]:
        """Run removal + forced-cover detection to a fixpoint.

        Returns ``(total removals, forced classifiers)``.  Per the paper,
        re-passes only re-examine classifiers that intersect a selection
        (weights only ever drop to 0 on selection), and re-detection only
        re-examines queries touching the affected properties — the rest
        cannot have changed.
        """
        space = self.space
        uncovered_masks = [space.mask_of(q) for q in uncovered]
        queries_by_bit: Dict[int, List[int]] = {}
        for qmask in uncovered_masks:
            for bit in space.bits_of(qmask):
                queries_by_bit.setdefault(bit, []).append(qmask)
        alive: Dict[int, None] = dict.fromkeys(uncovered_masks)

        total_removed = self._pass_remove()
        pending: Sequence[int] = list(alive)
        while True:
            forced_now = self._detect_forced_covers(pending)
            if not forced_now:
                break
            self.forced.extend(space.set_of(mask) for mask in forced_now)
            affected_mask = mask_union(forced_now)
            # Queries sharing a property with the selections are the only
            # ones whose cover options changed; of those, the ones the
            # selections fully covered leave the game entirely.
            affected: List[int] = []
            seen_affected: Set[int] = set()
            for bit in space.bits_of(affected_mask):
                for qmask in queries_by_bit.get(bit, ()):
                    if qmask in alive and qmask not in seen_affected:
                        seen_affected.add(qmask)
                        affected.append(qmask)
            still_uncovered: List[int] = []
            for qmask in affected:
                if self._covered_by_selected(qmask):
                    del alive[qmask]
                else:
                    still_uncovered.append(qmask)
            # Re-examine only classifiers of still-uncovered queries:
            # removals among covered queries' classifiers can never
            # influence the residual problem.
            touched: Set[int] = set()
            for qmask in still_uncovered:
                for mask in space.iter_subset_masks(
                    qmask, self.max_classifier_length
                ):
                    if mask & affected_mask and mask not in self._removed_masks:
                        touched.add(mask)
                        # Invalidate memo so the zeroed selections are seen.
                        self._effective.pop(mask, None)
            total_removed += self._pass_remove(touched)
            pending = still_uncovered
        return total_removed, self.forced

    def _covered_by_selected(self, qmask: int) -> bool:
        """Whether zero-weight (selected) classifiers already cover the
        query."""
        remaining = qmask
        cost = self._cost.cost
        for mask in self.space.iter_subset_masks(qmask, self.max_classifier_length):
            if cost(mask) == 0:
                remaining &= ~mask
                if not remaining:
                    return True
        return False
