"""Preprocessing step 3 (Observation 3.3): remove classifiers whose
covering contribution is subsumed by a set of shorter classifiers of at
most the same cost.

The pass iterates classifiers by increasing length (2 … k).  For each
classifier ``S`` it evaluates decompositions into two classifiers whose
union is ``S`` (Algorithm 1, line 8), pricing previously removed (or
never-available) parts by their own cheapest decomposition — the
*effective weight* memo.  If the cheapest decomposition costs no more
than ``W(S)``, ``S`` is removed.

After a pass, queries that are left with a single irredundant cover get
that cover *selected* (line 10), and the pass repeats for classifiers
intersecting the selections (line 11) — selection zeroes weights, which
can enable further removals.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.costs import OverlayCost
from repro.core.mincover import enumerate_covers
from repro.core.properties import (
    Classifier,
    PropertySet,
    Query,
    iter_nonempty_subsets,
    iter_two_covers,
    iter_two_partitions,
)

#: Beyond this classifier length the ``O(3^len)`` full decomposition
#: enumeration switches to the ``O(2^len)`` disjoint-only family (still a
#: sound pruning rule, merely less aggressive).
FULL_ENUMERATION_MAX_LENGTH = 7

#: Forced-cover detection enumerates irredundant covers, which is
#: exponential in the query length; skip it for longer queries.
FORCED_COVER_MAX_LENGTH = 5

#: Per-query budget for the uniqueness search; exhausting it means the
#: query conservatively counts as having multiple covers.
FORCED_COVER_NODE_BUDGET = 3000

#: Queries with more available candidates than this skip the uniqueness
#: test outright — a unique cover among that many candidates is
#: vanishingly rare and the search is the expensive part.
FORCED_COVER_MAX_CANDIDATES = 24


class DominatedPruner:
    """Stateful step-3 pass over one property-disjoint component."""

    def __init__(
        self,
        queries: Sequence[Query],
        overlay: OverlayCost,
        max_classifier_length: Optional[int] = None,
    ):
        self.queries = list(queries)
        self.overlay = overlay
        self.max_classifier_length = max_classifier_length
        # Effective weight: cheapest way to obtain S's covering power from
        # shorter classifiers (or S itself).
        self._effective: Dict[PropertySet, float] = {}
        self.removed: Set[Classifier] = set()
        self.forced: List[Classifier] = []
        self._universe_cache: Optional[List[Classifier]] = None
        # Decomposition pairs per classifier never change (only their
        # costs do), so they are materialised once and reused across the
        # fixpoint re-passes.
        self._decomposition_cache: Dict[Classifier, Tuple[Tuple[Classifier, Classifier], ...]] = {}

    # ------------------------------------------------------------------

    def _universe(self) -> List[Classifier]:
        """All candidate classifiers of the component, by increasing
        length then label, deduplicated.  Computed once — removals are
        tracked separately and never shrink this list."""
        if self._universe_cache is None:
            seen: Set[Classifier] = set()
            ordered: List[Classifier] = []
            for q in self.queries:
                for clf in iter_nonempty_subsets(q, self.max_classifier_length):
                    if clf not in seen:
                        seen.add(clf)
                        ordered.append(clf)
            # Stable sort by length keeps the deterministic per-query
            # enumeration order within each length class.
            ordered.sort(key=len)
            self._universe_cache = ordered
        return self._universe_cache

    def effective_weight(self, clf: Classifier) -> float:
        """Weight of ``clf`` or of its cheapest recorded decomposition."""
        memo = self._effective.get(clf)
        direct = self.overlay.cost(clf)
        if memo is None:
            return direct
        return min(memo, direct)

    def _decompositions(self, clf: Classifier):
        cached = self._decomposition_cache.get(clf)
        if cached is not None:
            return cached
        if len(clf) == 2:
            # The only pair of proper subsets with union XY is (X, Y).
            x, y = clf
            pairs: Tuple[Tuple[Classifier, Classifier], ...] = (
                (frozenset((x,)), frozenset((y,))),
            )
        elif len(clf) <= FULL_ENUMERATION_MAX_LENGTH:
            pairs = tuple(iter_two_covers(clf))
        else:
            pairs = tuple(iter_two_partitions(clf))
        self._decomposition_cache[clf] = pairs
        return pairs

    def _cheapest_decomposition(self, clf: Classifier) -> float:
        best = math.inf
        memo = self._effective
        overlay_cost = self.overlay.cost
        for part_a, part_b in self._decompositions(clf):
            # Inlined effective_weight: min(memoised decomposition, direct).
            weight = overlay_cost(part_a)
            cached = memo.get(part_a)
            if cached is not None and cached < weight:
                weight = cached
            direct_b = overlay_cost(part_b)
            cached_b = memo.get(part_b)
            if cached_b is not None and cached_b < direct_b:
                direct_b = cached_b
            weight += direct_b
            if weight < best:
                best = weight
        return best

    # ------------------------------------------------------------------

    def _pass_remove(self, targets: Optional[Iterable[Classifier]] = None) -> int:
        """One removal sweep; returns the number of removals.

        Classifiers are processed by increasing length so shorter parts'
        effective weights are final before longer classifiers consult
        them; within a length the order is irrelevant (decompositions use
        strictly shorter classifiers only).
        """
        if targets is None:
            universe = self._universe()
        else:
            universe = sorted(set(targets), key=len)
        removed_count = 0
        overlay_cost = self.overlay.cost
        effective = self._effective
        for clf in universe:
            if len(clf) < 2 or clf in self.removed:
                continue
            if len(clf) == 2:
                # Inlined fast path: the only decomposition is (X, Y), and
                # singletons are never removed by this step, so their
                # effective weight is just their overlay weight.
                x, y = clf
                decomposition_cost = overlay_cost(frozenset((x,))) + overlay_cost(
                    frozenset((y,))
                )
            else:
                decomposition_cost = self._cheapest_decomposition(clf)
            direct = overlay_cost(clf)
            effective[clf] = min(direct, decomposition_cost)
            if math.isfinite(direct) and decomposition_cost <= direct:
                self.overlay.remove(clf)
                self.removed.add(clf)
                removed_count += 1
        return removed_count

    def _available_candidates(self, q: Query) -> List[Tuple[Classifier, float]]:
        pairs = []
        for clf in iter_nonempty_subsets(q, self.max_classifier_length):
            weight = self.overlay.cost(clf)
            if math.isfinite(weight):
                pairs.append((clf, weight))
        return pairs

    def _detect_forced_covers(self, uncovered: Sequence[Query]) -> List[Classifier]:
        """Queries with a single irredundant cover force its classifiers
        (Algorithm 1, line 10)."""
        newly_forced: List[Classifier] = []
        for q in uncovered:
            if len(q) > FORCED_COVER_MAX_LENGTH:
                continue
            if len(q) == 2:
                unique = self._unique_cover_k2(q)
            else:
                candidates = self._available_candidates(q)
                if len(candidates) > FORCED_COVER_MAX_CANDIDATES:
                    continue
                covers = enumerate_covers(
                    q, candidates, limit=2, node_budget=FORCED_COVER_NODE_BUDGET
                )
                unique = covers[0].classifiers if len(covers) == 1 else None
            if unique is not None:
                for clf in unique:
                    if self.overlay.cost(clf) > 0:
                        self.overlay.select(clf)
                        newly_forced.append(clf)
        return newly_forced

    def _unique_cover_k2(self, q: Query) -> Optional[Tuple[Classifier, ...]]:
        """Closed form of the uniqueness test for length-2 queries: the
        only irredundant covers are {XY} and {X, Y}."""
        x, y = sorted(q)
        singleton_x = frozenset((x,))
        singleton_y = frozenset((y,))
        pair = frozenset(q)
        pair_ok = math.isfinite(self.overlay.cost(pair))
        singles_ok = math.isfinite(self.overlay.cost(singleton_x)) and math.isfinite(
            self.overlay.cost(singleton_y)
        )
        if pair_ok and not singles_ok:
            return (pair,)
        if singles_ok and not pair_ok:
            return (singleton_x, singleton_y)
        return None

    # ------------------------------------------------------------------

    def run(self, uncovered: Sequence[Query]) -> Tuple[int, List[Classifier]]:
        """Run removal + forced-cover detection to a fixpoint.

        Returns ``(total removals, forced classifiers)``.  Per the paper,
        re-passes only re-examine classifiers that intersect a selection
        (weights only ever drop to 0 on selection), and re-detection only
        re-examines queries touching the affected properties — the rest
        cannot have changed.
        """
        queries_by_property: Dict[str, List[Query]] = {}
        for q in uncovered:
            for prop in q:
                queries_by_property.setdefault(prop, []).append(q)
        alive: Dict[Query, None] = dict.fromkeys(uncovered)

        total_removed = self._pass_remove()
        pending: Sequence[Query] = list(alive)
        while True:
            forced_now = self._detect_forced_covers(pending)
            if not forced_now:
                break
            self.forced.extend(forced_now)
            affected_props = set().union(*forced_now)
            # Queries sharing a property with the selections are the only
            # ones whose cover options changed; of those, the ones the
            # selections fully covered leave the game entirely.
            affected: List[Query] = []
            seen_affected = set()
            for prop in affected_props:
                for q in queries_by_property.get(prop, ()):  # noqa: B905
                    if q in alive and q not in seen_affected:
                        seen_affected.add(q)
                        affected.append(q)
            still_uncovered: List[Query] = []
            for q in affected:
                if self._covered_by_selected(q):
                    del alive[q]
                else:
                    still_uncovered.append(q)
            # Re-examine only classifiers of still-uncovered queries:
            # removals among covered queries' classifiers can never
            # influence the residual problem.
            touched = set()
            for q in still_uncovered:
                for clf in iter_nonempty_subsets(q, self.max_classifier_length):
                    if clf & affected_props and clf not in self.removed:
                        touched.add(clf)
                        # Invalidate memo so the zeroed selections are seen.
                        self._effective.pop(clf, None)
            total_removed += self._pass_remove(touched)
            pending = still_uncovered
        return total_removed, self.forced

    def _covered_by_selected(self, q: Query) -> bool:
        """Whether zero-weight (selected) classifiers already cover ``q``."""
        remaining = set(q)
        for clf in iter_nonempty_subsets(q, self.max_classifier_length):
            if self.overlay.cost(clf) == 0:
                remaining -= clf
                if not remaining:
                    return True
        return False
