"""Preprocessing step 3 (Observation 3.3): remove classifiers whose
covering contribution is subsumed by a set of shorter classifiers of at
most the same cost.

The implementation lives in the kernel layer
(:mod:`repro.core.kernels`): every backend provides a pruner with the
historical ``DominatedPruner`` surface — frozenset queries in,
frozenset removals/selections out, write-through to the shared
:class:`~repro.core.costs.OverlayCost` — and bit-identical decisions
(:mod:`repro.core.reference` keeps that claim executable).  This module
is the compatibility shim: :func:`DominatedPruner` constructs the
active backend's pruner, and the pruning constants are re-exported for
existing importers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.costs import OverlayCost
from repro.core.kernels.api import (  # noqa: F401  (re-exported constants)
    FORCED_COVER_MAX_CANDIDATES,
    FORCED_COVER_MAX_LENGTH,
    FORCED_COVER_NODE_BUDGET,
    FULL_ENUMERATION_MAX_LENGTH,
    PrunesDominated,
)
from repro.core.kernels.registry import get_backend
from repro.core.properties import Query

__all__ = [
    "DominatedPruner",
    "FORCED_COVER_MAX_CANDIDATES",
    "FORCED_COVER_MAX_LENGTH",
    "FORCED_COVER_NODE_BUDGET",
    "FULL_ENUMERATION_MAX_LENGTH",
]


def DominatedPruner(  # noqa: N802 - keeps the historical class-style name
    queries: Sequence[Query],
    overlay: OverlayCost,
    max_classifier_length: Optional[int] = None,
    backend: Optional[str] = None,
) -> PrunesDominated:
    """Stateful step-3 pass over one property-disjoint component.

    Factory over the kernel registry: ``backend`` picks an
    implementation explicitly; ``None`` (the default) uses the active
    backend (see :func:`repro.core.kernels.registry.use_backend`).
    """
    return get_backend(backend).make_dominated_pruner(
        queries, overlay, max_classifier_length
    )
