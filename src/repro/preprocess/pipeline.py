"""Algorithm 1: the complete preprocessing pipeline.

Runs the four pruning steps over an :class:`~repro.core.instance.MC3Instance`
and produces a :class:`PreprocessResult` holding

* the *forced* classifiers (selected by the pruning rules — they appear
  in at least one optimal solution and are paid for up front),
* the property-disjoint residual sub-instances still to be solved, each
  priced by an :class:`~repro.core.costs.OverlayCost` in which forced
  classifiers cost 0 and removed classifiers cost ``∞``, and
* a :class:`~repro.preprocess.report.PreprocessReport` of what happened.

Every solver in :mod:`repro.solvers` starts here (the paper's
Algorithms 2 and 3 both begin with "Run preprocessing procedure").
The pipeline preserves at least one optimal solution (Observations
3.1–3.4), so the k = 2 solver remains exact after it.
"""

from __future__ import annotations

import math
import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.costs import CostModel, OverlayCost
from repro.core.coverage import CoverageChecker
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier, Query, classifier_sort_key
from repro.core.solution import Solution
from repro.exceptions import UncoverableQueryError
from repro.preprocess.decompose import partition_queries
from repro.preprocess.dominated import DominatedPruner
from repro.preprocess.k2_prune import prune_k2_singletons
from repro.preprocess.report import PreprocessReport

ALL_STEPS: Tuple[int, ...] = (1, 2, 3, 4)


class _InstanceCost(CostModel):
    """Adapter exposing ``MC3Instance.weight`` (which honours the
    instance-level classifier length cap) as a cost model.

    Weights are memoised: lazy models (hash costs) pay a digest per
    lookup and preprocessing queries the same classifiers many times.
    """

    def __init__(self, instance: MC3Instance):
        self._instance = instance
        self._cache: Dict[Classifier, float] = {}

    def cost(self, clf: Classifier) -> float:
        cached = self._cache.get(clf)
        if cached is None:
            cached = self._instance.weight(clf)
            self._cache[clf] = cached
        return cached

    def content_token(self):
        # Memoisation never changes pricing, so the adapter is exactly
        # as content-addressable as the instance it wraps.
        return self._instance.cost_content_token()


class PreprocessResult:
    """Outcome of running Algorithm 1 on an instance."""

    def __init__(
        self,
        instance: MC3Instance,
        forced: FrozenSet[Classifier],
        overlay: OverlayCost,
        components: List[MC3Instance],
        report: PreprocessReport,
    ):
        self.instance = instance
        self.forced = forced
        self.overlay = overlay
        self.components = components
        self.report = report
        # Sorted accumulation: float addition is order-sensitive, and
        # ``forced`` is a set — summing in hash order would make the
        # reported base cost depend on the interpreter's hash seed.
        self.base_cost = sum(
            instance.weight(clf) for clf in sorted(forced, key=classifier_sort_key)
        )

    @property
    def fully_covered(self) -> bool:
        """Whether preprocessing alone covered the entire query load."""
        return not self.components

    def finalize(self, residual_classifiers: Iterable[Classifier] = ()) -> Solution:
        """Combine the forced selections with a residual solution into a
        full solution priced against the *original* instance."""
        union = set(self.forced)
        union.update(residual_classifiers)
        return Solution.from_instance(union, self.instance)


def preprocess(
    instance: MC3Instance,
    steps: Sequence[int] = ALL_STEPS,
) -> PreprocessResult:
    """Run (a subset of) Algorithm 1.

    ``steps`` selects which pruning steps run — the ablation benchmarks
    disable them individually.  Step 4 runs only on residual components
    whose queries all have length exactly 2 (its precondition).
    """
    started = time.perf_counter()
    step_set = set(steps)
    unknown = step_set - set(ALL_STEPS)
    if unknown:
        raise ValueError(f"unknown preprocessing steps: {sorted(unknown)}")

    report = PreprocessReport(steps_run=tuple(sorted(step_set)))
    overlay = OverlayCost(_InstanceCost(instance))
    forced: Dict[Classifier, None] = {}  # insertion-ordered set

    def select(clf: Classifier) -> None:
        overlay.select(clf)
        forced.setdefault(clf, None)

    # ------------------------------------------------------------------
    # Step 1: singleton queries and zero-weight classifiers.
    # ------------------------------------------------------------------
    if 1 in step_set:
        for q in instance.queries:
            if len(q) == 1:
                if not math.isfinite(instance.weight(q)):
                    raise UncoverableQueryError(q)
                select(q)
                report.singleton_queries_selected += 1
        scan_zero = _may_have_zero_weights(instance)
        if scan_zero:
            seen: Set[Classifier] = set()
            for q in instance.queries:
                for clf in instance.candidates(q):
                    if clf not in seen:
                        seen.add(clf)
                        if instance.weight(clf) == 0:
                            select(clf)
                            report.zero_weight_selected += 1

    checker = CoverageChecker(instance.queries)
    uncovered = checker.uncovered_queries(forced) if forced else list(instance.queries)
    report.queries_covered_step1 = instance.n - len(uncovered)

    # ------------------------------------------------------------------
    # Step 2: decomposition into property-disjoint components.
    # ------------------------------------------------------------------
    if 2 in step_set:
        groups = partition_queries(uncovered) if uncovered else []
    else:
        groups = [list(uncovered)] if uncovered else []
    report.num_components = len(groups)

    # ------------------------------------------------------------------
    # Steps 3 and 4, per component.
    # ------------------------------------------------------------------
    for group in groups:
        if 3 in step_set:
            pruner = DominatedPruner(group, overlay, instance.max_classifier_length)
            removed_count, forced_now = pruner.run(group)
            report.classifiers_removed_step3 += removed_count
            report.forced_covers_step3 += len(forced_now)
            for clf in forced_now:
                forced.setdefault(clf, None)
        if 4 in step_set and group and all(len(q) == 2 for q in group):
            removed_singletons, forced_pairs = prune_k2_singletons(group, overlay)
            report.singletons_removed_step4 += len(removed_singletons)
            for clf in forced_pairs:
                forced.setdefault(clf, None)

    # ------------------------------------------------------------------
    # Residual components: queries still uncovered after all selections.
    # ------------------------------------------------------------------
    final_uncovered = checker.uncovered_queries(forced) if forced else uncovered
    report.queries_covered_step34 = len(uncovered) - len(final_uncovered)

    components: List[MC3Instance] = []
    residual_groups = (
        partition_queries(final_uncovered) if 2 in step_set else (
            [final_uncovered] if final_uncovered else []
        )
    )
    for index, group in enumerate(residual_groups):
        if not group:
            continue
        components.append(
            MC3Instance(
                group,
                overlay,
                max_classifier_length=instance.max_classifier_length,
                name=f"{instance.name}#c{index}" if instance.name else f"component{index}",
            )
        )

    report.elapsed_seconds = time.perf_counter() - started
    return PreprocessResult(
        instance,
        frozenset(forced),
        overlay,
        components,
        report,
    )


def _may_have_zero_weights(instance: MC3Instance) -> bool:
    """Skip the zero-weight scan when the cost model provably has none.

    Lazy models used by the large synthetic loads draw costs from
    ``[1, 50]``; scanning millions of candidates for zeros would be pure
    waste there.
    """
    model = instance.cost
    low = getattr(model, "low", None)
    if low is not None and low > 0:
        return False
    value = getattr(model, "value", None)
    if value is not None and value > 0:
        return False
    return True
