"""Preprocessing step 2 (Observation 3.2): decomposition into
property-disjoint sub-instances.

Conceptually: build a graph whose nodes are properties with a path over
each query's properties (Algorithm 1, line 4); connected components
then induce a partition of the queries such that distinct parts share
no property, and the optimum of the whole instance is the union of the
parts' optima.

The implementation interns properties to dense integer ids and runs
union-find with path halving instead of materialising the graph — the
components are identical (a query's path connects exactly its
properties), but the pass allocates no adjacency lists and does no
string-keyed BFS, which matters on the 100k-query synthetic loads where
decomposition runs before every solve.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.properties import Query


def partition_queries(queries: Sequence[Query]) -> List[List[Query]]:
    """Partition queries into property-disjoint groups.

    Deterministic: groups are ordered by the first query that touches
    them, queries keep their input order within a group.
    """
    index: Dict[str, int] = {}
    parent: List[int] = []

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]  # path halving
            node = parent[node]
        return node

    for q in queries:
        anchor = -1
        for prop in q:
            node = index.get(prop)
            if node is None:
                node = len(parent)
                index[prop] = node
                parent.append(node)
            root = find(node)
            if anchor < 0:
                anchor = root
            elif root != anchor:
                # Union by attaching to the query's anchor root; tree
                # depth stays bounded via path halving in find().
                parent[root] = anchor

    groups: Dict[int, List[Query]] = {}
    order: List[int] = []
    for q in queries:
        # All properties of a query share one root by construction.
        root = find(index[next(iter(q))])
        if root not in groups:
            groups[root] = []
            order.append(root)
        groups[root].append(q)
    return [groups[root] for root in order]
