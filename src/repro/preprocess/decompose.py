"""Preprocessing step 2 (Observation 3.2): decomposition into
property-disjoint sub-instances.

Build a graph whose nodes are properties, adding a path over each
query's properties (Algorithm 1, line 4); BFS connected components then
induce a partition of the queries such that distinct parts share no
property, and the optimum of the whole instance is the union of the
parts' optima.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Sequence

from repro.core.properties import Query
from repro.graph import UndirectedGraph


def partition_queries(queries: Sequence[Query]) -> List[List[Query]]:
    """Partition queries into property-disjoint groups.

    Deterministic: groups are ordered by the first query that touches
    them, queries keep their input order within a group.
    """
    graph = UndirectedGraph()
    for q in queries:
        graph.add_path(sorted(q))
    components = graph.components()
    component_of: Dict[Hashable, int] = {}
    for index, component in enumerate(components):
        for prop in component:
            component_of[prop] = index

    groups: Dict[int, List[Query]] = {}
    order: List[int] = []
    for q in queries:
        # All properties of a query are in one component by construction.
        component_index = component_of[next(iter(q))]
        if component_index not in groups:
            groups[component_index] = []
            order.append(component_index)
        groups[component_index].append(q)
    return [groups[index] for index in order]
