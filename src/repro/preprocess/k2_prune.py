"""Preprocessing step 4 (Observation 3.4), k = 2 only: eliminate
singleton classifiers dominated by the pair classifiers around them.

For a singleton classifier ``X``, let ``S_X`` be every available length-2
classifier containing ``x``.  If ``W(S_X) ≤ W(X)``, some optimal solution
takes all of ``S_X`` instead of ``X`` (each pair fully covers its query,
while ``X`` still needs a partner per query), so we select ``S_X`` and
remove ``X``.  Selections zero weights, which can flip the condition for
neighbouring singletons — the chain reaction of Algorithm 1, line 13.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.costs import OverlayCost
from repro.core.properties import Classifier, Query


def prune_k2_singletons(
    queries: Sequence[Query],
    overlay: OverlayCost,
) -> Tuple[Set[Classifier], List[Classifier]]:
    """Run step 4 over a residual component whose queries all have length 2.

    Returns ``(removed singletons, newly selected pair classifiers)``.
    Queries of other lengths cause a ``ValueError`` — the caller gates on
    ``k == 2``.
    """
    for q in queries:
        if len(q) != 2:
            raise ValueError("step 4 applies only to components with all queries of length 2")

    # Pair classifiers around each property (only those that are actual
    # queries are in C_Q for k = 2).
    pairs_of: Dict[str, List[Classifier]] = {}
    for q in queries:
        pair = frozenset(q)
        for prop in q:
            pairs_of.setdefault(prop, []).append(pair)

    removed: Set[Classifier] = set()
    forced: List[Classifier] = []
    # Work-list of properties to (re)check.
    pending: List[str] = sorted(pairs_of)
    pending_set = set(pending)

    while pending:
        prop = pending.pop()
        pending_set.discard(prop)
        singleton = frozenset((prop,))
        if singleton in removed:
            continue
        weight_singleton = overlay.cost(singleton)
        if not math.isfinite(weight_singleton):
            continue
        neighbourhood = [
            pair for pair in pairs_of[prop] if math.isfinite(overlay.cost(pair))
        ]
        if len(neighbourhood) < len(pairs_of[prop]):
            # Some query around x has no available pair classifier, so X may
            # be irreplaceable; Observation 3.4 requires the full set S_X.
            continue
        total = sum(overlay.cost(pair) for pair in neighbourhood)
        if total <= weight_singleton:
            overlay.remove(singleton)
            removed.add(singleton)
            for pair in neighbourhood:
                if overlay.cost(pair) > 0:
                    overlay.select(pair)
                    forced.append(pair)
                # Re-check the partner property of every selected pair.
                for other in pair:
                    if other != prop and other not in pending_set:
                        pending.append(other)
                        pending_set.add(other)

    return removed, forced
