"""Preprocessing (Algorithm 1): the four optimality-preserving pruning
steps every MC³ solver starts with."""

from repro.preprocess.decompose import partition_queries
from repro.preprocess.dominated import DominatedPruner
from repro.preprocess.k2_prune import prune_k2_singletons
from repro.preprocess.pipeline import ALL_STEPS, PreprocessResult, preprocess
from repro.preprocess.report import PreprocessReport

__all__ = [
    "ALL_STEPS",
    "DominatedPruner",
    "PreprocessReport",
    "PreprocessResult",
    "partition_queries",
    "preprocess",
    "prune_k2_singletons",
]
