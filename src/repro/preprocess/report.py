"""Bookkeeping for the preprocessing pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PreprocessReport:
    """Counters describing what Algorithm 1 did to an instance.

    The experiment harness uses these to report the preprocessing effect
    (Figures 3c, 3e, 3f measure its impact on runtime and cost).
    """

    singleton_queries_selected: int = 0
    zero_weight_selected: int = 0
    queries_covered_step1: int = 0
    num_components: int = 0
    classifiers_removed_step3: int = 0
    forced_covers_step3: int = 0
    singletons_removed_step4: int = 0
    queries_covered_step34: int = 0
    elapsed_seconds: float = 0.0
    steps_run: tuple = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "singleton_queries_selected": self.singleton_queries_selected,
            "zero_weight_selected": self.zero_weight_selected,
            "queries_covered_step1": self.queries_covered_step1,
            "num_components": self.num_components,
            "classifiers_removed_step3": self.classifiers_removed_step3,
            "forced_covers_step3": self.forced_covers_step3,
            "singletons_removed_step4": self.singletons_removed_step4,
            "queries_covered_step34": self.queries_covered_step34,
            "elapsed_seconds": self.elapsed_seconds,
            "steps_run": list(self.steps_run),
        }
