"""JSON-lines wire protocol and typed errors for the planner service.

One request per line, one reply per line; payloads are canonical JSON
(sorted keys) so replies are byte-stable for a given content.  The
protocol is deliberately tiny — the service's value is in the daemon's
robustness machinery, not in a rich RPC surface.

Requests::

    {"op": "plan",  "id": 7, "queries": [["p1","p2"], "p3 p4"],
     "deadline_seconds": 2.5}          # deadline optional
    {"op": "stats", "id": 8}
    {"op": "ping",  "id": 9}
    {"op": "drain", "id": 10}          # admin: begin graceful drain

Replies::

    {"id": 7, "ok": true,  "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "queue-full", "message": "..."}}

Every failure reply carries one of :data:`ERROR_CODES`; clients raise
the matching :class:`PlannerServiceError` subclass so callers can catch
overload (``queue-full``), deadline misses, and shutdown races as
distinct types — the "typed errors, never hangs" contract.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ReproError

#: Wire format version, echoed in stats replies.
PROTOCOL_VERSION = 1

#: Request operations the daemon accepts.
REQUEST_OPS = ("plan", "stats", "ping", "drain")

#: Failure codes a reply may carry.
ERROR_CODES = (
    "bad-request",
    "queue-full",
    "deadline-exceeded",
    "shutting-down",
    "internal",
)


class PlannerServiceError(ReproError):
    """Base of every typed service failure; ``code`` is the wire code."""

    code = "internal"


class BadRequestError(PlannerServiceError):
    """Malformed request line, unknown op, or invalid payload field."""

    code = "bad-request"


class QueueFullError(PlannerServiceError):
    """Load shed: the admission queue is at capacity."""

    code = "queue-full"


class DeadlineExceededError(PlannerServiceError):
    """The request's deadline passed before a reply was produced."""

    code = "deadline-exceeded"


class ShuttingDownError(PlannerServiceError):
    """The daemon is draining and admits no new work."""

    code = "shutting-down"


class InternalServiceError(PlannerServiceError):
    """An unexpected failure inside the daemon (bug surface, not policy)."""

    code = "internal"


_ERROR_TYPES = {
    cls.code: cls
    for cls in (
        BadRequestError,
        QueueFullError,
        DeadlineExceededError,
        ShuttingDownError,
        InternalServiceError,
    )
}


def error_for(code: str, message: str) -> PlannerServiceError:
    """The typed exception for a wire failure code (unknown → internal)."""
    return _ERROR_TYPES.get(code, InternalServiceError)(message)


def encode_message(obj: Dict[str, object]) -> bytes:
    """One protocol message to its wire line (canonical JSON + LF)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"


def decode_message(line: bytes) -> Dict[str, object]:
    """One wire line back to a message dict.

    Raises :class:`BadRequestError` on undecodable bytes — the caller
    (daemon or client) converts that into its side's failure path.
    """
    try:
        obj = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise BadRequestError(f"undecodable message line: {exc}") from exc
    if not isinstance(obj, dict):
        raise BadRequestError("message must be a JSON object")
    return obj


def ok_reply(request_id: object, result: Dict[str, object]) -> Dict[str, object]:
    return {"id": request_id, "ok": True, "result": result}


def error_reply(
    request_id: object, code: str, message: str
) -> Dict[str, object]:
    if code not in ERROR_CODES:
        code = "internal"
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}


def is_error_reply(reply: Dict[str, object]) -> bool:
    return not reply.get("ok", False)


def raise_error_reply(reply: Dict[str, object]) -> Dict[str, object]:
    """Return the reply's result, raising the typed error on failure."""
    if reply.get("ok", False):
        result = reply.get("result")
        return result if isinstance(result, dict) else {}
    error = reply.get("error")
    if not isinstance(error, dict):
        raise InternalServiceError("malformed error reply (no error object)")
    raise error_for(
        str(error.get("code", "internal")), str(error.get("message", ""))
    )


def parse_request(obj: Dict[str, object]) -> Tuple[str, object]:
    """Validate the envelope; returns ``(op, request_id)``."""
    op = obj.get("op")
    if op not in REQUEST_OPS:
        known = ", ".join(REQUEST_OPS)
        raise BadRequestError(f"unknown op {op!r} (known: {known})")
    return op, obj.get("id")


def parse_plan_payload(
    obj: Dict[str, object],
) -> Tuple[List[object], Optional[float]]:
    """Extract and validate a plan request's queries and deadline.

    Query specs pass through untouched (strings or property lists —
    :func:`repro.core.properties.query` canonicalizes them at apply
    time); only their container shape is validated here.
    """
    queries = obj.get("queries")
    if not isinstance(queries, list) or not queries:
        raise BadRequestError("plan request needs a non-empty 'queries' list")
    for spec in queries:
        if isinstance(spec, str):
            continue
        if isinstance(spec, list) and all(isinstance(p, str) for p in spec):
            continue
        raise BadRequestError(
            "each query must be a string or a list of property strings"
        )
    deadline = obj.get("deadline_seconds")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise BadRequestError("deadline_seconds must be a positive number")
        deadline = float(deadline)
    return list(queries), deadline
