"""Clients for the planner daemon.

Two front doors:

* :class:`~repro.service.daemon.PlannerClient` (re-exported here) — the
  in-process async client tests use; it shares the daemon's
  ``handle_request`` path so every admission/deadline/shedding behavior
  applies, minus the socket.
* :class:`SocketPlannerClient` — a small **synchronous** JSON-lines
  client over a unix socket or TCP, used by the chaos drill and the CLI
  to talk to a daemon in another process.  Synchronous on purpose: the
  drill wants simple blocking semantics ("this recv raised — the daemon
  is dead") without an event loop of its own.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional, Sequence

from repro.service import protocol
from repro.service.daemon import PlannerClient

__all__ = ["PlannerClient", "SocketPlannerClient"]


class SocketPlannerClient:
    """Blocking JSON-lines client for an out-of-process daemon.

    A connection error mid-request surfaces as the usual ``OSError``
    family — deliberately not wrapped, because the chaos drill's whole
    point is distinguishing "daemon replied with a typed error" from
    "daemon vanished".
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 30.0,
    ):
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        elif port is not None:
            self._sock = socket.create_connection(
                (host or "127.0.0.1", port), timeout=timeout
            )
        else:
            raise protocol.BadRequestError(
                "SocketPlannerClient needs a socket_path or a port"
            )
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketPlannerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def request(self, obj: Dict[str, object]) -> Dict[str, object]:
        """Send one request, block for its reply, raise typed errors."""
        self._sock.sendall(protocol.encode_message(obj))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return protocol.raise_error_reply(protocol.decode_message(line))

    def plan(
        self,
        queries: Sequence[object],
        deadline_seconds: Optional[float] = None,
    ) -> Dict[str, object]:
        obj: Dict[str, object] = {
            "op": "plan",
            "id": self._request_id(),
            "queries": [
                spec if isinstance(spec, str) else sorted(spec)
                for spec in queries
            ],
        }
        if deadline_seconds is not None:
            obj["deadline_seconds"] = deadline_seconds
        return self.request(obj)

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats", "id": self._request_id()})

    def ping(self) -> Dict[str, object]:
        return self.request({"op": "ping", "id": self._request_id()})

    def drain(self) -> Dict[str, object]:
        return self.request({"op": "drain", "id": self._request_id()})
