"""Per-rung circuit breakers layered on the resilience fallback chains.

A fallback chain already survives a broken rung — but it survives it
*every time*, burning the rung's full retry/backoff budget on every
component while the rung keeps failing.  A circuit breaker remembers:
after ``threshold`` consecutive failures the rung's circuit opens and
subsequent attempts skip it instantly (the chain advances to the next
rung with a synthesized ``"breaker-open"`` failure, spending no solve
time).

Recovery is probed deterministically: while a circuit is open, every
``probe_interval``-th skipped attempt is let through as a half-open
probe.  A successful probe closes the circuit; a failed probe re-opens
it and restarts the skip count.  The schedule is counter-based — *not*
wall-clock-based — so a replayed workload drives the breaker through
the identical state sequence regardless of timing (the determinism
contract the rest of the engine lives by).

State machine per rung::

    CLOSED --[threshold consecutive failures]--> OPEN
    OPEN   --[every probe_interval-th attempt]--> HALF-OPEN (probe runs)
    HALF-OPEN --[probe succeeds]--> CLOSED
    HALF-OPEN --[probe fails]-----> OPEN (skip count restarts)

The engine talks to a :class:`BreakerBoard` through two duck-typed
methods (``allow(rung_name)`` / ``record(rung_name, ok)``) on
:attr:`repro.engine.resilience.ResiliencePolicy.breakers`, so the
engine layer never imports this module.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.exceptions import SolverError

#: Reported breaker states.
BREAKER_STATES = ("closed", "open", "half-open")


class CircuitBreaker:
    """Failure-counting breaker for one rung.  Not thread-safe on its
    own — :class:`BreakerBoard` serializes access."""

    __slots__ = (
        "threshold",
        "probe_interval",
        "_open",
        "_probing",
        "consecutive_failures",
        "skip_count",
        "trips",
        "probes",
        "successes",
        "failures",
        "skips",
    )

    def __init__(self, threshold: int = 3, probe_interval: int = 4):
        if threshold < 1:
            raise SolverError("breaker threshold must be >= 1")
        if probe_interval < 1:
            raise SolverError("breaker probe_interval must be >= 1")
        self.threshold = threshold
        self.probe_interval = probe_interval
        self._open = False
        self._probing = False
        self.consecutive_failures = 0
        self.skip_count = 0
        self.trips = 0
        self.probes = 0
        self.successes = 0
        self.failures = 0
        self.skips = 0

    @property
    def state(self) -> str:
        if not self._open:
            return "closed"
        return "half-open" if self._probing else "open"

    def allow(self) -> bool:
        """May the next attempt of this rung run?

        Closed: always.  Open: skipped, except that every
        ``probe_interval``-th skipped attempt runs as the half-open
        probe.  Deterministic: depends only on the call sequence.
        """
        if not self._open:
            return True
        if self._probing:
            # A probe is already in flight (e.g. another component's
            # attempt); don't pile more attempts onto a suspect rung.
            self.skips += 1
            return False
        self.skip_count += 1
        if self.skip_count % self.probe_interval == 0:
            self._probing = True
            self.probes += 1
            return True
        self.skips += 1
        return False

    def record(self, ok: bool) -> None:
        """Feed one attempt outcome back into the state machine."""
        if ok:
            self.successes += 1
        else:
            self.failures += 1
        if self._open:
            if not self._probing:
                # Outcome of an attempt admitted before the trip —
                # stale evidence; the probe schedule decides recovery.
                return
            self._probing = False
            if ok:
                self._open = False
                self.consecutive_failures = 0
                self.skip_count = 0
            else:
                self.skip_count = 0  # restart the probe countdown
            return
        if ok:
            self.consecutive_failures = 0
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            self._open = True
            self._probing = False
            self.trips += 1
            self.skip_count = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "threshold": self.threshold,
            "probe_interval": self.probe_interval,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "probes": self.probes,
            "skips": self.skips,
            "successes": self.successes,
            "failures": self.failures,
        }


class BreakerBoard:
    """Thread-safe registry of one :class:`CircuitBreaker` per rung name.

    This is the object handed to
    :attr:`~repro.engine.resilience.ResiliencePolicy.breakers`; it
    outlives individual engine runs, which is the whole point — rung
    health is *daemon* state, accumulated across requests.
    """

    def __init__(self, threshold: int = 3, probe_interval: int = 4):
        self.threshold = threshold
        self.probe_interval = probe_interval
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def _breaker(self, rung_name: str) -> CircuitBreaker:
        breaker = self._breakers.get(rung_name)
        if breaker is None:
            breaker = CircuitBreaker(self.threshold, self.probe_interval)
            self._breakers[rung_name] = breaker
        return breaker

    def allow(self, rung_name: str) -> bool:
        with self._lock:
            return self._breaker(rung_name).allow()

    def record(self, rung_name: str, ok: bool) -> None:
        with self._lock:
            self._breaker(rung_name).record(ok)

    def states(self) -> Dict[str, Dict[str, object]]:
        """Per-rung breaker snapshots, rung names sorted."""
        with self._lock:
            return {
                name: self._breakers[name].as_dict()
                for name in sorted(self._breakers)
            }

    def reset(self) -> None:
        with self._lock:
            self._breakers.clear()
