"""Append-only, checksummed workload journal for the planner daemon.

The daemon's durable state is *which batches were admitted*, in order —
nothing else.  Solver outputs are a deterministic function of the
admitted sequence (see :meth:`repro.extensions.incremental.IncrementalPlanner.add_batch`),
so a crashed daemon recovers by replaying the journal through a fresh
planner and lands in bit-identical workload state.

Record format — one line per admitted batch::

    <canonical-json-payload> TAB <blake2b-hex-checksum> LF

The payload carries a format version, the record's sequence number, the
batch's queries (each query's properties sorted; batch arrival order
preserved — arrival order is planner state), and the effective solve
budget resolved at admission time (so replay re-solves with the same
knobs the live daemon used, not with budgets re-derived from a clock
that has since moved).  The checksum covers the payload bytes exactly.

Recovery rules (deterministic by construction):

* records are read in file order; each must end in a newline, carry a
  matching checksum, the expected format version, and the next expected
  sequence number;
* the first record that fails any check ends recovery — it and
  everything after it are dropped, and the writer truncates the file
  back to the last valid byte before appending again;
* a clean file recovers completely; an empty or missing file recovers
  to the empty sequence.

``fsync`` is on by default: :meth:`WorkloadJournal.append_batch` returns
only after the record is flushed to the OS *and* fdatasync'd, so an
admitted batch survives a ``kill -9`` arriving immediately afterwards.
The wall-clock timestamp stored per record is operator forensics only —
replay never reads it.
"""

from __future__ import annotations

import hashlib
import json
import os
import time  # reprolint: ignore[RPL102] journal-timestamp seam: record ts is forensic metadata, never read by replay
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.exceptions import ReproError

#: Bumped whenever the payload layout changes; recovery stops at a
#: foreign version instead of guessing.
JOURNAL_VERSION = 1

#: Hex digest length of the per-record checksum (blake2b, 8 bytes).
_CHECKSUM_CHARS = 16


class JournalError(ReproError):
    """The journal file cannot be opened or written."""


class JournalRecord(NamedTuple):
    """One admitted batch, as recovered from (or written to) disk."""

    seq: int
    #: Queries in batch arrival order; each query's properties sorted.
    queries: Tuple[Tuple[str, ...], ...]
    #: Effective per-component solve budget resolved at admission
    #: (``None`` = unbudgeted), replayed verbatim on recovery.
    budget_seconds: Optional[float]


class RecoveredLog(NamedTuple):
    """Outcome of scanning a journal file."""

    records: Tuple[JournalRecord, ...]
    #: File prefix (bytes) covered by valid records; the writer
    #: truncates to this offset before appending.
    valid_bytes: int
    #: Trailing entries dropped by the checksum/sequence checks.
    dropped_entries: int
    dropped_bytes: int


def _checksum(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


def encode_record(
    seq: int,
    queries: Sequence[Iterable[str]],
    budget_seconds: Optional[float],
    timestamp: Optional[float] = None,
) -> bytes:
    """Serialize one record to its on-disk line (checksum included)."""
    payload_obj = {
        "v": JOURNAL_VERSION,
        "seq": seq,
        "queries": [sorted(q) for q in queries],
        "budget": budget_seconds,
        "ts": timestamp,
    }
    payload = json.dumps(payload_obj, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return payload + b"\t" + _checksum(payload).encode("ascii") + b"\n"


def _decode_line(line: bytes, expected_seq: int) -> Optional[JournalRecord]:
    """One line back to a record; ``None`` on any integrity failure."""
    if not line.endswith(b"\n"):
        return None  # truncated tail: the write never completed
    body = line[:-1]
    payload, sep, checksum = body.rpartition(b"\t")
    if not sep or len(checksum) != _CHECKSUM_CHARS:
        return None
    if _checksum(payload) != checksum.decode("ascii", "replace"):
        return None
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(obj, dict) or obj.get("v") != JOURNAL_VERSION:
        return None
    if obj.get("seq") != expected_seq:
        return None
    raw_queries = obj.get("queries")
    if not isinstance(raw_queries, list):
        return None
    queries: List[Tuple[str, ...]] = []
    for raw in raw_queries:
        if not isinstance(raw, list) or not all(isinstance(p, str) for p in raw):
            return None
        queries.append(tuple(raw))
    budget = obj.get("budget")
    if budget is not None and not isinstance(budget, (int, float)):
        return None
    return JournalRecord(
        seq=expected_seq,
        queries=tuple(queries),
        budget_seconds=float(budget) if budget is not None else None,
    )


def read_journal(path: str) -> RecoveredLog:
    """Scan ``path`` and return every valid leading record.

    Never raises on damaged content: a corrupt or truncated tail is
    dropped deterministically (first bad record ends recovery), and a
    missing file recovers to the empty log.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return RecoveredLog((), 0, 0, 0)
    records: List[JournalRecord] = []
    offset = 0
    while offset < len(data):
        end = data.find(b"\n", offset)
        line = data[offset:] if end < 0 else data[offset : end + 1]
        record = _decode_line(line, expected_seq=len(records))
        if record is None:
            break
        records.append(record)
        offset += len(line)
    dropped_bytes = len(data) - offset
    dropped_entries = data[offset:].count(b"\n")
    if dropped_bytes and not data.endswith(b"\n"):
        dropped_entries += 1  # the unterminated tail fragment
    return RecoveredLog(tuple(records), offset, dropped_entries, dropped_bytes)


class WorkloadJournal:
    """Writer half: recover, truncate the bad tail, then append-only.

    Opening the journal performs recovery immediately — the recovered
    records are exposed as :attr:`recovered` for the daemon to replay —
    and truncates the file to the last valid byte so a damaged tail can
    never shadow future appends.
    """

    def __init__(self, path: str, fsync: bool = True):
        self.path = os.path.abspath(os.path.expanduser(path))
        self.fsync = fsync
        self.recovered = read_journal(self.path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        try:
            handle = open(self.path, "ab")
            if handle.tell() != self.recovered.valid_bytes:
                handle.truncate(self.recovered.valid_bytes)
                handle.seek(self.recovered.valid_bytes)
        except OSError as exc:
            raise JournalError(f"cannot open journal {self.path!r}: {exc}") from exc
        self._handle = handle
        self._next_seq = len(self.recovered.records)
        self._appended = 0
        self._closed = False

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def append_batch(
        self,
        queries: Sequence[Iterable[str]],
        budget_seconds: Optional[float] = None,
    ) -> int:
        """Durably record one admitted batch; returns its sequence number.

        The record is on disk (written, flushed, fdatasync'd when
        ``fsync``) before this method returns — the write-ahead property
        the recovery contract depends on.
        """
        if self._closed:
            raise JournalError("journal is closed")
        seq = self._next_seq
        timestamp = time.time()  # reprolint: ignore[RPL102] journal-timestamp seam: forensic metadata only
        line = encode_record(seq, queries, budget_seconds, timestamp)
        try:
            self._handle.write(line)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        except OSError as exc:
            raise JournalError(f"journal append failed: {exc}") from exc
        self._next_seq = seq + 1
        self._appended += 1
        return seq

    def stats(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "next_seq": self._next_seq,
            "appended": self._appended,
            "recovered_entries": len(self.recovered.records),
            "dropped_entries": self.recovered.dropped_entries,
            "dropped_bytes": self.recovered.dropped_bytes,
            "fsync": self.fsync,
        }

    def flush(self) -> None:
        if self._closed:
            return
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "WorkloadJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
