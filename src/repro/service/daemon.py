"""The planner daemon: an asyncio service around the incremental planner.

Request lifecycle::

    client ──JSON line──▶ admission (bounded queue; full ⇒ queue-full)
                              │
                              ▼ worker task (single consumer)
             drain a window ≤ batch_window, coalesce same-fingerprint
             batches, derive the group budget from the tightest live
             deadline
                              │
                              ▼ executor thread (sync)
             journal.append_batch (write-ahead, fsync'd)
             planner.add_batch(…, resilience=deadline-budgeted policy)
                              │
                              ▼ event loop
             resolve every member's future ⇒ replies written

Robustness properties, each with its enforcement point:

* **never hangs** — every request resolves to a reply or a typed error:
  admission is ``put_nowait`` (full ⇒ ``queue-full``), deadlines are an
  ``asyncio.wait_for`` on the reply future (late ⇒
  ``deadline-exceeded``), drain rejects new work (``shutting-down``);
* **crash safety** — the journal append is durably on disk *before*
  the planner mutates (write-ahead), so a ``kill -9`` at any seam
  loses at most un-admitted work; restart replays the journal through
  a fresh planner into bit-identical workload state (compare
  :meth:`~repro.extensions.incremental.IncrementalPlanner.state_digest`);
* **overload isolation** — a persistently failing rung trips its
  circuit breaker (:mod:`repro.service.breaker`) so later requests skip
  it instantly instead of re-burning its retry budget;
* **deadline → budget mapping** — a request's remaining deadline is
  scaled by ``budget_fraction`` (floored at ``min_budget_seconds``)
  into the :class:`~repro.engine.resilience.ResiliencePolicy` per-attempt
  budget, with ``on_error="degrade"`` — so a deadline either holds, or
  the answer degrades to a verified
  :class:`~repro.engine.resilience.PartialSolution`, or the typed error
  fires.  The *resolved* budget is recorded in the journal, so replay
  re-solves with the knobs the live daemon actually used instead of
  re-deriving them from a clock that has since moved.

Replay determinism caveat: a solve that races its wall-clock budget can
land on either side of the boundary, changing which rung answered.
With no (or generous) deadlines the pipeline is deterministic end to
end and recovery equivalence is exact — that regime is what the chaos
drill and CI assert.  Batches that applied but missed their requester's
reply deadline stay applied (at-least-once admission, by design).
"""

from __future__ import annotations

import asyncio
import contextlib
import time  # reprolint: ignore[RPL102] deadline seam: the service's sanctioned clock (see _now)
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.bitspace import component_fingerprint
from repro.core.costs import CostModel
from repro.core.instance import MC3Instance
from repro.core.properties import Query, classifier_sort_key, query as make_query
from repro.engine.cache import resolve_cache
from repro.engine.resilience import PartialSolution, ResiliencePolicy
from repro.exceptions import ReproError
from repro.extensions.incremental import IncrementalPlanner
from repro.preprocess.decompose import partition_queries
from repro.service import protocol
from repro.service.breaker import BreakerBoard
from repro.service.journal import JournalRecord, WorkloadJournal

__all__ = [
    "ServiceConfig",
    "PlannerService",
    "PlannerClient",
    "replay_reference",
]


def _now() -> float:
    """Monotonic clock read — the service's single deadline seam.

    Every wall-clock observation in the daemon flows through here, so
    the reprolint determinism rules have exactly one sanctioned read to
    audit.  The values never reach planner state or the journal except
    as the *resolved* budget, which is sanitized where it is derived.
    """
    return time.monotonic()  # reprolint: ignore[RPL102] deadline seam: single sanctioned clock read


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance (all deterministic knobs)."""

    solver_name: str = "mc3-general"
    solver_kwargs: Dict[str, object] = field(default_factory=dict)
    max_classifier_length: Optional[int] = None
    #: Component-solution cache spec shared by every batch solve — the
    #: warm-cache half of the recovery story: replayed batches re-solve
    #: through the same content-addressed store.
    cache: Optional[object] = "memory"
    #: Admission queue capacity; a full queue sheds load with a typed
    #: ``queue-full`` reply instead of queueing unboundedly.
    queue_depth: int = 64
    #: Max requests drained per worker wake-up (coalescing window).
    batch_window: int = 8
    #: Deadline applied to requests that do not carry their own.
    default_deadline_seconds: Optional[float] = None
    #: Fraction of the remaining deadline granted to each component
    #: solve attempt, floored at ``min_budget_seconds``.
    budget_fraction: float = 0.5
    min_budget_seconds: float = 0.05
    #: Fallback chain appended to the primary solver for every request.
    fallback: Tuple[str, ...] = ("greedy", "query-oriented")
    max_retries: int = 0
    backoff_base_seconds: float = 0.0
    backoff_max_seconds: Optional[float] = 0.5
    breaker_threshold: int = 3
    breaker_probe_interval: int = 4
    #: Journal path (``None`` = volatile daemon, no crash recovery).
    journal_path: Optional[str] = None
    journal_fsync: bool = True


class _LatencyRing:
    """Last-N latency samples with cheap percentile rendering."""

    __slots__ = ("_samples",)

    def __init__(self, maxlen: int = 512):
        self._samples: Deque[float] = deque(maxlen=maxlen)

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)

    def summary(self) -> Dict[str, object]:
        values = sorted(self._samples)
        if not values:
            return {"count": 0}

        def pct(q: float) -> float:
            index = min(len(values) - 1, max(0, int(q * len(values))))
            return values[index] * 1000.0

        return {
            "count": len(values),
            "p50_ms": pct(0.50),
            "p99_ms": pct(0.99),
            "max_ms": values[-1] * 1000.0,
        }


class ServiceStats:
    """Daemon-lifetime counters + per-stage latency rings."""

    STAGES = ("queue_wait", "journal", "solve", "total")

    def __init__(self) -> None:
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.deadline_exceeded = 0
        self.expired_unapplied = 0
        self.coalesced = 0
        self.batches_applied = 0
        self.rings: Dict[str, _LatencyRing] = {
            stage: _LatencyRing() for stage in self.STAGES
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "deadline_exceeded": self.deadline_exceeded,
            "expired_unapplied": self.expired_unapplied,
            "coalesced": self.coalesced,
            "batches_applied": self.batches_applied,
            "latency": {
                stage: self.rings[stage].summary() for stage in self.STAGES
            },
        }


class _Pending:
    """One admitted plan request waiting for its batch to apply."""

    __slots__ = ("request_id", "queries", "deadline", "admitted_at", "future")

    def __init__(
        self,
        request_id: object,
        queries: Tuple[Query, ...],
        deadline: Optional[float],
        admitted_at: float,
        future: "asyncio.Future[Dict[str, object]]",
    ):
        self.request_id = request_id
        self.queries = queries
        self.deadline = deadline
        self.admitted_at = admitted_at
        self.future = future


class PlannerService:
    """The daemon: admission queue, worker loop, journal, breakers.

    Construct, then either drive it in-process (``await start()`` and
    talk through :class:`PlannerClient`) or let
    :meth:`serve_forever` bind a unix/TCP listener and own the signal
    handling.  All solver work runs in a thread executor so the event
    loop keeps admitting, shedding, and answering ``stats`` while a
    batch solves.
    """

    def __init__(
        self,
        cost: CostModel,
        config: Optional[ServiceConfig] = None,
        chaos: Optional[object] = None,
    ):
        self.config = config or ServiceConfig()
        self.cost = cost
        self.chaos = chaos
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            probe_interval=self.config.breaker_probe_interval,
        )
        self.cache = resolve_cache(self.config.cache)
        solver_kwargs = dict(self.config.solver_kwargs)
        self.planner = IncrementalPlanner(
            cost,
            solver_name=self.config.solver_name,
            solver_kwargs=solver_kwargs,
            max_classifier_length=self.config.max_classifier_length,
            cache=self.cache,
        )
        self.journal: Optional[WorkloadJournal] = None
        if self.config.journal_path is not None:
            self.journal = WorkloadJournal(
                self.config.journal_path, fsync=self.config.journal_fsync
            )
        self.stats = ServiceStats()
        self.recovered_batches = 0
        self._seq = 0  # batch counter for journal-less daemons
        self._draining = False
        self._queue: Optional["asyncio.Queue[_Pending]"] = None
        self._worker: Optional["asyncio.Task[None]"] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._started = False

    # ------------------------------------------------------------------
    # Policies and recovery
    # ------------------------------------------------------------------

    def policy_for(self, budget_seconds: Optional[float]) -> ResiliencePolicy:
        """The request-scoped resilience policy for one batch.

        ``on_error="degrade"`` is load-bearing: a blown budget or a
        broken rung yields a verified :class:`PartialSolution` instead
        of an exception, so the daemon's reply path never depends on a
        solver behaving.  Identical construction at admission and at
        replay (the journal records ``budget_seconds``) is what makes
        recovery reproduce live decisions.
        """
        config = self.config
        return ResiliencePolicy(
            timeout_seconds=budget_seconds,
            max_retries=config.max_retries,
            backoff_base_seconds=config.backoff_base_seconds,
            backoff_max_seconds=config.backoff_max_seconds,
            on_error="degrade",
            fallback=config.fallback,
            breakers=self.breakers,
        )

    def recover(self) -> int:
        """Replay the journal's admitted batches into the planner.

        Called once before serving.  Each record re-solves with the
        budget resolved at its original admission, against the same
        breaker board and solution cache a fresh daemon starts with —
        the same inputs the live daemon's apply saw, so the resulting
        workload state is bit-identical (see module caveat).
        """
        if self.journal is None or self.recovered_batches:
            return 0
        records = self.journal.recovered.records
        for record in records:
            self.planner.add_batch(
                list(record.queries),
                solver_overrides={
                    "resilience": self.policy_for(record.budget_seconds)
                },
            )
        self.recovered_batches = len(records)
        self._seq = self.journal.next_seq
        return self.recovered_batches

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        self.recover()
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._worker = asyncio.create_task(self._worker_loop())
        self._started = True

    async def drain(self) -> None:
        """Stop admitting, finish everything already queued, flush."""
        self._draining = True
        if self._queue is not None:
            await self._queue.join()
        if self.journal is not None:
            self.journal.flush()

    async def stop(self) -> None:
        """Graceful shutdown: drain, stop the worker, close listeners."""
        await self.drain()
        # Let connection handlers flush replies resolved by the drain.
        # Scheduling passes, not wall-clock: a reply is tiny, so once
        # the unblocked handler task runs one step the bytes are in the
        # kernel buffer and survive process exit.
        for _ in range(10):
            await asyncio.sleep(0)
        if self._worker is not None:
            self._worker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._worker
            self._worker = None
        for server in self._servers:
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
        self._servers.clear()
        if self.journal is not None:
            self.journal.close()
        self._started = False

    async def serve_forever(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        ready: Optional["asyncio.Event"] = None,
    ) -> None:
        """Bind a listener, serve until SIGTERM/SIGINT, then drain.

        SIGTERM is the graceful-drain contract: stop admitting (new
        plans get ``shutting-down``), finish in-flight batches, flush
        and close the journal, exit.
        """
        import signal as _signal

        await self.start()
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop_event.set)
        if socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=socket_path
            )
        elif port is not None:
            server = await asyncio.start_server(
                self._handle_connection, host or "127.0.0.1", port
            )
        else:
            raise protocol.BadRequestError(
                "serve_forever needs a socket_path or a port"
            )
        self._servers.append(server)
        if ready is not None:
            ready.set()
        await stop_event.wait()
        await self.stop()

    # ------------------------------------------------------------------
    # Request handling (shared by socket handler and in-process client)
    # ------------------------------------------------------------------

    async def handle_request(self, obj: Dict[str, object]) -> Dict[str, object]:
        """One request dict to one reply dict; never raises."""
        try:
            op, request_id = protocol.parse_request(obj)
        except protocol.PlannerServiceError as exc:
            return protocol.error_reply(obj.get("id"), exc.code, str(exc))
        try:
            if op == "ping":
                return protocol.ok_reply(request_id, {"pong": True})
            if op == "stats":
                return protocol.ok_reply(request_id, self.snapshot())
            if op == "drain":
                await self.drain()
                return protocol.ok_reply(request_id, {"drained": True})
            return await self._handle_plan(obj, request_id)
        except protocol.PlannerServiceError as exc:
            return protocol.error_reply(request_id, exc.code, str(exc))
        except Exception as exc:  # the daemon must answer, not die
            return protocol.error_reply(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )

    async def _handle_plan(
        self, obj: Dict[str, object], request_id: object
    ) -> Dict[str, object]:
        specs, deadline_seconds = protocol.parse_plan_payload(obj)
        try:
            queries = tuple(make_query(spec) for spec in specs)
        except (ReproError, TypeError, ValueError) as exc:
            return protocol.error_reply(request_id, "bad-request", str(exc))
        if self._draining or self._queue is None:
            return protocol.error_reply(
                request_id, "shutting-down", "daemon is draining; retry elsewhere"
            )
        if deadline_seconds is None:
            deadline_seconds = self.config.default_deadline_seconds
        admitted_at = _now()
        deadline = (
            admitted_at + deadline_seconds if deadline_seconds is not None else None
        )
        pending = _Pending(
            request_id,
            queries,
            deadline,
            admitted_at,
            asyncio.get_running_loop().create_future(),
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.stats.shed += 1
            return protocol.error_reply(
                request_id,
                "queue-full",
                f"admission queue is full (depth {self.config.queue_depth}); "
                "shedding load",
            )
        self.stats.admitted += 1
        if deadline is None:
            return await pending.future
        try:
            return await asyncio.wait_for(
                asyncio.shield(pending.future),
                timeout=max(0.0, deadline - _now()),
            )
        except asyncio.TimeoutError:
            self.stats.deadline_exceeded += 1
            return protocol.error_reply(
                request_id,
                "deadline-exceeded",
                f"no reply within the {deadline_seconds:.3f}s deadline "
                "(the batch may still apply; admission is at-least-once)",
            )

    def snapshot(self) -> Dict[str, object]:
        """The ``stats`` reply: health, depth, breakers, cache, latency."""
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        cache_stats: Optional[Dict[str, object]] = None
        if self.cache is not None:
            cache_stats = self.cache.stats()
            hits = int(cache_stats.get("hits", 0))
            misses = int(cache_stats.get("misses", 0))
            lookups = hits + misses
            cache_stats["hit_rate"] = (hits / lookups) if lookups else 0.0
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "draining": self._draining,
            "queue_depth": queue_depth,
            "queue_capacity": self.config.queue_depth,
            "requests": self.stats.as_dict(),
            "breakers": self.breakers.states(),
            "cache": cache_stats,
            "journal": self.journal.stats() if self.journal is not None else None,
            "recovered_batches": self.recovered_batches,
            "workload": {
                "batches": len(self.planner.batches),
                "queries": len(self.planner.queries),
                "built_classifiers": len(self.planner.built_classifiers),
                "total_cost": self.planner.total_cost,
                "state_digest": self.planner.state_digest(),
            },
        }

    # ------------------------------------------------------------------
    # Worker: batching, coalescing, journaled apply
    # ------------------------------------------------------------------

    async def _worker_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            window = [first]
            while len(window) < self.config.batch_window:
                try:
                    window.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                if len(window) > 1:
                    groups = await loop.run_in_executor(
                        None, self._coalesce, window
                    )
                else:
                    groups = [window]
                for group in groups:
                    await self._apply_group(loop, group)
            finally:
                for _ in window:
                    self._queue.task_done()

    def _batch_key(self, queries: Tuple[Query, ...]) -> Tuple[str, ...]:
        """Content key for request coalescing.

        The batch decomposes into property-disjoint components exactly
        as the engine will see them; each is hashed with
        :func:`~repro.core.bitspace.component_fingerprint`, so two
        requests coalesce **iff** they denote identical component work.
        Sorted, so query arrival order inside a request does not split
        keys (the representative's order is what gets journaled).
        """
        keys = []
        for group in partition_queries(list(queries)):
            component = MC3Instance(
                group,
                self.cost,
                max_classifier_length=self.config.max_classifier_length,
                name="admission",
            )
            keys.append(
                component_fingerprint(
                    component, solver_token=("service-admission",)
                )
            )
        return tuple(sorted(keys))

    def _coalesce(self, window: List[_Pending]) -> List[List[_Pending]]:
        """Group the drained window by batch fingerprint (order kept)."""
        groups: List[List[_Pending]] = []
        by_key: Dict[Tuple[str, ...], List[_Pending]] = {}
        for pending in window:
            try:
                key = self._batch_key(pending.queries)
            except ReproError:
                # Un-fingerprintable batch (e.g. uncoverable query):
                # solo group; the apply path produces the typed error.
                groups.append([pending])
                continue
            bucket = by_key.get(key)
            if bucket is None:
                bucket = []
                by_key[key] = bucket
                groups.append(bucket)
            bucket.append(pending)
        return groups

    async def _apply_group(
        self, loop: asyncio.AbstractEventLoop, group: List[_Pending]
    ) -> None:
        now = _now()
        live = [p for p in group if p.deadline is None or p.deadline > now]
        if not live:
            # Nobody is waiting anymore: turn the work away un-applied
            # (and un-journaled) instead of planning for the void.
            self.stats.expired_unapplied += len(group)
            for pending in group:
                self._resolve(
                    pending,
                    protocol.error_reply(
                        pending.request_id,
                        "deadline-exceeded",
                        "deadline expired before the batch was applied",
                    ),
                )
            return
        budget: Optional[float] = None
        deadlines = [p.deadline for p in live if p.deadline is not None]
        if deadlines:
            remaining = min(deadlines) - now
            budget = max(  # reprolint: sanitize deadline→budget seam: resolved once, journaled, replayed verbatim
                self.config.min_budget_seconds,
                remaining * self.config.budget_fraction,
            )
        representative = live[0]
        for pending in group:
            self.stats.rings["queue_wait"].record(now - pending.admitted_at)
        self.stats.coalesced += len(group) - 1
        try:
            payload = await loop.run_in_executor(
                None, self._apply_batch, representative.queries, budget
            )
        except protocol.PlannerServiceError as exc:
            self.stats.failed += len(group)
            for pending in group:
                self._resolve(
                    pending,
                    protocol.error_reply(pending.request_id, exc.code, str(exc)),
                )
            return
        except Exception as exc:  # solver/journal bug: reply, keep serving
            self.stats.failed += len(group)
            for pending in group:
                self._resolve(
                    pending,
                    protocol.error_reply(
                        pending.request_id,
                        "internal",
                        f"{type(exc).__name__}: {exc}",
                    ),
                )
            return
        finish = _now()
        for position, pending in enumerate(group):
            self.stats.rings["total"].record(finish - pending.admitted_at)
            reply_payload = dict(payload)
            reply_payload["coalesced"] = position > 0
            self.stats.completed += 1
            self._resolve(
                pending, protocol.ok_reply(pending.request_id, reply_payload)
            )

    def _resolve(self, pending: _Pending, reply: Dict[str, object]) -> None:
        if not pending.future.done():
            pending.future.set_result(reply)

    def _strike(self, seam: str, seq: int) -> None:
        if self.chaos is not None:
            self.chaos.strike(seam, seq)

    def _apply_batch(
        self, queries: Tuple[Query, ...], budget: Optional[float]
    ) -> Dict[str, object]:
        """Journal then apply one batch (runs in the executor thread)."""
        seq = self.journal.next_seq if self.journal is not None else self._seq
        self._strike("pre-journal", seq)
        if self.journal is not None:
            journal_started = _now()
            seq = self.journal.append_batch(queries, budget)
            self.stats.rings["journal"].record(_now() - journal_started)
        self._seq = seq + 1
        self._strike("post-journal", seq)
        solve_started = _now()
        outcome = self.planner.add_batch(
            queries, solver_overrides={"resilience": self.policy_for(budget)}
        )
        self.stats.rings["solve"].record(_now() - solve_started)
        self.stats.batches_applied += 1
        self._strike("post-apply", seq)
        solution = (
            outcome.solver_result.solution
            if outcome.solver_result is not None
            else None
        )
        uncovered = 0
        degraded = False
        if isinstance(solution, PartialSolution):
            uncovered = len(solution.uncovered_queries)
            degraded = bool(
                solution.degraded_components
                or solution.skipped_components
                or solution.failures
            )
        return {
            "seq": seq,
            "batch_index": outcome.batch_index,
            "new_queries": len(outcome.new_queries),
            "new_classifiers": [
                sorted(clf)
                for clf in sorted(outcome.new_classifiers, key=classifier_sort_key)
            ],
            "incremental_cost": outcome.incremental_cost,
            "total_cost": self.planner.total_cost,
            "budget_seconds": budget,
            "degraded": degraded,
            "uncovered_queries": uncovered,
            "state_digest": self.planner.state_digest(),
        }

    # ------------------------------------------------------------------
    # Socket front end
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One JSON-lines connection; requests are served sequentially
        per connection (concurrency = multiple connections), so a
        stalled client stalls only itself."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    obj = protocol.decode_message(line)
                except protocol.BadRequestError as exc:
                    reply = protocol.error_reply(None, "bad-request", str(exc))
                else:
                    reply = await self.handle_request(obj)
                writer.write(protocol.encode_message(reply))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


class PlannerClient:
    """In-process async client — the test harness's front door.

    Talks to a started :class:`PlannerService` through the same
    ``handle_request`` path the socket front end uses (admission,
    coalescing, deadlines, typed errors all apply), minus the wire.
    """

    def __init__(self, service: PlannerService):
        self.service = service
        self._next_id = 0

    def _request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    async def request(self, obj: Dict[str, object]) -> Dict[str, object]:
        reply = await self.service.handle_request(obj)
        return protocol.raise_error_reply(reply)

    async def plan(
        self,
        queries: Sequence[object],
        deadline_seconds: Optional[float] = None,
    ) -> Dict[str, object]:
        obj: Dict[str, object] = {
            "op": "plan",
            "id": self._request_id(),
            "queries": [
                spec if isinstance(spec, str) else sorted(spec)
                for spec in queries
            ],
        }
        if deadline_seconds is not None:
            obj["deadline_seconds"] = deadline_seconds
        return await self.request(obj)

    async def stats(self) -> Dict[str, object]:
        return await self.request({"op": "stats", "id": self._request_id()})

    async def ping(self) -> Dict[str, object]:
        return await self.request({"op": "ping", "id": self._request_id()})

    async def drain(self) -> Dict[str, object]:
        return await self.request({"op": "drain", "id": self._request_id()})


def replay_reference(
    cost: CostModel,
    config: ServiceConfig,
    records: Sequence[JournalRecord],
) -> IncrementalPlanner:
    """The never-crashed reference: a fresh planner fed ``records``.

    Builds a journal-less service with the same configuration (fresh
    breaker board, same cache spec) and applies every admitted batch
    with its recorded budget — exactly what a daemon that never died
    would hold.  Recovery equivalence means a crashed-and-replayed
    daemon's :meth:`~repro.extensions.incremental.IncrementalPlanner.state_digest`
    equals this planner's.
    """
    reference = PlannerService(cost, config=replace(config, journal_path=None))
    for record in records:
        reference.planner.add_batch(
            list(record.queries),
            solver_overrides={
                "resilience": reference.policy_for(record.budget_seconds)
            },
        )
    return reference.planner
