"""The service chaos drill: SIGKILL a live daemon, assert recovery.

Run as a module (``python -m repro.service.drill --seed N``).  The
driver:

1. spawns a daemon subprocess over a unix socket with a
   :class:`~repro.devtools.chaos.ServiceChaos` plan that SIGKILLs it
   at the ``post-journal`` seam of batch ``--kill-seq`` (durably
   admitted, not yet applied — the hardest recovery case);
2. drives seeded plan requests until the connection dies, then asserts
   the daemon really died by SIGKILL (no atexit flush happened);
3. appends a garbage record to the journal tail (simulating a torn
   concurrent write) — recovery must detect the bad checksum and drop
   exactly that tail;
4. computes the never-crashed reference state by replaying the
   journal's valid records through
   :func:`~repro.service.daemon.replay_reference`;
5. restarts the daemon (no chaos) on the same journal and asserts its
   recovered ``state_digest`` is **bit-identical** to the reference;
6. drives two more batches (liveness after recovery), then SIGTERMs
   and asserts a graceful zero exit.

Everything is derived from ``--seed``: the workload (blake2b-generated
query batches — no :mod:`random`, so the drill itself passes the
determinism lint), the cost model (:class:`~repro.core.costs.HashCost`),
and the chaos schedule.  Two different seeds in CI is the regression
net for "recovery happens to work for one workload".
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import time  # reprolint: ignore[RPL102] drill driver: subprocess polling clock, never touches planner state
from typing import List, Optional

from repro.core.costs import HashCost
from repro.service.client import SocketPlannerClient
from repro.service.daemon import PlannerService, ServiceConfig, replay_reference
from repro.service.journal import read_journal

#: Property universe for drill workloads — small enough that batches
#: share properties (exercising overlap/decomposition), large enough
#: that distinct seeds produce genuinely different workloads.
_UNIVERSE = tuple(f"p{i}" for i in range(12))


def drill_cost(seed: int) -> HashCost:
    """The drill's deterministic cost model (shared by all modes)."""
    return HashCost(low=1, high=40, seed=seed)


def drill_config(journal_path: str) -> ServiceConfig:
    """One canonical daemon configuration for serve/replay/reference.

    No deadlines and a zero-backoff single-try chain: the deterministic
    regime where recovery equivalence is exact (see the daemon module
    docstring for the wall-clock caveat this avoids).
    """
    return ServiceConfig(
        journal_path=journal_path,
        default_deadline_seconds=None,
        max_retries=0,
        backoff_base_seconds=0.0,
        queue_depth=16,
        batch_window=4,
    )


def workload_batch(seed: int, index: int, size: int = 3) -> List[List[str]]:
    """Batch ``index`` of the seeded drill workload (hash-generated)."""
    batch: List[List[str]] = []
    for q in range(size):
        digest = hashlib.blake2b(
            f"drill|{seed}|{index}|{q}".encode("utf-8"), digest_size=8
        ).digest()
        width = 1 + digest[0] % 3
        props = sorted(
            {
                _UNIVERSE[digest[1 + j] % len(_UNIVERSE)]
                for j in range(width)
            }
        )
        batch.append(props)
    return batch


# ----------------------------------------------------------------------
# Serve mode (the subprocess the driver kills)
# ----------------------------------------------------------------------


def _serve(socket_path: str, journal_path: str, seed: int, kill_seq: int) -> None:
    import asyncio

    from repro.devtools.chaos import ServiceChaos

    chaos = None
    if kill_seq >= 0:
        chaos = ServiceChaos(seed=seed, plan={("post-journal", kill_seq): "kill"})
    service = PlannerService(
        drill_cost(seed), config=drill_config(journal_path), chaos=chaos
    )
    asyncio.run(service.serve_forever(socket_path=socket_path))


# ----------------------------------------------------------------------
# Driver mode
# ----------------------------------------------------------------------


class DrillFailure(AssertionError):
    """The drill observed a broken recovery contract."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise DrillFailure(message)


def _spawn_daemon(
    socket_path: str, journal_path: str, seed: int, kill_seq: int
) -> "subprocess.Popen[bytes]":
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.drill",
            "--serve",
            "--socket",
            socket_path,
            "--journal",
            journal_path,
            "--seed",
            str(seed),
            "--kill-seq",
            str(kill_seq),
        ]
    )
    deadline = time.monotonic() + 30.0  # reprolint: ignore[RPL102] drill driver: startup-poll deadline
    while not os.path.exists(socket_path):
        if process.poll() is not None:
            raise DrillFailure(
                f"daemon exited during startup (rc={process.returncode})"
            )
        if time.monotonic() > deadline:  # reprolint: ignore[RPL102] drill driver: startup-poll deadline
            process.kill()
            raise DrillFailure("daemon never bound its socket")
        time.sleep(0.02)  # reprolint: ignore[RPL102] drill driver: startup-poll sleep
    return process


def run_drill(seed: int, workdir: str, kill_seq: int = 2, batches: int = 6) -> dict:
    """One full kill/corrupt/recover/verify cycle; returns a summary."""
    socket_path = os.path.join(workdir, f"drill-{seed}.sock")
    journal_path = os.path.join(workdir, f"drill-{seed}.journal")

    # Phase 1: daemon with a scheduled SIGKILL at post-journal of kill_seq.
    process = _spawn_daemon(socket_path, journal_path, seed, kill_seq)
    died_at: Optional[int] = None
    applied = 0
    client = SocketPlannerClient(socket_path=socket_path)
    try:
        for index in range(batches):
            try:
                result = client.plan(workload_batch(seed, index))
            except (OSError, ConnectionError):
                died_at = index
                break
            applied += 1
            _require(
                result["seq"] == index,
                f"batch {index} journaled as seq {result['seq']}",
            )
    finally:
        client.close()
    _require(died_at == kill_seq, f"daemon died at batch {died_at}, expected {kill_seq}")
    process.wait(timeout=30)
    _require(
        process.returncode == -signal.SIGKILL,
        f"daemon exit code {process.returncode}, expected SIGKILL",
    )
    os.unlink(socket_path)

    # Phase 2: damage the tail, then compute the never-crashed reference.
    from repro.devtools.chaos import corrupt_journal_tail

    corrupt_journal_tail(journal_path)
    recovered = read_journal(journal_path)
    _require(
        recovered.dropped_entries >= 1,
        "tail corruption was not detected by journal recovery",
    )
    _require(
        len(recovered.records) == kill_seq + 1,
        f"journal holds {len(recovered.records)} records, expected {kill_seq + 1} "
        "(the killed batch was journaled before the strike)",
    )
    reference = replay_reference(
        drill_cost(seed), drill_config(journal_path), recovered.records
    )
    reference_digest = reference.state_digest()

    # Phase 3: clean restart on the damaged journal; recovery must match.
    process = _spawn_daemon(socket_path, journal_path, seed, kill_seq=-1)
    try:
        with SocketPlannerClient(socket_path=socket_path) as client:
            stats = client.stats()
            _require(
                stats["recovered_batches"] == len(recovered.records),
                f"recovered {stats['recovered_batches']} batches, "
                f"expected {len(recovered.records)}",
            )
            recovered_digest = stats["workload"]["state_digest"]
            _require(
                recovered_digest == reference_digest,
                "recovered state diverged from the never-crashed reference: "
                f"{recovered_digest} != {reference_digest}",
            )
            # Liveness: the recovered daemon keeps planning new batches.
            for index in range(batches, batches + 2):
                result = client.plan(workload_batch(seed, index))
                _require(
                    not result.get("degraded", False),
                    f"post-recovery batch {index} degraded",
                )
            final = client.stats()
    finally:
        # Phase 4: graceful drain on SIGTERM.
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)
    _require(
        process.returncode == 0,
        f"SIGTERM exit code {process.returncode}, expected graceful 0",
    )
    return {
        "seed": seed,
        "killed_at_seq": kill_seq,
        "journaled_records": len(recovered.records),
        "dropped_tail_entries": recovered.dropped_entries,
        "reference_digest": reference_digest,
        "recovered_digest": recovered_digest,
        "final_digest": final["workload"]["state_digest"],
        "final_total_cost": final["workload"]["total_cost"],
        "ok": True,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kill-seq", type=int, default=2)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--workdir", default=None, help="default: a tempdir")
    parser.add_argument("--serve", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--socket", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--journal", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.serve:
        _serve(args.socket, args.journal, args.seed, args.kill_seq)
        return 0

    import tempfile

    if args.workdir is not None:
        summary = run_drill(
            args.seed, args.workdir, kill_seq=args.kill_seq, batches=args.batches
        )
    else:
        with tempfile.TemporaryDirectory(prefix="mc3-drill-") as workdir:
            summary = run_drill(
                args.seed, workdir, kill_seq=args.kill_seq, batches=args.batches
            )
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
