"""Planner-as-a-service: a crash-safe asyncio daemon over the engine.

The service layer wraps :class:`~repro.extensions.incremental.IncrementalPlanner`
with the operational contract a long-lived planner needs:

* :mod:`repro.service.protocol` — JSON-lines wire format and the typed
  error taxonomy (``queue-full``, ``deadline-exceeded``, …);
* :mod:`repro.service.journal` — append-only, fsync'd, checksummed
  write-ahead workload journal and its deterministic tail recovery;
* :mod:`repro.service.breaker` — per-rung circuit breakers with a
  deterministic half-open probe schedule;
* :mod:`repro.service.daemon` — the daemon itself: bounded admission,
  fingerprint-coalesced batching, deadline→budget mapping, graceful
  drain, journaled recovery;
* :mod:`repro.service.drill` — the chaos drill that SIGKILLs a live
  daemon and asserts recovery equivalence (used by CI).

See ``docs/robustness.md`` ("Planner service") for the full contract.
"""

from repro.service.breaker import BreakerBoard, CircuitBreaker
from repro.service.daemon import (
    PlannerClient,
    PlannerService,
    ServiceConfig,
    replay_reference,
)
from repro.service.journal import JournalError, WorkloadJournal, read_journal
from repro.service.protocol import (
    BadRequestError,
    DeadlineExceededError,
    InternalServiceError,
    PlannerServiceError,
    QueueFullError,
    ShuttingDownError,
)

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "PlannerClient",
    "PlannerService",
    "ServiceConfig",
    "replay_reference",
    "JournalError",
    "WorkloadJournal",
    "read_journal",
    "PlannerServiceError",
    "BadRequestError",
    "QueueFullError",
    "DeadlineExceededError",
    "ShuttingDownError",
    "InternalServiceError",
]
