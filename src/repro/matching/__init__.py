"""Bipartite matching substrate (Hopcroft–Karp, König vertex cover)."""

from repro.matching.hopcroft_karp import (
    BipartiteGraph,
    hopcroft_karp,
    konig_vertex_cover,
    maximum_matching_size,
)

__all__ = [
    "BipartiteGraph",
    "hopcroft_karp",
    "konig_vertex_cover",
    "maximum_matching_size",
]
