"""Hopcroft–Karp maximum bipartite matching and König vertex cover.

Backs the *Mixed* baseline of the prior work [Dushkin et al., EDBT 2019]:
with uniform classifier costs and ``k ≤ 2``, the MC³ problem is an
*unweighted* vertex cover on the bipartite reduction graph, which König's
theorem solves exactly via a maximum matching.

Hopcroft–Karp runs in ``O(E √V)``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Set, Tuple

INF = float("inf")


class BipartiteGraph:
    """A bipartite graph with labelled left/right nodes."""

    def __init__(self) -> None:
        self.left: List[Hashable] = []
        self.right: List[Hashable] = []
        self._left_ids: Dict[Hashable, int] = {}
        self._right_ids: Dict[Hashable, int] = {}
        self._adj: List[List[int]] = []  # left id -> right ids

    def add_left(self, label: Hashable) -> int:
        if label in self._left_ids:
            return self._left_ids[label]
        node_id = len(self.left)
        self._left_ids[label] = node_id
        self.left.append(label)
        self._adj.append([])
        return node_id

    def add_right(self, label: Hashable) -> int:
        if label in self._right_ids:
            return self._right_ids[label]
        node_id = len(self.right)
        self._right_ids[label] = node_id
        self.right.append(label)
        return node_id

    def add_edge(self, left_label: Hashable, right_label: Hashable) -> None:
        u = self.add_left(left_label)
        v = self.add_right(right_label)
        self._adj[u].append(v)

    @property
    def adjacency(self) -> List[List[int]]:
        return self._adj


def hopcroft_karp(graph: BipartiteGraph) -> Dict[Hashable, Hashable]:
    """Maximum matching as a dict ``left_label -> right_label``."""
    n_left = len(graph.left)
    n_right = len(graph.right)
    adj = graph.adjacency
    # The augmenting DFS recursion depth is bounded by the matching size;
    # make sure CPython's default limit does not bite on large loads.
    import sys

    needed = n_left + n_right + 100
    if sys.getrecursionlimit() < needed:
        sys.setrecursionlimit(needed)
    match_left = [-1] * n_left
    match_right = [-1] * n_right
    dist = [0.0] * n_left

    def bfs() -> bool:
        frontier = deque()
        for u in range(n_left):
            if match_left[u] == -1:
                dist[u] = 0.0
                frontier.append(u)
            else:
                dist[u] = INF
        found_free = False
        while frontier:
            u = frontier.popleft()
            for v in adj[u]:
                w = match_right[v]
                if w == -1:
                    found_free = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    frontier.append(w)
        return found_free

    def dfs(u: int) -> bool:
        for v in adj[u]:
            w = match_right[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INF
        return False

    while bfs():
        for u in range(n_left):
            if match_left[u] == -1:
                dfs(u)

    return {
        graph.left[u]: graph.right[match_left[u]]
        for u in range(n_left)
        if match_left[u] != -1
    }


def konig_vertex_cover(graph: BipartiteGraph) -> Tuple[Set[Hashable], Set[Hashable]]:
    """Minimum (unweighted) vertex cover via König's theorem.

    Returns ``(left_cover, right_cover)``: the left nodes *not* reachable
    from unmatched left nodes by alternating paths, plus the right nodes
    that are reachable.  ``|cover| == |maximum matching|``.
    """
    matching = hopcroft_karp(graph)
    matched_left = {label: matching[label] for label in matching}
    match_right_label: Dict[Hashable, Hashable] = {v: u for u, v in matching.items()}

    left_ids = {label: i for i, label in enumerate(graph.left)}
    adj = graph.adjacency

    # Alternating BFS from unmatched left nodes: left→right along
    # non-matching edges, right→left along matching edges.
    visited_left: Set[Hashable] = set()
    visited_right: Set[Hashable] = set()
    frontier = deque(label for label in graph.left if label not in matched_left)
    visited_left.update(frontier)
    while frontier:
        u_label = frontier.popleft()
        for v in adj[left_ids[u_label]]:
            v_label = graph.right[v]
            if v_label in visited_right:
                continue
            if matched_left.get(u_label) == v_label:
                continue  # matching edges are not used left→right
            visited_right.add(v_label)
            partner = match_right_label.get(v_label)
            if partner is not None and partner not in visited_left:
                visited_left.add(partner)
                frontier.append(partner)

    left_cover = {label for label in graph.left if label not in visited_left}
    right_cover = set(visited_right)
    return left_cover, right_cover


def maximum_matching_size(edges: Iterable[Tuple[Hashable, Hashable]]) -> int:
    """Convenience: maximum matching cardinality of an edge list."""
    graph = BipartiteGraph()
    for u, v in edges:
        graph.add_edge(("L", u), ("R", v))
    return len(hopcroft_karp(graph))
