"""Typed exceptions raised across the :mod:`repro` package.

Every error deliberately raised by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. are still
raised directly for misuse of the API).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidInstanceError(ReproError):
    """An :class:`~repro.core.instance.MC3Instance` violates a model invariant.

    Examples: an empty query, a non-string property, a negative classifier
    weight, or a duplicate query after canonicalisation when duplicates are
    forbidden.
    """


class UncoverableQueryError(ReproError):
    """A query admits no finite-cost cover.

    The paper assumes every query can be covered at finite cost ("we assume
    that Q can be covered by a solution of finite weight, and disregard the
    trivial cases where this does not hold", Section 2.1).  Solvers raise
    this error instead of silently producing an infinite-cost solution.
    """

    def __init__(self, query, message: str | None = None):
        self.query = query
        if message is None:
            message = f"query {sorted(query)!r} has no finite-cost cover"
        super().__init__(message)

    def __reduce__(self):
        # The default BaseException reduction replays ``args`` through
        # ``__init__`` — here args is ``(message,)``, so an unpickled
        # copy (e.g. raised in a pool worker) would rebuild with
        # ``query=message`` and a garbled text.  Round-trip the real
        # ``(query, message)`` pair instead; extra attributes attached
        # by the executor (worker traceback, component index) ride along
        # in the state dict.
        return (type(self), (self.query, self.args[0]), self.__dict__)


class InfeasibleSolutionError(ReproError):
    """A produced solution fails the independent coverage verification."""


class ReductionError(ReproError):
    """A problem reduction received an instance outside its domain.

    For example, the bipartite WVC reduction of Theorem 4.1 only accepts
    instances whose maximal query length is two.
    """


class SolverError(ReproError):
    """A solver failed for a reason other than an invalid instance."""


class FallbackExhaustedError(SolverError):
    """Every rung of a component's fallback chain failed.

    Raised by the resilient executor under ``on_error="raise"`` once the
    primary solver, every retry, and every declared fallback rung have
    failed for one component.  ``failures`` is the full chain history —
    one :class:`~repro.engine.resilience.ComponentFailure` per failed
    attempt, in the order they happened — and ``component_index`` names
    the component in the deterministic preprocessing order.
    """

    def __init__(self, component_index: int, failures=(), message: str | None = None):
        self.component_index = int(component_index)
        self.failures = tuple(failures)
        if message is None:
            chain = " -> ".join(
                f"{f.rung}#{f.attempt}:{f.kind}" for f in self.failures
            ) or "<empty chain>"
            message = (
                f"component {component_index}: all fallback rungs failed "
                f"({chain})"
            )
        super().__init__(message)

    def __reduce__(self):
        # Same rationale as UncoverableQueryError: args holds only the
        # rendered message, so replaying it through __init__ would shift
        # the message into component_index.
        return (
            type(self),
            (self.component_index, self.failures, self.args[0]),
            self.__dict__,
        )


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters or data."""
