"""Typed exceptions raised across the :mod:`repro` package.

Every error deliberately raised by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. are still
raised directly for misuse of the API).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidInstanceError(ReproError):
    """An :class:`~repro.core.instance.MC3Instance` violates a model invariant.

    Examples: an empty query, a non-string property, a negative classifier
    weight, or a duplicate query after canonicalisation when duplicates are
    forbidden.
    """


class UncoverableQueryError(ReproError):
    """A query admits no finite-cost cover.

    The paper assumes every query can be covered at finite cost ("we assume
    that Q can be covered by a solution of finite weight, and disregard the
    trivial cases where this does not hold", Section 2.1).  Solvers raise
    this error instead of silently producing an infinite-cost solution.
    """

    def __init__(self, query, message: str | None = None):
        self.query = query
        if message is None:
            message = f"query {sorted(query)!r} has no finite-cost cover"
        super().__init__(message)


class InfeasibleSolutionError(ReproError):
    """A produced solution fails the independent coverage verification."""


class ReductionError(ReproError):
    """A problem reduction received an instance outside its domain.

    For example, the bipartite WVC reduction of Theorem 4.1 only accepts
    instances whose maximal query length is two.
    """


class SolverError(ReproError):
    """A solver failed for a reason other than an invalid instance."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters or data."""
