"""Rule registry: rule base classes and the ``@register`` decorator.

A rule is a singleton object with an id (``RPL###``), a short
kebab-case name, a one-line summary, and a rationale paragraph naming
the contract it guards.  Per-module rules implement :meth:`Rule.check`;
rules that need the whole scanned tree at once (cross-file contracts
such as solver registration) subclass :class:`ProjectRule` and
implement :meth:`ProjectRule.check_project`.

Registration happens at import time of :mod:`repro.devtools.reprolint.
rules`; :func:`all_rules` triggers that import lazily so the registry
module itself stays dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Type

from repro.devtools.reprolint.model import SourceModule, Violation


class Rule:
    """Base class for per-module rules."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def applies_to(self, module: SourceModule) -> bool:
        """Whether this rule runs on ``module`` (scope gate)."""
        return True

    def check(self, module: SourceModule) -> Iterable[Violation]:
        """Yield violations found in one module."""
        return ()


class ProjectRule(Rule):
    """A rule that inspects every scanned module in one pass."""

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterable[Violation]:
        """Yield violations over the whole scanned tree."""
        return ()


class AnalysisRule(ProjectRule):
    """A rule that consumes the whole-program analysis (``--analyze``).

    Analysis rules only run when the runner was asked to build the
    interprocedural pass; a plain lint run skips them so ``make lint``
    stays fast.  They receive the shared
    :class:`~repro.devtools.reprolint.analysis.WholeProgramAnalysis`
    instead of re-deriving it per rule.
    """

    requires_analysis = True

    def check_program(self, analysis) -> Iterable[Violation]:
        """Yield violations from the whole-program analysis."""
        return ()


_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule singleton."""
    rule = rule_class()
    if not rule.rule_id or not rule.name:
        raise ValueError(f"rule {rule_class.__name__} lacks an id or name")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (imports the rule modules)."""
    # Lazy import: rule modules import this registry, so importing them
    # at module scope here would be circular.
    from repro.devtools.reprolint import rules as _rules  # noqa: F401

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    all_rules()
    return _REGISTRY[rule_id]
