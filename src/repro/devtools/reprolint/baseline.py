"""Content-keyed finding baseline for the ``--analyze`` CI gate.

A baseline entry identifies a *triaged* finding by content, not by
line number: the key is a SHA-1 over ``rule_id | repo-relative path |
stripped source line | occurrence index``, so reformatting or moving
unrelated code does not invalidate it, while editing the flagged line
itself does — exactly when the triage judgment needs a second look.

The gate is asymmetric by design:

* a finding **not** in the baseline fails the run (new debt is not
  allowed in), and
* a baseline entry that no longer reproduces also fails the run (the
  baseline may only shrink — delete the entry when you fix the
  finding).

``--write-baseline`` regenerates the file from the current findings,
sorted by key, with each entry carrying the human-readable context the
key was derived from plus a ``justification`` field to fill in.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devtools.reprolint.model import SourceModule, Violation

BASELINE_VERSION = 1

#: Default checked-in location, relative to the invocation cwd.
DEFAULT_BASELINE = "reprolint-baseline.json"


def _source_line(
    violation: Violation, modules_by_path: Dict[str, SourceModule]
) -> str:
    module = modules_by_path.get(violation.path)
    if module is None:
        return ""
    lines = module.source.splitlines()
    if 1 <= violation.line <= len(lines):
        return lines[violation.line - 1].strip()
    return ""


def _normalized_path(path: str) -> str:
    # Path() already normalizes away a leading "./".
    return Path(path).as_posix()


def finding_keys(
    violations: Sequence[Violation],
    modules_by_path: Dict[str, SourceModule],
) -> List[Tuple[Violation, str]]:
    """Stable content key per violation, in input order.

    The occurrence index disambiguates identical findings on identical
    source lines (e.g. two ``hash()`` calls in a file after a rename):
    the n-th match of a given ``(rule, path, line-text)`` triple keeps
    key slot n.
    """
    counters: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Violation, str]] = []
    for violation in violations:
        text = _source_line(violation, modules_by_path)
        triple = (violation.rule_id, _normalized_path(violation.path), text)
        occurrence = counters.get(triple, 0)
        counters[triple] = occurrence + 1
        payload = "|".join([*triple, str(occurrence)])
        key = hashlib.sha1(payload.encode("utf-8")).hexdigest()
        out.append((violation, key))
    return out


def load_baseline(path: "str | Path") -> Dict[str, Dict[str, object]]:
    """Key → entry map from a baseline file; ``{}`` if absent."""
    file_path = Path(path)
    if not file_path.exists():
        return {}
    document = json.loads(file_path.read_text(encoding="utf-8"))
    entries = document.get("findings", [])
    return {entry["key"]: entry for entry in entries}


def apply_baseline(
    violations: Sequence[Violation],
    modules_by_path: Dict[str, SourceModule],
    baseline: Dict[str, Dict[str, object]],
) -> Tuple[List[Violation], int, List[Dict[str, object]]]:
    """Split findings against a baseline.

    Returns ``(new_violations, matched_count, stale_entries)`` where
    *new* findings are those whose key is absent from the baseline and
    *stale* entries are baseline keys no current finding produced.
    """
    matched: set = set()
    new: List[Violation] = []
    for violation, key in finding_keys(violations, modules_by_path):
        if key in baseline:
            matched.add(key)
        else:
            new.append(violation)
    stale = [
        baseline[key] for key in sorted(baseline) if key not in matched
    ]
    return new, len(matched), stale


def render_baseline(
    violations: Sequence[Violation],
    modules_by_path: Dict[str, SourceModule],
    previous: Optional[Dict[str, Dict[str, object]]] = None,
) -> str:
    """Serialize current findings as a baseline document (sorted by
    key).  Justifications from ``previous`` survive regeneration."""
    previous = previous or {}
    entries = []
    for violation, key in finding_keys(violations, modules_by_path):
        carried = previous.get(key, {})
        entries.append(
            {
                "key": key,
                "rule": violation.rule_id,
                "path": _normalized_path(violation.path),
                "line": violation.line,
                "line_text": _source_line(violation, modules_by_path),
                "message": violation.message,
                "justification": carried.get(
                    "justification", "TODO: justify or fix"
                ),
            }
        )
    entries.sort(key=lambda entry: entry["key"])
    document = {
        "tool": "reprolint",
        "version": BASELINE_VERSION,
        "findings": entries,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
