"""Interprocedural nondeterminism-taint dataflow.

The lattice element (:class:`Taint`) tracks five independent facts
about a value:

``labels``
    Nondeterministic *value* origins — ``hash()``/``id()``, unseeded
    ``random``, clock reads, ``os.environ``, ``os.urandom``.  Each
    label is stamped with its source site (``random@path:line``) so a
    finding three calls away still names the origin.
``order_labels``
    The value's *content depends on an unordered iteration* that was
    materialised somewhere (``unsorted-iteration@path:line``).  This is
    the fact RPL101 can only see inside one function.
``unordered``
    The value is an unordered container (set/frozenset).  Not itself a
    defect — ``solve_component`` legitimately returns a ``Set`` — it
    becomes ``order_labels`` only when the container is *iterated* or
    stringified.
``params``
    Formal-parameter indices whose taint flows into this value, the
    substitution hook that makes function summaries polymorphic.
``pending_order``
    ``(param_index, site)`` pairs meaning *if the actual argument at
    that index is unordered, the result carries an order label at
    site* — i.e. the callee iterates its parameter.  This is what lets
    a two-hop flow (build a set in helper A, materialise it in helper
    B) surface at the call site where the set actually arrives.

Joins are set unions (plus boolean or), so the lattice is finite per
program and the worklist fixpoint terminates.  Sanitizers —
``sorted(...)``, ``classifier_sort_key``, bare order-neutral
reductions (``sum``/``min``/``max``/``len``/``any``/``all``), and
``# reprolint: sanitize`` / justified ``ignore[RPL101]``/
``ignore[RPL204]`` annotations — drop the order facts while keeping
value labels (sorting a list of clock readings does not make the
readings deterministic).

Dict iteration is deliberately *not* a source here: dicts are
insertion-ordered on every supported interpreter, and the stricter
per-file judgment for cache-key modules stays with RPL204.  Unknown
calls propagate the join of their argument taints but drop the
``unordered`` flag — a documented precision boundary; container-ness
survives only through functions the call graph can see.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Tuple

from repro.devtools.reprolint.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    _local_aliases,
)
from repro.devtools.reprolint.model import SourceModule

_EMPTY: FrozenSet = frozenset()


class Taint(NamedTuple):
    labels: FrozenSet[str] = _EMPTY
    order_labels: FrozenSet[str] = _EMPTY
    unordered: bool = False
    params: FrozenSet[int] = _EMPTY
    pending_order: FrozenSet[Tuple[int, str]] = _EMPTY

    def join(self, other: "Taint") -> "Taint":
        if other is BOTTOM:
            return self
        if self is BOTTOM:
            return other
        return Taint(
            self.labels | other.labels,
            self.order_labels | other.order_labels,
            self.unordered or other.unordered,
            self.params | other.params,
            self.pending_order | other.pending_order,
        )

    @property
    def is_tainted(self) -> bool:
        """Carries a definite nondeterminism fact (not just potential)."""
        return bool(self.labels or self.order_labels)

    def sanitized_order(self) -> "Taint":
        """Order facts removed, value labels kept (``sorted`` et al.)."""
        return Taint(labels=self.labels)

    def sorted_labels(self) -> List[str]:
        return sorted(self.labels | self.order_labels)


BOTTOM = Taint()


def _join_all(taints: Iterable[Taint]) -> Taint:
    out = BOTTOM
    for taint in taints:
        out = out.join(taint)
    return out


class Summary(NamedTuple):
    """Callable behaviour as seen from a call site."""

    #: Taint of the return value, with ``params``/``pending_order``
    #: still symbolic in the callee's own parameter indices.
    return_taint: Taint = BOTTOM
    #: sink kind → parameter indices that flow into that sink inside
    #: the callee (transitively).  A tainted argument at such an index
    #: is a finding at the call site.
    sink_params: Tuple[Tuple[str, FrozenSet[int]], ...] = ()


class TaintFinding(NamedTuple):
    """One sink reached by tainted data, for the RPL5xx rules."""

    kind: str  # solve-return | solution-ctor | fingerprint-arg | content-token
    #          | journal-append | planner-state
    function_key: str
    module: SourceModule
    node: ast.AST
    labels: Tuple[str, ...]


#: Bare-name calls whose result never depends on argument order.
_ORDER_NEUTRAL = {"sorted", "sum", "min", "max", "len", "any", "all"}
#: min/max with key=/default= keywords can leak order via ties.
_KEYWORD_SENSITIVE = {"min", "max"}
_SET_MAKERS = {"set", "frozenset"}
_SEQUENCE_MAKERS = {"list", "tuple", "enumerate"}
_STRINGIFIERS = {"str", "repr", "format"}
#: Receiver methods that keep the receiver's container-ness.
_SET_PRESERVING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
#: Receiver methods that mutate the receiver with their arguments.
_MUTATORS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "setdefault",
    "appendleft",
}

_SOLUTION_CTORS = {"Solution", "PartialSolution"}


def _is_seeded_rng(call: ast.Call) -> bool:
    """``random.Random(seed)`` with an explicit seed is the sanctioned
    threaded-RNG idiom; argument-less construction inherits OS entropy."""
    return bool(call.args or call.keywords)


class TaintEngine:
    """Worklist fixpoint over function summaries, then a report pass."""

    def __init__(self, callgraph: CallGraph):
        self.callgraph = callgraph
        self.summaries: Dict[str, Summary] = {
            key: Summary() for key in callgraph.functions
        }
        self.findings: List[TaintFinding] = []
        self._run_fixpoint()
        self._collect_findings()

    # -- driver --------------------------------------------------------

    def _run_fixpoint(self) -> None:
        work = deque(sorted(self.callgraph.functions))
        queued = set(work)
        while work:
            key = work.popleft()
            queued.discard(key)
            info = self.callgraph.functions[key]
            summary = _FunctionPass(self, info).summarize()
            if summary != self.summaries[key]:
                self.summaries[key] = summary
                for caller in self.callgraph.callers.get(key, ()):
                    if caller not in queued:
                        queued.add(caller)
                        work.append(caller)

    def _collect_findings(self) -> None:
        for key in sorted(self.callgraph.functions):
            info = self.callgraph.functions[key]
            pass_ = _FunctionPass(self, info, report=True)
            pass_.summarize()
            self.findings.extend(pass_.findings)

    def summary_of(self, key: str) -> Summary:
        return self.summaries.get(key, Summary())


class _FunctionPass:
    """One intraprocedural abstract interpretation of a function.

    Assignments *join* into the environment (never overwrite), so the
    per-function pass is a monotone accumulation and the outer loop
    below converges; the cost is flow-insensitivity within a function,
    which only ever over-approximates.
    """

    MAX_ITERATIONS = 6

    def __init__(self, engine: TaintEngine, info: FunctionInfo, report: bool = False):
        self.engine = engine
        self.info = info
        self.report = report
        self.module = info.table.module
        self.extra_aliases = _local_aliases(info.node)
        self.env: Dict[str, Taint] = {}
        for index, name in enumerate(info.param_names):
            if name != "self":
                self.env[name] = Taint(params=frozenset({index}))
        self.return_taint = BOTTOM
        self.sink_params: Dict[str, FrozenSet[int]] = {}
        self.findings: List[TaintFinding] = []

    # -- summary -------------------------------------------------------

    def summarize(self) -> Summary:
        report = self.report
        self.report = False  # findings only come from the final pass
        for _ in range(self.MAX_ITERATIONS):
            before = (dict(self.env), self.return_taint, dict(self.sink_params))
            for statement in self.info.node.body:
                self.exec_stmt(statement)
            if (dict(self.env), self.return_taint, dict(self.sink_params)) == before:
                break
        if report:
            self.report = True
            for statement in self.info.node.body:
                self.exec_stmt(statement)
            self._report_returns()
        return Summary(
            return_taint=self.return_taint,
            sink_params=tuple(sorted(self.sink_params.items())),
        )

    def _report_returns(self) -> None:
        name = self.info.name
        if name == "solve_component" and self.info.class_name is not None:
            kind = "solve-return"
        elif name == "content_token":
            kind = "content-token"
        else:
            return
        stack: List[ast.AST] = list(ast.iter_child_nodes(self.info.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Return) and node.value is not None:
                taint = self.eval_expr(node.value)
                if taint.is_tainted:
                    self._emit(kind, node, taint)
            stack.extend(ast.iter_child_nodes(node))

    def _emit(self, kind: str, node: ast.AST, taint: Taint) -> None:
        self.findings.append(
            TaintFinding(
                kind=kind,
                function_key=self.info.key,
                module=self.module,
                node=node,
                labels=tuple(taint.sorted_labels()),
            )
        )

    def _site(self, node: ast.AST, what: str) -> str:
        return f"{what}@{self.module.scope_key}:{getattr(node, 'lineno', 0)}"

    def _sanitized_line(self, node: ast.AST) -> bool:
        return self.module.is_sanitized(getattr(node, "lineno", -1))

    # -- statements ----------------------------------------------------

    def exec_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs: out of scope, documented conservatism
        if isinstance(node, ast.Return):
            if node.value is not None:
                self.return_taint = self.return_taint.join(
                    self.eval_expr(node.value)
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(node, "value", None)
            taint = self.eval_expr(value) if value is not None else BOTTOM
            if taint is not BOTTOM and self._sanitized_line(node):
                # Human judgment: the value produced on this line is
                # determinism-clean despite what the lattice tracked.
                taint = BOTTOM
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._bind(target, taint)
        elif isinstance(node, ast.For):
            iter_taint = self.eval_expr(node.iter)
            element = self._iteration_taint(iter_taint, node)
            self._bind(node.target, element)
            for inner in node.body + node.orelse:
                self.exec_stmt(inner)
        elif isinstance(node, (ast.While, ast.If)):
            self.eval_expr(node.test)
            for inner in node.body + node.orelse:
                self.exec_stmt(inner)
        elif isinstance(node, ast.With):
            for item in node.items:
                taint = self.eval_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint)
            for inner in node.body:
                self.exec_stmt(inner)
        elif isinstance(node, ast.Try):
            for inner in node.body + node.orelse + node.finalbody:
                self.exec_stmt(inner)
            for handler in node.handlers:
                for inner in handler.body:
                    self.exec_stmt(inner)
        elif isinstance(node, ast.Expr):
            self.eval_expr(node.value)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval_expr(child)
        # pass/break/continue/global/nonlocal/import: no data flow here.

    def _bind(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, BOTTOM).join(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                # Unpacking loses container identity but keeps origin.
                self._bind(element, taint._replace(unordered=False))
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name) and base.id in self.env:
                self.env[base.id] = self.env[base.id].join(
                    taint._replace(unordered=False)
                )

    def _iteration_taint(self, iter_taint: Taint, node: ast.AST) -> Taint:
        """Taint of a loop/comprehension variable given its iterable."""
        if self._sanitized_line(node):
            return iter_taint.sanitized_order()
        order = set(iter_taint.order_labels)
        pending = set(iter_taint.pending_order)
        if iter_taint.unordered:
            order.add(self._site(node, "unsorted-iteration"))
        for index in iter_taint.params:
            pending.add((index, self._site(node, "unsorted-iteration")))
        return Taint(
            labels=iter_taint.labels,
            order_labels=frozenset(order),
            unordered=False,
            params=iter_taint.params,
            pending_order=frozenset(pending),
        )

    # -- expressions ---------------------------------------------------

    def eval_expr(self, node: Optional[ast.expr]) -> Taint:
        if node is None:
            return BOTTOM
        if isinstance(node, ast.Constant):
            return BOTTOM
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return self._dotted_source(node)
        if isinstance(node, ast.Attribute):
            source = self._dotted_source(node)
            if source is not BOTTOM:
                return source
            base = self.eval_expr(node.value)
            return base._replace(unordered=False)
        if isinstance(node, ast.Subscript):
            value = self.eval_expr(node.value)
            self.eval_expr(node.slice)
            return value._replace(unordered=False)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, (ast.BinOp,)):
            return self.eval_expr(node.left).join(self.eval_expr(node.right))
        if isinstance(node, ast.BoolOp):
            return _join_all(self.eval_expr(value) for value in node.values)
        if isinstance(node, ast.UnaryOp):
            return self.eval_expr(node.operand)
        if isinstance(node, ast.Compare):
            return _join_all(
                self.eval_expr(value) for value in [node.left] + node.comparators
            )
        if isinstance(node, (ast.Tuple, ast.List)):
            return _join_all(self.eval_expr(element) for element in node.elts)
        if isinstance(node, ast.Set):
            inner = _join_all(self.eval_expr(element) for element in node.elts)
            return inner.sanitized_order()._replace(
                unordered=True, params=inner.params
            )
        if isinstance(node, ast.Dict):
            parts = [self.eval_expr(k) for k in node.keys if k is not None]
            parts += [self.eval_expr(v) for v in node.values]
            return _join_all(parts)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comprehension(node, node.elt, unordered_result=False)
        if isinstance(node, ast.SetComp):
            return self._comprehension(node, node.elt, unordered_result=True)
        if isinstance(node, ast.DictComp):
            keys = self._comprehension(node, node.key, unordered_result=False)
            values = self._comprehension(node, node.value, unordered_result=False)
            return keys.join(values)
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test)
            return self.eval_expr(node.body).join(self.eval_expr(node.orelse))
        if isinstance(node, ast.JoinedStr):
            return self._stringify(
                _join_all(self.eval_expr(value) for value in node.values), node
            )
        if isinstance(node, ast.FormattedValue):
            return self.eval_expr(node.value)
        if isinstance(node, ast.Starred):
            return self.eval_expr(node.value)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval_expr(node.value)
            self._bind(node.target, taint)
            return taint
        if isinstance(node, ast.Await):
            return self.eval_expr(node.value)
        if isinstance(node, ast.Lambda):
            return BOTTOM
        return BOTTOM

    def _stringify(self, taint: Taint, node: ast.AST) -> Taint:
        """``str()``/f-string of an unordered container bakes iteration
        order into the text."""
        if taint.unordered and not self._sanitized_line(node):
            taint = taint.join(
                Taint(order_labels=frozenset({self._site(node, "unordered-repr")}))
            )
        return taint._replace(unordered=False)

    def _comprehension(
        self, node: ast.expr, element: ast.expr, unordered_result: bool
    ) -> Taint:
        penalty = BOTTOM
        for generator in node.generators:  # type: ignore[attr-defined]
            iter_taint = self.eval_expr(generator.iter)
            bound = self._iteration_taint(iter_taint, generator.iter)
            self._bind(generator.target, bound)
            penalty = penalty.join(bound)
            for condition in generator.ifs:
                self.eval_expr(condition)
        result = self.eval_expr(element).join(penalty)
        if unordered_result:
            result = result.sanitized_order()._replace(
                unordered=True, params=result.params
            )
        return result

    # -- sources -------------------------------------------------------

    def _resolve(self, node: ast.expr) -> Optional[str]:
        return self.engine.callgraph.graph.resolve_dotted(
            self.info.table, node, self.extra_aliases
        )

    def _dotted_source(self, node: ast.expr) -> Taint:
        """Non-call reads of ambient state (``os.environ`` today)."""
        dotted = self._resolve(node)
        if dotted == "os.environ":
            return Taint(labels=frozenset({self._site(node, "environ")}))
        return BOTTOM

    def _source_call(self, call: ast.Call, dotted: Optional[str]) -> Optional[Taint]:
        """Taint if the call is itself a nondeterminism source."""
        if dotted is None:
            return None
        if dotted in ("hash", "id"):
            return Taint(labels=frozenset({self._site(call, dotted)}))
        if dotted == "random.Random":
            if _is_seeded_rng(call):
                return BOTTOM  # sanctioned seeded RNG
            return Taint(labels=frozenset({self._site(call, "random")}))
        if dotted == "random.SystemRandom" or dotted.startswith(
            "random.SystemRandom."
        ):
            return Taint(labels=frozenset({self._site(call, "urandom")}))
        if dotted.startswith("random."):
            return Taint(labels=frozenset({self._site(call, "random")}))
        if dotted == "time" or dotted.startswith("time."):
            return Taint(labels=frozenset({self._site(call, "time")}))
        if dotted in ("os.getenv", "os.getenvb") or dotted.startswith("os.environ."):
            return Taint(labels=frozenset({self._site(call, "environ")}))
        if dotted == "os.urandom":
            return Taint(labels=frozenset({self._site(call, "urandom")}))
        return None

    # -- calls ---------------------------------------------------------

    def eval_call(self, call: ast.Call) -> Taint:
        arg_taints = [self.eval_expr(arg) for arg in call.args]
        keyword_taints = [self.eval_expr(kw.value) for kw in call.keywords]
        everything = _join_all(arg_taints + keyword_taints)
        sanitized_here = self._sanitized_line(call)

        dotted = self._resolve(call.func)
        if (
            dotted is None
            and isinstance(call.func, ast.Name)
            and call.func.id in ("hash", "id")
            and call.func.id not in self.env
        ):
            # A bare unshadowed builtin never resolves through the
            # alias table; hash()/id() are sources all the same.
            dotted = call.func.id
        terminal = dotted.rpartition(".")[2] if dotted else None
        if terminal is None and isinstance(call.func, ast.Attribute):
            terminal = call.func.attr
        if terminal is None and isinstance(call.func, ast.Name):
            terminal = call.func.id

        source = None if sanitized_here else self._source_call(call, dotted)
        if source is not None:
            return source.join(everything.sanitized_order())

        # Sink detection happens before sanitizer shortcuts so a
        # sanitize comment on the *call* line cannot hide a sink hit
        # on its arguments evaluated above.
        self._check_sinks(call, terminal, arg_taints, keyword_taints)

        if isinstance(call.func, ast.Name) and call.func.id not in self.env:
            name = call.func.id
            shadowed = (
                name in self.info.table.functions
                or name in self.info.table.classes
                or name in self.info.table.aliases
                or name in self.extra_aliases
            )
            if not shadowed:
                if name in _ORDER_NEUTRAL and not (
                    name in _KEYWORD_SENSITIVE and call.keywords
                ):
                    return everything.sanitized_order()
                if name in _SET_MAKERS:
                    return everything.sanitized_order()._replace(
                        unordered=True, params=everything.params
                    )
                if name in _SEQUENCE_MAKERS:
                    return self._iteration_taint(everything, call)
                if name in _STRINGIFIERS:
                    return self._stringify(everything, call)
        if terminal == "classifier_sort_key" or terminal == "sorted":
            return everything.sanitized_order()

        if sanitized_here:
            return BOTTOM

        targets = self.engine.callgraph.targets_of(self.info.key, call)
        if targets:
            result = BOTTOM
            for target in targets:
                result = result.join(
                    self._instantiate(target, call, arg_taints, keyword_taints)
                )
            return result

        return self._unknown_call(call, everything)

    def _unknown_call(self, call: ast.Call, everything: Taint) -> Taint:
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = self.eval_expr(func.value)
            if func.attr in _MUTATORS:
                self._mutate_receiver(func.value, everything)
                return BOTTOM
            if func.attr in _SET_PRESERVING_METHODS:
                return receiver.join(everything)
            joined = receiver.join(everything)
            return joined._replace(unordered=False)
        return everything._replace(unordered=False)

    def _mutate_receiver(self, receiver: ast.expr, taint: Taint) -> None:
        base = receiver
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if isinstance(base, ast.Name):
            self.env[base.id] = self.env.get(base.id, BOTTOM).join(
                taint._replace(unordered=False)
            )

    def _instantiate(
        self,
        target_key: str,
        call: ast.Call,
        arg_taints: List[Taint],
        keyword_taints: List[Taint],
    ) -> Taint:
        """Apply a callee summary at this call site: substitute actual
        argument taints for the summary's symbolic parameter indices."""
        summary = self.engine.summary_of(target_key)
        target_info = self.engine.callgraph.functions.get(target_key)
        actuals = self._actual_map(target_info, call, arg_taints, keyword_taints)

        base = summary.return_taint
        labels = set(base.labels)
        order = set(base.order_labels)
        unordered = base.unordered
        params: set = set()
        pending: set = set()

        for index in base.params:
            actual = actuals.get(index)
            if actual is None:
                continue
            labels |= actual.labels
            order |= actual.order_labels
            unordered = unordered or actual.unordered
            params |= actual.params
            pending |= actual.pending_order
        for index, site in base.pending_order:
            actual = actuals.get(index)
            if actual is None:
                continue
            if actual.unordered:
                order.add(site)
            for caller_param in actual.params:
                pending.add((caller_param, site))

        for kind, indices in summary.sink_params:
            hits = BOTTOM
            for index in indices:
                actual = actuals.get(index)
                if actual is None:
                    continue
                if actual.is_tainted:
                    hits = hits.join(actual)
                for caller_param in actual.params:
                    self._record_sink_param(kind, caller_param)
            if hits.is_tainted and self.report:
                self._emit(kind, call, hits)

        return Taint(
            labels=frozenset(labels),
            order_labels=frozenset(order),
            unordered=unordered,
            params=frozenset(params),
            pending_order=frozenset(pending),
        )

    def _actual_map(
        self,
        target_info: Optional[FunctionInfo],
        call: ast.Call,
        arg_taints: List[Taint],
        keyword_taints: List[Taint],
    ) -> Dict[int, Taint]:
        """Map callee parameter index → actual-argument taint.

        Positional args shift by one for bound-method targets (their
        index 0 is ``self``).  Keywords match by declared name; a
        ``**kwargs`` splat degrades to joining into every parameter.
        """
        actuals: Dict[int, Taint] = {}
        offset = 0
        if target_info is not None and target_info.param_names[:1] == ("self",):
            offset = 1
        for position, taint in enumerate(arg_taints):
            actuals[position + offset] = taint
        if target_info is not None:
            names = list(target_info.param_names)
            for keyword, taint in zip(call.keywords, keyword_taints):
                if keyword.arg is None:  # **splat: could hit anything
                    for index in range(len(names)):
                        actuals[index] = actuals.get(index, BOTTOM).join(taint)
                elif keyword.arg in names:
                    actuals[names.index(keyword.arg)] = taint
        return actuals

    def _record_sink_param(self, kind: str, index: int) -> None:
        current = self.sink_params.get(kind, _EMPTY)
        self.sink_params[kind] = current | {index}

    # -- sinks ---------------------------------------------------------

    def _check_sinks(
        self,
        call: ast.Call,
        terminal: Optional[str],
        arg_taints: List[Taint],
        keyword_taints: List[Taint],
    ) -> None:
        if terminal == "component_fingerprint":
            kind = "fingerprint-arg"
        elif terminal in _SOLUTION_CTORS:
            kind = "solution-ctor"
        elif terminal == "append_batch":
            # The daemon's write-ahead journal: a tainted value in a
            # record would replay differently than it ran live.
            kind = "journal-append"
        elif terminal == "add_batch":
            # IncrementalPlanner state: what the journal promises to
            # reproduce; taint here breaks recovery equivalence.
            kind = "planner-state"
        else:
            return
        hits = BOTTOM
        for taint in arg_taints + keyword_taints:
            if taint.is_tainted:
                hits = hits.join(taint)
            for index in taint.params:
                self._record_sink_param(kind, index)
        if hits.is_tainted and self.report:
            self._emit(kind, call, hits)
