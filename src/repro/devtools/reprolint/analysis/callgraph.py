"""Conservative call graph over the ``repro.*`` function universe.

Nodes are top-level functions and class methods, keyed
``repro.mod.func`` / ``repro.mod.Class.method``.  Edges come from four
resolution strategies, in decreasing precision:

* **direct calls** — a bare name resolved through the module symbol
  table and import aliases (including one re-export hop), and
  ``module.function(...)`` calls through module aliases;
* **constructor calls** — a name resolving to a scanned class adds an
  edge to its ``__init__`` (searched up the textual hierarchy);
* **self-dispatch** — ``self.m(...)`` inside class ``C`` resolves to
  every method named ``m`` on ``C``, its (textual) ancestors, and its
  subclass subtree, which is what makes taint flow through the
  ``ComponentSolver`` template-method pattern sound;
* **registry indirection** — method calls on *unknown* receivers
  resolve through the dispatch tables the registries define: the
  :class:`~repro.core.kernels.api.KernelBackend` protocol names (and
  the pruner surface) map to every implementation in the kernel
  package, ``solve_component`` on an unknown receiver maps to every
  ``solve_component`` in the program, and a ``make_solver(...)`` call
  maps to the constructor of every class registered in
  ``solvers/registry.py``'s ``_FACTORIES``.

Anything else stays edge-free: an unresolvable dynamic call is a
documented precision boundary, not a silent guess.  More edges mean
more taint false positives, so the graph adds them only where a
registry or hierarchy genuinely routes calls.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.reprolint.analysis.modgraph import ModuleGraph, ModuleTable

#: The KernelBackend protocol surface plus the pruner object it hands
#: out — method calls on unknown receivers with these names dispatch to
#: every implementation inside the kernel package.
KERNEL_DISPATCH_METHODS = (
    "make_dominated_pruner",
    "greedy_wsc",
    "bucket_greedy_wsc",
    "min_cover_dp",
    "run",
    "effective_weight",
)

KERNEL_PACKAGE_PREFIX = "repro.core.kernels."

SOLVER_REGISTRY_MODULE = "repro.solvers.registry"


class FunctionInfo:
    """One analyzable function: a top-level def or a class method."""

    def __init__(
        self,
        key: str,
        table: ModuleTable,
        node: ast.FunctionDef,
        class_name: Optional[str] = None,
    ):
        self.key = key
        self.table = table
        self.node = node
        self.class_name = class_name
        arguments = node.args
        self.param_names: Tuple[str, ...] = tuple(
            arg.arg
            for arg in list(arguments.posonlyargs)
            + list(arguments.args)
            + list(arguments.kwonlyargs)
        )

    @property
    def module(self):
        return self.table.module

    @property
    def name(self) -> str:
        return self.node.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.key})"


def _local_aliases(node: ast.FunctionDef) -> Dict[str, str]:
    """Function-level import aliases (the registry loaders import their
    backend modules lazily inside the loader body)."""
    aliases: Dict[str, str] = {}
    for inner in ast.walk(node):
        if isinstance(inner, ast.Import):
            for alias in inner.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(inner, ast.ImportFrom) and inner.module and inner.level == 0:
            for alias in inner.names:
                if alias.name != "*":
                    aliases[alias.asname or alias.name] = (
                        f"{inner.module}.{alias.name}"
                    )
    return aliases


def iter_calls(node: ast.FunctionDef) -> Iterator[ast.Call]:
    """Every call expression in ``node``, nested defs excluded."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


class CallGraph:
    """Functions, resolved call sites, and reverse edges."""

    def __init__(self, graph: ModuleGraph):
        self.graph = graph
        self.functions: Dict[str, FunctionInfo] = {}
        #: key → list of (call node, resolved target keys).
        self.calls: Dict[str, List[Tuple[ast.Call, Tuple[str, ...]]]] = {}
        #: key → sorted caller keys.
        self.callers: Dict[str, List[str]] = {}
        self._kernel_methods: Dict[str, Tuple[str, ...]] = {}
        self._solver_factories: Optional[Tuple[str, ...]] = None
        self._collect_functions()
        self._build_dispatch_tables()
        self._resolve_all_calls()

    # -- universe ------------------------------------------------------

    def _collect_functions(self) -> None:
        for module_name in sorted(self.graph.tables):
            table = self.graph.tables[module_name]
            for func_name in sorted(table.functions):
                key = f"{module_name}.{func_name}"
                self.functions[key] = FunctionInfo(
                    key, table, table.functions[func_name]
                )
            for class_name in sorted(table.classes):
                info = table.classes[class_name]
                for method_name in sorted(info.methods):
                    key = f"{module_name}.{class_name}.{method_name}"
                    self.functions[key] = FunctionInfo(
                        key,
                        table,
                        info.methods[method_name],
                        class_name=class_name,
                    )

    def _build_dispatch_tables(self) -> None:
        kernel: Dict[str, List[str]] = {}
        for key, info in self.functions.items():
            if info.class_name is None:
                continue
            if not info.table.name.startswith(KERNEL_PACKAGE_PREFIX):
                continue
            if info.name in KERNEL_DISPATCH_METHODS:
                kernel.setdefault(info.name, []).append(key)
        self._kernel_methods = {
            name: tuple(sorted(keys)) for name, keys in kernel.items()
        }

    def _factory_constructor_keys(self) -> Tuple[str, ...]:
        """Constructors of every class named in the solver registry's
        ``_FACTORIES`` dict (the ``make_solver`` indirection)."""
        if self._solver_factories is not None:
            return self._solver_factories
        keys: Set[str] = set()
        table = self.graph.tables.get(SOLVER_REGISTRY_MODULE)
        if table is not None:
            names: Set[str] = set()
            for node in ast.walk(table.module.tree):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    [node.target]
                    if isinstance(node, ast.AnnAssign)
                    else list(node.targets)
                )
                value = node.value
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "_FACTORIES"
                        and isinstance(value, ast.Dict)
                    ):
                        for item in value.values:
                            for inner in ast.walk(item):
                                if isinstance(inner, ast.Name):
                                    names.add(inner.id)
                                elif isinstance(inner, ast.Attribute):
                                    names.add(inner.attr)
            for name in names:
                keys.update(self._constructor_keys_for_class_name(name))
        self._solver_factories = tuple(sorted(keys))
        return self._solver_factories

    def _constructor_keys_for_class_name(self, class_name: str) -> List[str]:
        """``__init__`` keys for a class, searching textual ancestors."""
        out: List[str] = []
        for candidate in [class_name] + self.graph.ancestors_of(class_name):
            for info in self.graph.classes.get(candidate, ()):
                key = f"{info.module_name}.{info.name}.__init__"
                if key in self.functions:
                    out.append(key)
            if out:
                break  # nearest definition wins, like the MRO would
        return out

    # -- resolution ----------------------------------------------------

    def _hierarchy_methods(self, class_name: str, method: str) -> Tuple[str, ...]:
        """Methods named ``method`` on ``class_name``, its ancestors,
        and its subclass subtree."""
        candidates = (
            [class_name]
            + self.graph.ancestors_of(class_name)
            + self.graph.subclasses_of(class_name)
        )
        keys: Set[str] = set()
        for candidate in candidates:
            for info in self.graph.classes.get(candidate, ()):
                if method in info.methods:
                    keys.add(f"{info.module_name}.{info.name}.{method}")
        return tuple(sorted(key for key in keys if key in self.functions))

    def _all_methods_named(self, method: str) -> Tuple[str, ...]:
        keys = [
            key
            for key, info in self.functions.items()
            if info.class_name is not None and info.name == method
        ]
        return tuple(sorted(keys))

    def resolve_call(
        self, info: FunctionInfo, call: ast.Call, extra_aliases: Dict[str, str]
    ) -> Tuple[str, ...]:
        """Candidate callee keys for one call expression."""
        func = call.func
        dotted = self.graph.resolve_dotted(info.table, func, extra_aliases)
        if dotted is not None:
            if dotted.endswith(".make_solver") or dotted == "make_solver":
                return self._factory_constructor_keys()
            resolved = self.graph.function_at(dotted)
            if resolved is not None:
                table, node = resolved
                return (f"{table.name}.{node.name}",)
            class_info = self.graph.class_at(dotted)
            if class_info is not None:
                return tuple(
                    self._constructor_keys_for_class_name(class_info.name)
                )
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                if info.class_name is not None:
                    return self._hierarchy_methods(info.class_name, func.attr)
            if func.attr in self._kernel_methods:
                return self._kernel_methods[func.attr]
            if func.attr == "solve_component":
                return self._all_methods_named("solve_component")
        return ()

    def _resolve_all_calls(self) -> None:
        reverse: Dict[str, Set[str]] = {}
        for key in sorted(self.functions):
            info = self.functions[key]
            extra = _local_aliases(info.node)
            resolved: List[Tuple[ast.Call, Tuple[str, ...]]] = []
            for call in iter_calls(info.node):
                targets = self.resolve_call(info, call, extra)
                targets = tuple(t for t in targets if t != key)  # drop self-loops
                resolved.append((call, targets))
                for target in targets:
                    reverse.setdefault(target, set()).add(key)
            self.calls[key] = resolved
        self.callers = {
            target: sorted(sources) for target, sources in reverse.items()
        }

    # -- queries -------------------------------------------------------

    def targets_of(self, key: str, call: ast.Call) -> Tuple[str, ...]:
        for node, targets in self.calls.get(key, ()):
            if node is call:
                return targets
        return ()

    def solve_component_keys(self) -> List[str]:
        return sorted(
            key
            for key, info in self.functions.items()
            if info.name == "solve_component"
        )

    def reachable_from(self, roots: Sequence[str]) -> List[str]:
        """Forward closure over call edges (roots included)."""
        seen: Set[str] = set()
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for _node, targets in self.calls.get(current, ()):
                for target in targets:
                    if target not in seen:
                        frontier.append(target)
        return sorted(seen)
