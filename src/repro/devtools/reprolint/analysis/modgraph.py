"""Module graph: dotted names, symbol tables, and import resolution.

The whole-program pass only reasons about the ``repro.*`` namespace: a
scanned file maps to a dotted module name via its ``src/repro/`` path
segment (``src/repro/engine/cache.py`` → ``repro.engine.cache``), which
makes the graph identical for the real tree and for fixture mirrors
under a temporary directory — the same trick the path scopes use.

Each module gets a :class:`ModuleTable`: its top-level functions, its
classes (with methods and textual base names), and an alias table
mapping every imported local name to the dotted thing it denotes.
Foreign imports (``time``, ``random``, ``os`` …) are kept in the alias
table too — the taint engine classifies nondeterminism *sources* by
resolving call expressions to dotted names through exactly this table,
so ``from time import perf_counter as clock`` cannot hide a clock read.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.devtools.reprolint.model import SourceModule
from repro.devtools.reprolint.scopes import repro_relative

PACKAGE_ROOT = "repro"


def module_name_of(module: SourceModule) -> Optional[str]:
    """Dotted ``repro.*`` name for a scanned file, or ``None`` for
    files outside the package (tests, benchmarks, fixtures)."""
    rel = repro_relative(module.scope_key)
    if rel is None or not rel.endswith(".py"):
        return None
    parts = rel[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([PACKAGE_ROOT] + parts) if parts else PACKAGE_ROOT


class ClassInfo:
    """One class definition: methods and textual base names."""

    def __init__(self, module_name: str, node: ast.ClassDef):
        self.module_name = module_name
        self.node = node
        self.name = node.name
        self.bases: Tuple[str, ...] = tuple(
            name
            for name in (_base_name(base) for base in node.bases)
            if name is not None
        )
        self.methods: Dict[str, ast.FunctionDef] = {}
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[statement.name] = statement


def _base_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        return _base_name(node.value)
    return None


class ModuleTable:
    """Symbols and import aliases of one ``repro.*`` module."""

    def __init__(self, name: str, module: SourceModule):
        self.name = name
        self.module = module
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: local alias → dotted target.  Targets need not be repro
        #: modules: ``time`` → ``time``, ``clock`` →
        #: ``time.perf_counter``, ``cache`` → ``repro.engine.cache``.
        self.aliases: Dict[str, str] = {}
        self._fill()

    def _fill(self) -> None:
        for node in self.module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = ClassInfo(self.name, node)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}"

    def _from_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: resolve against this module's package.
        parts = self.name.split(".")
        # A module's package drops the final component; each extra
        # level drops one more.
        anchor = parts[: len(parts) - node.level]
        if not anchor:
            return None
        if node.module:
            anchor = anchor + node.module.split(".")
        return ".".join(anchor)


class ModuleGraph:
    """Every scanned ``repro.*`` module, keyed by dotted name."""

    def __init__(self, modules: List[SourceModule]):
        self.tables: Dict[str, ModuleTable] = {}
        for module in modules:
            name = module_name_of(module)
            if name is None:
                continue
            # Path-sorted scan order is deterministic; on a duplicate
            # dotted name (one file seen via two path spellings) the
            # first wins.
            if name not in self.tables:
                self.tables[name] = ModuleTable(name, module)
        #: Global class index: class name → every definition (textual,
        #: like the RPL3xx rules — exactly as precise as the import
        #: graph this analysis polices).
        self.classes: Dict[str, List[ClassInfo]] = {}
        for table_name in sorted(self.tables):
            for class_name, info in self.tables[table_name].classes.items():
                self.classes.setdefault(class_name, []).append(info)
        self._subclasses: Optional[Dict[str, List[str]]] = None

    # -- name resolution -----------------------------------------------

    def resolve_dotted(
        self,
        table: ModuleTable,
        expr: ast.AST,
        extra_aliases: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """Dotted name an expression denotes, through import aliases.

        ``Name('time')`` → ``time``; ``Attribute(Name('time'),
        'perf_counter')`` → ``time.perf_counter``; ``Name('clock')``
        (from-import alias) → ``time.perf_counter``; unresolvable
        expressions → ``None``.  ``extra_aliases`` layers function-level
        imports over the module table.
        """
        if isinstance(expr, ast.Name):
            if extra_aliases and expr.id in extra_aliases:
                return extra_aliases[expr.id]
            if expr.id in table.functions:
                return f"{table.name}.{expr.id}"
            if expr.id in table.classes:
                return f"{table.name}.{expr.id}"
            return table.aliases.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.resolve_dotted(table, expr.value, extra_aliases)
            if base is None:
                return None
            return f"{base}.{expr.attr}"
        return None

    def function_at(self, dotted: str) -> Optional[Tuple[ModuleTable, ast.FunctionDef]]:
        """The top-level function a dotted name denotes, if scanned.

        Follows one level of re-export indirection: if ``a.b.f`` is an
        alias recorded in ``a.b``'s table (``from a.c import f``), the
        aliased target is looked up too.
        """
        seen = set()
        while dotted and dotted not in seen:
            seen.add(dotted)
            module_name, _, symbol = dotted.rpartition(".")
            if not module_name:
                return None
            table = self.tables.get(module_name)
            if table is None:
                continue_to = None
            else:
                if symbol in table.functions:
                    return table, table.functions[symbol]
                continue_to = table.aliases.get(symbol)
            if continue_to is None:
                return None
            dotted = continue_to
        return None

    def class_at(self, dotted: str) -> Optional[ClassInfo]:
        """The class a dotted name denotes, if scanned (one level of
        re-export indirection, like :meth:`function_at`)."""
        seen = set()
        while dotted and dotted not in seen:
            seen.add(dotted)
            module_name, _, symbol = dotted.rpartition(".")
            if not module_name:
                return None
            table = self.tables.get(module_name)
            if table is None:
                return None
            if symbol in table.classes:
                return table.classes[symbol]
            dotted = table.aliases.get(symbol)
            if dotted is None:
                return None
        return None

    # -- hierarchy -----------------------------------------------------

    def subclasses_of(self, class_name: str) -> List[str]:
        """Names of all (transitive) subclasses of ``class_name``."""
        if self._subclasses is None:
            children: Dict[str, List[str]] = {}
            for name in sorted(self.classes):
                for info in self.classes[name]:
                    for base in info.bases:
                        bucket = children.setdefault(base, [])
                        if name not in bucket:
                            bucket.append(name)
            self._subclasses = children
        out: List[str] = []
        frontier = [class_name]
        seen = {class_name}
        while frontier:
            current = frontier.pop()
            for child in self._subclasses.get(current, ()):
                if child not in seen:
                    seen.add(child)
                    out.append(child)
                    frontier.append(child)
        return sorted(out)

    def ancestors_of(self, class_name: str) -> List[str]:
        """Names of all (transitive, textual) base classes."""
        out: List[str] = []
        frontier = [class_name]
        seen = {class_name}
        while frontier:
            current = frontier.pop()
            for info in self.classes.get(current, ()):
                for base in info.bases:
                    if base not in seen:
                        seen.add(base)
                        out.append(base)
                        frontier.append(base)
        return sorted(out)
