"""Whole-program analysis layer behind ``reprolint --analyze``.

Three stages, each consuming the previous one's output:

#. :mod:`.modgraph` — dotted-name module graph with per-module symbol
   tables and import-alias resolution over the ``repro.*`` namespace;
#. :mod:`.callgraph` — conservative call graph (direct calls, class
   hierarchies, solver/kernel registry indirection);
#. :mod:`.taint` — worklist dataflow propagating the nondeterminism
   taint lattice along call edges and return values.

:class:`WholeProgramAnalysis` bundles the three so the RPL5xx rules
(and tests) get one object to query.  Building it is pure — no
imports of scanned code are executed, everything is AST-level.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.devtools.reprolint.analysis.callgraph import CallGraph
from repro.devtools.reprolint.analysis.modgraph import ModuleGraph, module_name_of
from repro.devtools.reprolint.analysis.taint import TaintEngine, TaintFinding
from repro.devtools.reprolint.model import SourceModule


class WholeProgramAnalysis:
    """Module graph + call graph + taint fixpoint over one scanned set."""

    def __init__(self, modules: Iterable[SourceModule]):
        self.modules: List[SourceModule] = list(modules)
        self.module_graph = ModuleGraph(self.modules)
        self.call_graph = CallGraph(self.module_graph)
        self.taint = TaintEngine(self.call_graph)

    @property
    def findings(self) -> List[TaintFinding]:
        return self.taint.findings


def build_analysis(modules: Iterable[SourceModule]) -> WholeProgramAnalysis:
    return WholeProgramAnalysis(modules)


__all__ = [
    "CallGraph",
    "ModuleGraph",
    "TaintEngine",
    "TaintFinding",
    "WholeProgramAnalysis",
    "build_analysis",
    "module_name_of",
]
