"""Rule modules; importing this package registers every rule.

Rule id taxonomy:

* ``RPL1xx`` — determinism (set iteration, nondeterministic reads,
  float tie-break equality);
* ``RPL2xx`` — mask/kernel boundary (frozenset ops in mask modules,
  reference-oracle imports) and cache-key hygiene (hash-seed-dependent
  key material);
* ``RPL3xx`` — solver contract (engine bypass, registry coverage);
* ``RPL4xx`` — hygiene (mutable defaults, bare except).
"""

from repro.devtools.reprolint.rules import (  # noqa: F401  (registration side effect)
    cache,
    determinism,
    hygiene,
    masks,
    solvers,
)
