"""Rule modules; importing this package registers every rule.

Rule id taxonomy:

* ``RPL1xx`` — determinism (set iteration, nondeterministic reads,
  float tie-break equality);
* ``RPL2xx`` — mask/kernel boundary (frozenset ops in mask modules,
  reference-oracle imports) and cache-key hygiene (hash-seed-dependent
  key material);
* ``RPL3xx`` — solver contract (engine bypass, registry coverage);
* ``RPL4xx`` — hygiene (mutable defaults, bare except);
* ``RPL5xx`` — whole-program analysis (interprocedural determinism
  taint, kernel-backend purity, seeded-randomness discipline); these
  only run under ``--analyze``;
* ``RPL0xx`` — meta (RPL000 syntax error, RPL001 unused suppression).
"""

from repro.devtools.reprolint.rules import (  # noqa: F401  (registration side effect)
    analysis,
    cache,
    determinism,
    hygiene,
    masks,
    solvers,
)
