"""Solver-contract rules (RPL3xx) — cross-file project rules.

Both rules build a name-keyed inheritance graph over every scanned
source module, so ``class MySolver(GeneralSolver)`` in one file is
recognised as a (transitive) ``ComponentSolver``/``Solver`` subclass
even though the base is defined elsewhere.  Name resolution is textual
— good enough for a repo linter, and exactly as precise as the import
graph it polices.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.reprolint.model import SourceModule, Violation
from repro.devtools.reprolint.registry import ProjectRule, register
from repro.devtools.reprolint.scopes import (
    in_solvers_dir,
    in_src,
    repro_relative,
)

_ClassEntry = Tuple[SourceModule, ast.ClassDef, Tuple[str, ...]]


def _base_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        return _base_name(node.value)
    return None


def _class_index(modules: Sequence[SourceModule]) -> Dict[str, List[_ClassEntry]]:
    index: Dict[str, List[_ClassEntry]] = {}
    for module in modules:
        if not in_src(module.scope_key):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                bases = tuple(
                    name
                    for name in (_base_name(base) for base in node.bases)
                    if name is not None
                )
                index.setdefault(node.name, []).append((module, node, bases))
    return index


def _inherits(
    class_name: str, root: str, index: Dict[str, List[_ClassEntry]]
) -> bool:
    """Transitive by-name subclass check (``root`` itself excluded)."""
    seen: Set[str] = set()
    frontier = [class_name]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        for _module, _node, bases in index.get(current, ()):
            for base in bases:
                if base == root:
                    return True
                frontier.append(base)
    return False


@register
class ComponentSolverOverrideRule(ProjectRule):
    rule_id = "RPL301"
    name = "component-solver-overrides-solve"
    summary = "structural solvers subclassing ComponentSolver must not override _solve"
    rationale = (
        "ComponentSolver._solve is the engine entry point: it owns "
        "preprocessing, routing, (possibly parallel) dispatch, and the "
        "deterministic merge (PR 1).  A subclass overriding _solve "
        "bypasses the engine, so its outputs are no longer covered by "
        "the sequential-vs-parallel equivalence guarantee.  Implement "
        "solve_component (plus the routes/aggregate_details hooks) "
        "instead; pipelines with a genuinely different shape subclass "
        "Solver directly."
    )

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterable[Violation]:
        index = _class_index(modules)
        for entries in index.values():
            for module, node, _bases in entries:
                if node.name == "ComponentSolver":
                    continue
                if not _inherits(node.name, "ComponentSolver", index):
                    continue
                for statement in node.body:
                    if (
                        isinstance(
                            statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                        )
                        and statement.name == "_solve"
                    ):
                        yield module.violation(
                            self,
                            statement,
                            f"{node.name} subclasses ComponentSolver but "
                            "overrides _solve, bypassing the shared engine; "
                            "implement solve_component instead",
                        )


@register
class UnregisteredSolverRule(ProjectRule):
    rule_id = "RPL302"
    name = "unregistered-solver"
    summary = (
        "every concrete Solver subclass in solvers/ must be registered "
        "in solvers/registry.py"
    )
    rationale = (
        "The registry is the single dispatch surface for the CLI, the "
        "experiment harness, and the uniform jobs=/verify= parameter "
        "wiring; a solver class that defines a public ``name`` but "
        "never enters _FACTORIES is unreachable from every harness and "
        "silently escapes the cross-solver equivalence tests."
    )

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterable[Violation]:
        registry_module = None
        for module in modules:
            if repro_relative(module.scope_key) == "solvers/registry.py":
                registry_module = module
                break
        if registry_module is None:
            # Registry not part of this scan (e.g. a single-file run):
            # the contract cannot be evaluated, so stay silent.
            return
        registered = self._registered_factories(registry_module)
        index = _class_index(modules)
        for module in modules:
            rel = repro_relative(module.scope_key)
            if rel is None or not in_solvers_dir(module.scope_key):
                continue
            if rel in ("solvers/base.py", "solvers/registry.py"):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if node.name.startswith("_"):
                    continue
                if not _inherits(node.name, "Solver", index):
                    continue
                if not self._declares_registry_name(node):
                    continue  # abstract intermediate: no public name
                if node.name not in registered:
                    yield module.violation(
                        self,
                        node,
                        f"concrete solver {node.name} declares a registry "
                        "name but is missing from _FACTORIES in "
                        "solvers/registry.py",
                    )

    @staticmethod
    def _declares_registry_name(node: ast.ClassDef) -> bool:
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                targets = [
                    t.id for t in statement.targets if isinstance(t, ast.Name)
                ]
                if "name" in targets and isinstance(statement.value, ast.Constant):
                    return isinstance(statement.value.value, str)
            elif isinstance(statement, ast.AnnAssign):
                if (
                    isinstance(statement.target, ast.Name)
                    and statement.target.id == "name"
                    and isinstance(statement.value, ast.Constant)
                    and isinstance(statement.value.value, str)
                ):
                    return True
        return False

    @staticmethod
    def _registered_factories(registry_module: SourceModule) -> Set[str]:
        """Class names reachable from _FACTORIES values (dict literal
        plus any later ``_FACTORIES[...] = Foo`` item assignments)."""
        names: Set[str] = set()

        def harvest(expression: ast.AST) -> None:
            for inner in ast.walk(expression):
                if isinstance(inner, ast.Name):
                    names.add(inner.id)
                elif isinstance(inner, ast.Attribute):
                    names.add(inner.attr)

        for node in ast.walk(registry_module.tree):
            if isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            elif isinstance(node, ast.Assign):
                targets = list(node.targets)
                value = node.value
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "_FACTORIES"
                    and isinstance(value, ast.Dict)
                ):
                    for item in value.values:
                        harvest(item)
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "_FACTORIES"
                    and value is not None
                ):
                    harvest(value)
        return names
