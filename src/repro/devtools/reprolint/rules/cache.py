"""Cache-key rules (RPL2xx, continued).

PR 7 made component solutions content-addressed: a fingerprint hit must
be provably the same answer a fresh solve would produce, across
processes, machines, and ``PYTHONHASHSEED`` values.  That contract dies
quietly if any hash-seed- or address-dependent material leaks into the
key or the entry bytes — every lookup becomes a miss (the cache "works"
but never hits across processes), or two distinct components collide.
This rule makes the known leaks machine-checked in the two modules that
produce key material.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.devtools.reprolint.model import SourceModule, Violation
from repro.devtools.reprolint.registry import Rule, register
from repro.devtools.reprolint.scopes import in_cache_key_scope

# ----------------------------------------------------------------------
# RPL204 — hash-seed-dependent material in cache-key modules
# ----------------------------------------------------------------------

#: Builtins whose value differs between processes for equal inputs.
_PROCESS_DEPENDENT_BUILTINS = {
    "hash": "hash() is salted by PYTHONHASHSEED for str/bytes",
    "id": "id() is a memory address, unique to one process",
}

#: repr()/str() of these expressions embeds set/dict iteration order.
_UNORDERED_LITERALS = (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)
_UNORDERED_CONSTRUCTORS = {"set", "frozenset", "dict"}

#: Dict views whose iteration order is insertion history, not content.
_DICT_VIEW_METHODS = {"values", "items"}


def _unordered_container(node: ast.AST) -> bool:
    if isinstance(node, _UNORDERED_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _UNORDERED_CONSTRUCTORS
    )


def _dict_view_call(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEW_METHODS
        and not node.args
        and not node.keywords
    ):
        return node.func.attr
    return None


@register
class CacheKeyMaterialRule(Rule):
    rule_id = "RPL204"
    name = "hash-seed-in-cache-key"
    summary = (
        "no hash()/id(), repr() of unordered containers, or unsorted "
        "dict-view iteration in the cache-key modules"
    )
    rationale = (
        "component_fingerprint and the cache entry codec promise that "
        "equal content produces equal bytes in every process.  hash() "
        "is salted by PYTHONHASHSEED, id() is a memory address, and "
        "repr()/iteration of sets and dict views exposes insertion or "
        "hash order — any of these in core/bitspace.py or "
        "engine/cache.py can split one logical key across processes "
        "(permanent misses) or collide two distinct components.  Feed "
        "digests explicit canonical bytes and wrap dict-view iteration "
        "in sorted()."
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_cache_key_scope(module.scope_key)

    def check(self, module: SourceModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                reason = _PROCESS_DEPENDENT_BUILTINS.get(func.id)
                if reason is not None:
                    yield module.violation(
                        self,
                        node,
                        f"{func.id}() call in a cache-key module: {reason}; "
                        "derive key material from explicit canonical bytes",
                    )
                elif func.id in ("repr", "ascii") and any(
                    _unordered_container(arg) for arg in node.args
                ):
                    yield module.violation(
                        self,
                        node,
                        f"{func.id}() of an unordered container embeds "
                        "iteration order in cache-key material; render "
                        "elements in sorted() order instead",
                    )
        for iterable, context in _iteration_sites(module.tree):
            view = _dict_view_call(iterable)
            if view is not None:
                yield module.violation(
                    self,
                    iterable,
                    f"iteration over dict.{view}() in a {context} inside a "
                    "cache-key module; wrap in sorted() so the order is "
                    "content, not insertion history",
                )


def _iteration_sites(tree: ast.Module):
    """(iterable-expression, context) pairs, everywhere in the module.

    Unlike RPL101's scope-aware walker this is deliberately blunt: in
    the two cache-key modules *no* dict-view iteration may rely on
    insertion order, because the reader cannot tell key material from
    bookkeeping at a glance — sorted() documents the intent either way.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, "for loop"
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for generator in node.generators:
                yield generator.iter, "comprehension"
