"""Determinism rules (RPL1xx).

The engine's merge step (PR 1) and the bitmask kernels (PR 2) promise
*bit-identical* outputs across dispatch orders and representations.
Greedy set-cover variants legitimately diverge only at equal
cost/coverage ratios, so any order the code does not pin explicitly —
set iteration order, wall-clock reads, float-equality tie-breaks — is a
place where that promise silently breaks.  These rules make the three
common leaks machine-checked.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.devtools.reprolint.model import SourceModule, Violation
from repro.devtools.reprolint.registry import Rule, register
from repro.devtools.reprolint.scopes import (
    in_core,
    in_determinism_scope,
    in_service_scope,
    in_src,
)

# ----------------------------------------------------------------------
# RPL101 — iteration over unordered sets
# ----------------------------------------------------------------------

_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate"}

#: Calls whose result cannot depend on argument iteration order —
#: a comprehension feeding one of these is exempt.  ``sum`` is absent
#: on purpose: float addition is order-sensitive, and a hash-seeded
#: ``sum`` over a set of weights is precisely the leak this rule hunts.
_ORDER_NEUTRAL_CALLS = {"sorted", "min", "max", "any", "all", "set", "frozenset", "len"}


def _dotted_key(node: ast.AST) -> Optional[str]:
    """``x`` or ``self.x`` (one attribute hop); None for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return f"{node.value.id}.{node.attr}"
    return None


def _is_set_annotation(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr in _SET_ANNOTATIONS
    if isinstance(target, ast.Name):
        return target.id in _SET_ANNOTATIONS
    return False


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Conservatively: does this expression produce an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) or isinstance(node, ast.Attribute):
        key = _dotted_key(node)
        return key is not None and key in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            # x.union(y) is a set only when the receiver already is one
            # (str.union does not exist, but be conservative anyway).
            return _is_set_expr(func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # Set algebra: |, &, ^, - with a known-set operand.  Integer
        # masks never classify because their names carry no evidence.
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, set_names) or _is_set_expr(
            node.orelse, set_names
        )
    return False


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


class _ScopeTable:
    """Flow-insensitive classification of set-typed names in one scope.

    A name counts as set-typed when it carries a set annotation, or it
    has at least one binding and *every* binding is a set-producing
    expression.  Loop/with targets poison the name (we cannot see the
    element type), which keeps the rule conservative: no false
    positives from ``for clf in candidates``-style bindings.
    """

    def __init__(self, inherited: Optional[Set[str]] = None):
        self.inherited: Set[str] = set(inherited or ())
        self.bindings: Dict[str, List[ast.AST]] = {}
        self.annotated: Set[str] = set()
        self.poisoned: Set[str] = set()

    def bind(self, key: Optional[str], value: Optional[ast.AST]) -> None:
        if key is None:
            return
        if value is None:
            self.poisoned.add(key)
        else:
            self.bindings.setdefault(key, []).append(value)

    def annotate(self, key: Optional[str], annotation: Optional[ast.AST]) -> None:
        if key is None:
            return
        if _is_set_annotation(annotation):
            self.annotated.add(key)
        elif annotation is not None:
            # An explicit non-set annotation overrides inherited evidence.
            self.poisoned.add(key)

    def resolve(self) -> Set[str]:
        """Fixpoint over ``a = b`` chains (bounded by scope size)."""
        names = set(self.inherited) | self.annotated
        names -= self.poisoned
        for _ in range(4):
            grown = set(names)
            for key, values in self.bindings.items():
                if key in self.poisoned or key in self.annotated:
                    continue
                if values and all(_is_set_expr(v, names) for v in values):
                    grown.add(key)
                else:
                    grown.discard(key)
            if grown == names:
                break
            names = grown
        return names - self.poisoned


def _collect_targets(node: ast.AST) -> Iterator[Optional[str]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _collect_targets(element)
    elif isinstance(node, ast.Starred):
        yield from _collect_targets(node.value)
    else:
        yield _dotted_key(node)


def _fill_table(body: Iterable[ast.stmt], table: _ScopeTable) -> None:
    """Scan one scope's statements (not descending into nested defs)."""
    for statement in body:
        for node in _walk_same_scope(statement):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    keys = list(_collect_targets(target))
                    if len(keys) == 1:
                        table.bind(keys[0], node.value)
                    else:  # tuple unpacking: element types unknown
                        for key in keys:
                            table.bind(key, None)
            elif isinstance(node, ast.AnnAssign):
                key = _dotted_key(node.target)
                table.annotate(key, node.annotation)
                if node.value is not None and key not in table.annotated:
                    table.bind(key, node.value)
            elif isinstance(node, ast.AugAssign):
                # x |= {...} keeps x's classification from its other
                # bindings; treat as additional evidence only.
                table.bind(_dotted_key(node.target), node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for key in _collect_targets(node.target):
                    table.bind(key, None)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for key in _collect_targets(item.optional_vars):
                            table.bind(key, None)


def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that stops at nested function/class boundaries."""
    yield node
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
    ):
        return
    for child in ast.iter_child_nodes(node):
        yield from _walk_same_scope(child)


def _is_order_neutral_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Name):
        return False
    if node.func.id not in _ORDER_NEUTRAL_CALLS:
        return False
    # min/max with key= pick the *first* minimal element on key ties, so
    # argument order leaks back out; only the bare forms are neutral.
    if node.func.id in ("min", "max") and node.keywords:
        return False
    return True


def _iteration_sites(body: Iterable[ast.stmt]) -> Iterator[Tuple[ast.AST, str]]:
    """(iterable-expression, context) pairs in one scope.

    Comprehensions that are the sole argument of an order-neutral call
    (``sorted(f(c) for c in some_set)``) are exempt: the wrapper erases
    whatever order the generator produced.
    """
    neutralized: set = set()
    for statement in body:
        for node in _walk_same_scope(statement):
            if _is_order_neutral_call(node) and len(node.args) == 1:
                argument = node.args[0]
                if isinstance(
                    argument,
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
                ):
                    neutralized.add(id(argument))
    for statement in body:
        for node in _walk_same_scope(statement):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter, "for loop"
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                if id(node) in neutralized:
                    continue
                for generator in node.generators:
                    yield generator.iter, "comprehension"
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_CALLS
                    and node.args
                ):
                    yield node.args[0], f"{func.id}() call"


@register
class SetIterationRule(Rule):
    rule_id = "RPL101"
    name = "set-iteration"
    summary = (
        "no iteration over set/frozenset/dict.keys() without sorted() "
        "in solver, kernel, and engine modules"
    )
    rationale = (
        "Set iteration order depends on hash seeding and insertion "
        "history; any loop over an unordered set in a solver hot path "
        "can reorder tie-breaks and break the engine's bit-identical "
        "merge contract (PR 1) and the bitmask-equivalence contract "
        "(PR 2).  Wrap the iterable in sorted() to pin a canonical "
        "order, or iterate an already-ordered structure."
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_determinism_scope(module.scope_key)

    def check(self, module: SourceModule) -> Iterable[Violation]:
        yield from self._check_scope(module, module.tree.body, set())

    def _check_scope(
        self,
        module: SourceModule,
        body: Iterable[ast.stmt],
        inherited: Set[str],
        arguments: Optional[ast.arguments] = None,
    ) -> Iterator[Violation]:
        table = _ScopeTable(inherited)
        if arguments is not None:
            for arg in (
                list(arguments.posonlyargs)
                + list(arguments.args)
                + list(arguments.kwonlyargs)
            ):
                table.annotate(arg.arg, arg.annotation)
                if not _is_set_annotation(arg.annotation):
                    table.bind(arg.arg, None)
        _fill_table(body, table)
        set_names = table.resolve()

        for iterable, context in _iteration_sites(body):
            if _is_keys_call(iterable):
                yield module.violation(
                    self,
                    iterable,
                    f"iteration over dict.keys() in a {context}; iterate "
                    "the dict directly (insertion order) or wrap in "
                    "sorted() for a canonical order",
                )
            elif _is_set_expr(iterable, set_names):
                yield module.violation(
                    self,
                    iterable,
                    f"iteration over an unordered set in a {context}; "
                    "wrap the iterable in sorted() to pin the order",
                )

        # Recurse into nested scopes; class bodies share the enclosing
        # set-name view so ``self.x = set()`` evidence collected from
        # method bodies is visible in sibling methods.
        for statement in body:
            for node in _walk_same_scope(statement):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_scope(
                        module, node.body, set_names, node.args
                    )
                elif isinstance(node, ast.ClassDef):
                    class_table = _ScopeTable(set_names)
                    for method in node.body:
                        if isinstance(
                            method, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            _fill_table(method.body, class_table)
                    class_names = class_table.resolve()
                    self_attrs = {
                        key for key in class_names if key.startswith("self.")
                    }
                    yield from self._check_scope(
                        module, node.body, set_names | self_attrs
                    )


# ----------------------------------------------------------------------
# RPL102 — nondeterministic reads in kernels
# ----------------------------------------------------------------------

_NONDET_MODULES = {"random", "time"}
_OS_READS = {"environ", "getenv", "getenvb"}


def _nondet_import(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _NONDET_MODULES:
                return root
    if isinstance(node, ast.ImportFrom) and node.module:
        root = node.module.split(".")[0]
        if node.level == 0 and root in _NONDET_MODULES:
            return root
    return None


def _nondet_use(node: ast.AST, tainted_names: Set[str]) -> Optional[str]:
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        base = node.value.id
        if base in _NONDET_MODULES:
            return f"{base}.{node.attr}"
        if base == "os" and node.attr in _OS_READS:
            return f"os.{node.attr}"
    if isinstance(node, ast.Name) and node.id in tainted_names:
        return node.id
    return None


@register
class NondeterministicReadRule(Rule):
    rule_id = "RPL102"
    name = "nondeterministic-read"
    summary = (
        "no random/time/os.environ reads inside solve_component kernels, "
        "core/ modules, or service/ modules (outside annotated seams)"
    )
    rationale = (
        "solve_component runs under the engine, possibly in a process "
        "pool (PR 1); a wall-clock, RNG, or environment read inside it "
        "(or inside core/ kernels) makes outputs depend on scheduling "
        "and host state.  Timing belongs to Solver.solve, configuration "
        "to constructor parameters.  The planner daemon (service/) "
        "carries the same ban because journal replay must reproduce "
        "live state bit-identically: wall-clock reads are allowed only "
        "at the deadline and journal-timestamp seams, each annotated "
        "with a justified per-line suppression."
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_src(module.scope_key)

    def check(self, module: SourceModule) -> Iterable[Violation]:
        if in_core(module.scope_key):
            yield from self._check_core_module(module)
        if in_service_scope(module.scope_key):
            yield from self._check_service_module(module)
        yield from self._check_solve_component_kernels(module)

    def _check_core_module(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            imported = _nondet_import(node)
            if imported is not None:
                yield module.violation(
                    self,
                    node,
                    f"import of nondeterministic module {imported!r} in a "
                    "core/ kernel module; timing belongs to Solver.solve",
                )
            used = _nondet_use(node, set())
            if used is not None:
                yield module.violation(
                    self,
                    node,
                    f"read of {used} in a core/ kernel module",
                )

    def _check_service_module(self, module: SourceModule) -> Iterator[Violation]:
        """Service-scope leg: module-wide, like core/, but the message
        names the sanctioned escape hatch (annotated clock seams) so a
        violation reads as "route through the seam", not "delete the
        feature"."""
        for node in ast.walk(module.tree):
            imported = _nondet_import(node)
            if imported is not None:
                yield module.violation(
                    self,
                    node,
                    f"import of nondeterministic module {imported!r} in a "
                    "service/ module; clock access belongs to the "
                    "annotated deadline/journal-timestamp seams",
                )
            used = _nondet_use(node, set())
            if used is not None:
                yield module.violation(
                    self,
                    node,
                    f"read of {used} in a service/ module; journal replay "
                    "must reproduce live state — route clock reads "
                    "through an annotated seam",
                )

    def _check_solve_component_kernels(
        self, module: SourceModule
    ) -> Iterator[Violation]:
        # Names bound at module level from random/time via from-imports,
        # e.g. ``from time import perf_counter`` — legitimate for
        # Solver.solve, tainted inside solve_component bodies.
        tainted: Set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.level == 0 and node.module.split(".")[0] in _NONDET_MODULES:
                    for alias in node.names:
                        tainted.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name != "solve_component":
                continue
            for inner in ast.walk(node):
                imported = _nondet_import(inner)
                if imported is not None:
                    yield module.violation(
                        self,
                        inner,
                        f"import of nondeterministic module {imported!r} "
                        "inside a solve_component kernel",
                    )
                used = _nondet_use(inner, tainted)
                if used is not None:
                    yield module.violation(
                        self,
                        inner,
                        f"read of {used} inside a solve_component kernel; "
                        "kernels must be pure functions of the component",
                    )


# ----------------------------------------------------------------------
# RPL103 — float equality on costs in tie-break positions
# ----------------------------------------------------------------------

_COST_TOKENS = ("cost", "weight", "ratio", "price")


def _cost_like(node: ast.AST) -> bool:
    base = node
    if isinstance(base, ast.UnaryOp):
        base = base.operand
    if isinstance(base, ast.Subscript):
        base = base.value
    if isinstance(base, ast.Call):
        base = base.func
    name: Optional[str] = None
    if isinstance(base, ast.Attribute):
        name = base.attr
    elif isinstance(base, ast.Name):
        name = base.id
    if name is None:
        return False
    lowered = name.lower()
    return any(token in lowered for token in _COST_TOKENS)


@register
class FloatCostEqualityRule(Rule):
    rule_id = "RPL103"
    name = "float-cost-equality"
    summary = "no float ==/!= between cost expressions in tie-break positions"
    rationale = (
        "Greedy set-cover variants legitimately diverge only at equal "
        "cost ratios, so a float ==/!= between two computed costs is "
        "exactly where platform-dependent rounding changes which branch "
        "a tie-break takes.  Compare against assignment-pinned "
        "sentinels (0.0, math.inf) or restructure the tie-break around "
        "integer keys; genuinely-exact DP tie-breaks carry a justified "
        "suppression."
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_determinism_scope(module.scope_key)

    def check(self, module: SourceModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, operator in enumerate(node.ops):
                if not isinstance(operator, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _cost_like(left) and _cost_like(right):
                    yield module.violation(
                        self,
                        node,
                        "float equality between two cost expressions in a "
                        "tie-break position; compare pinned sentinels or "
                        "integer keys instead",
                    )
