"""Mask-boundary rules (RPL2xx).

PR 2 rewrote six hot-path modules onto interned integer bitmasks; the
frozenset representation crosses into them only through the
:class:`~repro.core.bitspace.PropertySpace` boundary (``mask_of`` /
``set_of``).  The verbatim pre-change kernels live in
``core/reference.py`` as an equivalence oracle that nothing in the
package proper may import.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.reprolint.model import SourceModule, Violation
from repro.devtools.reprolint.registry import Rule, register
from repro.devtools.reprolint.scopes import (
    in_kernels_package,
    in_mask_scope,
    in_src,
    in_tests_or_benchmarks,
    is_reference_module,
)

# ----------------------------------------------------------------------
# RPL201 — frozenset operations in mask-rewritten modules
# ----------------------------------------------------------------------

_FROZENSET_METHODS = {
    "issubset",
    "issuperset",
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "isdisjoint",
}

#: Frozenset-based enumeration helpers superseded by the PropertySpace
#: mask enumerators (iter_subset_masks & co.).
_FROZENSET_ENUMERATORS = {
    "iter_nonempty_subsets",
    "iter_two_partitions",
    "iter_two_covers",
}


@register
class FrozensetInMaskModuleRule(Rule):
    rule_id = "RPL201"
    name = "frozenset-in-mask-module"
    summary = (
        "no direct frozenset operations in the mask-rewritten modules "
        "outside the PropertySpace boundary"
    )
    rationale = (
        "core/mincover, preprocess/dominated, preprocess/decompose, "
        "reductions/mc3_to_wsc, setcover/greedy and setcover/"
        "bucket_greedy run on interned bitmasks (PR 2); a frozenset "
        "construction, set-method call, or frozenset enumerator "
        "reintroduced there bypasses the interning and silently "
        "forfeits both the speedup and the bit-identical equivalence "
        "the reference oracle checks.  Marshal through "
        "PropertySpace.mask_of / set_of instead."
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_mask_scope(module.scope_key)

    def check(self, module: SourceModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "frozenset":
                    yield module.violation(
                        self,
                        node,
                        "frozenset() constructed in a mask-rewritten module; "
                        "marshal through PropertySpace.set_of/mask_of",
                    )
                elif isinstance(func, ast.Name) and func.id in _FROZENSET_ENUMERATORS:
                    yield module.violation(
                        self,
                        node,
                        f"{func.id}() enumerates frozensets; use the "
                        "PropertySpace mask enumerators "
                        "(iter_subset_masks & co.)",
                    )
                elif isinstance(func, ast.Attribute) and (
                    func.attr in _FROZENSET_METHODS
                ):
                    yield module.violation(
                        self,
                        node,
                        f".{func.attr}() set-method call in a mask-rewritten "
                        "module; use mask algebra (&, |, ^, & ~) instead",
                    )
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in _FROZENSET_ENUMERATORS:
                        yield module.violation(
                            self,
                            node,
                            f"import of frozenset enumerator {alias.name!r} "
                            "in a mask-rewritten module",
                        )


# ----------------------------------------------------------------------
# RPL202 — importing the reference oracle from package code
# ----------------------------------------------------------------------

_REFERENCE_DOTTED = "repro.core.reference"


@register
class ReferenceImportRule(Rule):
    rule_id = "RPL202"
    name = "reference-kernel-import"
    summary = (
        "core/reference.py may only be reached via "
        "patch_reference_kernels(), tests, or benchmarks"
    )
    rationale = (
        "The reference module keeps the pre-bitset kernels verbatim as "
        "an equivalence oracle; importing it from package code would "
        "turn the oracle into a dependency and let a 'fallback' quietly "
        "serve the slow path.  Tests and benchmarks reach it through "
        "patch_reference_kernels(); nothing else imports it."
    )

    def applies_to(self, module: SourceModule) -> bool:
        return (
            in_src(module.scope_key)
            and not is_reference_module(module.scope_key)
            and not in_tests_or_benchmarks(module.path)
        )

    def check(self, module: SourceModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith(_REFERENCE_DOTTED):
                        yield self._flag(module, node)
            elif isinstance(node, ast.ImportFrom):
                if node.module == _REFERENCE_DOTTED or (
                    node.level > 0 and node.module == "reference"
                ):
                    yield self._flag(module, node)
            elif isinstance(node, ast.Call):
                func = node.func
                is_import_module = (
                    isinstance(func, ast.Attribute) and func.attr == "import_module"
                ) or (isinstance(func, ast.Name) and func.id == "import_module")
                if is_import_module and any(
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and _REFERENCE_DOTTED in arg.value
                    for arg in node.args
                ):
                    yield self._flag(module, node)

    def _flag(self, module: SourceModule, node: ast.AST) -> Violation:
        return module.violation(
            self,
            node,
            "package code imports the reference oracle "
            f"({_REFERENCE_DOTTED}); only patch_reference_kernels(), "
            "tests, and benchmarks may reach it",
        )


# ----------------------------------------------------------------------
# RPL203 — importing kernel backend implementations directly
# ----------------------------------------------------------------------

_KERNEL_IMPL_MODULES = (
    "repro.core.kernels.pyjit",
    "repro.core.kernels.array",
)

_KERNEL_PACKAGE = "repro.core.kernels"

_KERNEL_IMPL_NAMES = tuple(name.rsplit(".", 1)[1] for name in _KERNEL_IMPL_MODULES)


@register
class KernelImplImportRule(Rule):
    rule_id = "RPL203"
    name = "kernel-impl-import"
    summary = (
        "backend implementation modules (core/kernels/pyjit.py, "
        "core/kernels/array.py) may only be imported inside "
        "core/kernels/, tests, or benchmarks"
    )
    rationale = (
        "The kernel layer's whole point is that callers pick a backend "
        "through the registry (get_backend / use_backend), which "
        "resolves availability, the environment default, and per-route "
        "overrides.  Package code importing repro.core.kernels.pyjit or "
        ".array directly hard-wires one implementation, bypasses the "
        "availability guard (the array module imports numpy), and makes "
        "the backend choice invisible to telemetry.  Go through "
        "repro.core.kernels (the registry) instead."
    )

    def applies_to(self, module: SourceModule) -> bool:
        return (
            in_src(module.scope_key)
            and not in_kernels_package(module.scope_key)
            and not in_tests_or_benchmarks(module.path)
        )

    def check(self, module: SourceModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith(_KERNEL_IMPL_MODULES):
                        yield self._flag(module, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module in _KERNEL_IMPL_MODULES:
                    yield self._flag(module, node, node.module)
                elif node.module == _KERNEL_PACKAGE:
                    for alias in node.names:
                        if alias.name in _KERNEL_IMPL_NAMES:
                            yield self._flag(
                                module,
                                node,
                                f"{_KERNEL_PACKAGE}.{alias.name}",
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                is_import_module = (
                    isinstance(func, ast.Attribute) and func.attr == "import_module"
                ) or (isinstance(func, ast.Name) and func.id == "import_module")
                if is_import_module and any(
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith(_KERNEL_IMPL_MODULES)
                    for arg in node.args
                ):
                    yield self._flag(module, node, "a kernel impl module")

    def _flag(self, module: SourceModule, node: ast.AST, which: str) -> Violation:
        return module.violation(
            self,
            node,
            f"direct import of kernel backend implementation ({which}); "
            "resolve backends through the repro.core.kernels registry "
            "(get_backend / use_backend) instead",
        )
