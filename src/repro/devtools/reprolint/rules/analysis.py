"""Whole-program rules (RPL5xx): interprocedural determinism taint,
kernel-backend purity, and the seeded-randomness discipline.

These rules only run under ``--analyze``: they consume the shared
:class:`~repro.devtools.reprolint.analysis.WholeProgramAnalysis`
(module graph → call graph → taint fixpoint) built once per run.
RPL101/RPL204 stay as the fast per-file guards; this family exists for
the flows they provably cannot see — a nondeterministic value that
crosses at least one function call before reaching a solver return or
the cache fingerprint.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional, Tuple

from repro.devtools.reprolint.analysis.callgraph import _local_aliases, iter_calls
from repro.devtools.reprolint.analysis.taint import _is_seeded_rng
from repro.devtools.reprolint.model import SourceModule, Violation
from repro.devtools.reprolint.registry import AnalysisRule, register
from repro.devtools.reprolint.scopes import in_kernels_package, repro_relative

#: Kernel modules exempt from the purity contract: the registry *is*
#: the sanctioned config surface, and api.py only declares protocols.
_KERNEL_CONTRACT_EXEMPT = (
    "core/kernels/__init__.py",
    "core/kernels/registry.py",
    "core/kernels/api.py",
)

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = {
    "append",
    "add",
    "update",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "extend",
    "insert",
    "sort",
    "reverse",
    "setdefault",
}

#: Parameters a kernel is *supposed* to write through: the dominated
#: pruner's whole job is to mark rows in the caller-owned overlay.
_WRITABLE_PARAM_NAMES = {"overlay"}


def _origin_suffix(labels: Tuple[str, ...]) -> str:
    if not labels:
        return ""
    shown = ", ".join(labels[:3])
    more = f" (+{len(labels) - 3} more)" if len(labels) > 3 else ""
    return f"; origin: {shown}{more}"


class _TaintSinkRule(AnalysisRule):
    """Shared plumbing: map taint-engine findings to violations."""

    #: finding kind → message template ({fn} = enclosing function key).
    kinds: Dict[str, str] = {}

    def check_program(self, analysis) -> Iterable[Violation]:
        for finding in analysis.findings:
            template = self.kinds.get(finding.kind)
            if template is None:
                continue
            message = template.format(fn=finding.function_key)
            yield finding.module.violation(
                self, finding.node, message + _origin_suffix(finding.labels)
            )


@register
class SolveReturnTaintRule(_TaintSinkRule):
    rule_id = "RPL501"
    name = "tainted-solver-result"
    summary = (
        "no nondeterministic taint may reach a solve_component return "
        "or a Solution/PartialSolution constructor"
    )
    rationale = (
        "The engine's bit-identity contract (pyjit ≡ array, --jobs 1 ≡ "
        "pooled, cached ≡ fresh) holds only if every solver result is a "
        "pure function of its component.  A value whose content depends "
        "on set-iteration order, hash(), or a clock can cross any "
        "number of helper calls before landing in the returned "
        "solution; the per-file rules stop seeing it after the first "
        "hop.  This rule follows it the whole way.  Sanitize with "
        "sorted()/classifier_sort_key, an order-neutral reduction, or "
        "an explicit `# reprolint: sanitize` judgment."
    )
    kinds = {
        "solve-return": (
            "nondeterministic taint reaches the return value of {fn}"
        ),
        "solution-ctor": (
            "nondeterministic taint reaches a Solution/PartialSolution "
            "constructor argument in {fn}"
        ),
    }


@register
class CacheKeyTaintRule(_TaintSinkRule):
    rule_id = "RPL502"
    name = "tainted-cache-key"
    summary = (
        "no nondeterministic taint may reach component_fingerprint() "
        "arguments or a content_token() result"
    )
    rationale = (
        "component_fingerprint() and the cache_token chain are the "
        "identity of a cache entry.  Tainted key material does not "
        "crash — it silently splits one logical key into many "
        "(permanent misses) or, worse, collides two distinct "
        "components and serves the wrong cached solution.  The "
        "interprocedural pass guards the arguments at every call site "
        "and every content_token() implementation's return."
    )
    kinds = {
        "fingerprint-arg": (
            "nondeterministic taint reaches a component_fingerprint() "
            "argument in {fn}"
        ),
        "content-token": (
            "nondeterministic taint reaches the content_token() result "
            "of {fn}"
        ),
    }


@register
class ServiceStateTaintRule(_TaintSinkRule):
    rule_id = "RPL505"
    name = "tainted-service-state"
    summary = (
        "no nondeterministic taint may reach a journal append_batch() "
        "or a planner add_batch() argument"
    )
    rationale = (
        "The daemon's recovery contract is that replaying the journal "
        "through a fresh IncrementalPlanner reproduces the live "
        "planner's state bit-identically.  Both halves are sinks: a "
        "tainted value written via append_batch() replays differently "
        "than it ran live, and a tainted value applied via add_batch() "
        "makes live state the journal cannot reproduce.  Clock-derived "
        "values that legitimately cross (the resolved deadline budget) "
        "are sanitized exactly once, at the line where they are "
        "resolved and recorded, with `# reprolint: sanitize`."
    )
    kinds = {
        "journal-append": (
            "nondeterministic taint reaches a journal append_batch() "
            "argument in {fn}"
        ),
        "planner-state": (
            "nondeterministic taint reaches a planner add_batch() "
            "argument in {fn}"
        ),
    }


@register
class KernelPurityRule(AnalysisRule):
    rule_id = "RPL503"
    name = "kernel-backend-purity"
    summary = (
        "kernel backend implementations may not write globals, mutate "
        "their instance/grid arguments, or read ambient config"
    )
    rationale = (
        "use_backend() scoping and the pyjit ≡ array equivalence suite "
        "are sound only if a kernel call is a pure function of its "
        "explicit arguments: no global writes (state leaking across "
        "calls), no mutation of the WSCInstance or mask grids the "
        "caller still owns (the next backend would see different "
        "input), and no os.environ reads outside the registry (the "
        "registry is the single sanctioned config surface).  The "
        "dominated pruner's caller-provided `overlay` parameter is the "
        "one sanctioned write-through."
    )

    def check_program(self, analysis) -> Iterable[Violation]:
        for module in analysis.modules:
            rel = repro_relative(module.scope_key)
            if rel is None or rel in _KERNEL_CONTRACT_EXEMPT:
                continue
            if not in_kernels_package(module.scope_key):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterable[Violation]:
        yield from self._check_env_reads(module)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_env_reads(self, module: SourceModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
                and node.attr in ("environ", "getenv", "getenvb")
            ):
                yield module.violation(
                    self,
                    node,
                    "kernel implementation reads ambient config "
                    f"(os.{node.attr}); backend selection and tuning "
                    "must flow through the registry",
                )

    def _check_function(
        self, module: SourceModule, function: ast.FunctionDef
    ) -> Iterable[Violation]:
        params = {
            arg.arg
            for arg in list(function.args.posonlyargs)
            + list(function.args.args)
            + list(function.args.kwonlyargs)
        }
        params.discard("self")
        params -= _WRITABLE_PARAM_NAMES
        for node in function.body:
            yield from self._check_statements(module, function, node, params)

    def _check_statements(
        self,
        module: SourceModule,
        function: ast.FunctionDef,
        node: ast.AST,
        params: set,
    ) -> Iterable[Violation]:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Global):
                yield module.violation(
                    self,
                    inner,
                    f"kernel function {function.name}() declares "
                    f"`global {', '.join(inner.names)}`; kernels must "
                    "not carry state across calls",
                )
            elif isinstance(inner, (ast.Assign, ast.AugAssign)):
                targets = (
                    inner.targets
                    if isinstance(inner, ast.Assign)
                    else [inner.target]
                )
                for target in targets:
                    root = self._param_root(target, params)
                    if root is not None:
                        yield module.violation(
                            self,
                            target,
                            f"kernel function {function.name}() writes "
                            f"into its argument `{root}`; the caller "
                            "still owns it",
                        )
            elif isinstance(inner, ast.Call):
                func = inner.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                ):
                    root = self._param_root(func.value, params, reads_ok=False)
                    if root is not None:
                        yield module.violation(
                            self,
                            inner,
                            f"kernel function {function.name}() calls "
                            f"`.{func.attr}()` on its argument "
                            f"`{root}`; the caller still owns it",
                        )

    @staticmethod
    def _param_root(
        target: ast.AST, params: set, reads_ok: bool = True
    ) -> Optional[str]:
        """Name of the parameter a write lands in, if any.

        ``p.x = v`` / ``p[i] = v`` / ``p.rows[i] = v`` all root at
        ``p``; a bare ``p = v`` rebinds the local and is fine when
        ``reads_ok`` (it does not touch the caller's object).
        """
        node = target
        dereferenced = False
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            dereferenced = True
            node = node.value
        if not dereferenced and reads_ok:
            return None
        if isinstance(node, ast.Name) and node.id in params:
            return node.id
        return None


@register
class UnseededRandomnessRule(AnalysisRule):
    rule_id = "RPL504"
    name = "unseeded-random-in-solver-path"
    summary = (
        "code reachable from solve_component may not draw from the "
        "global random module or construct an unseeded Random()"
    )
    rationale = (
        "The upcoming sampling-based sub-linear set-cover backend will "
        "put randomness inside solver kernels on purpose.  The "
        "discipline that keeps results reproducible is seed threading: "
        "construct random.Random(seed) from an explicit component-"
        "derived seed and pass the instance down.  The module-level "
        "random functions share hidden global state (seeded from OS "
        "entropy), and an argument-less Random() does the same — both "
        "are unreproducible by construction, so they are banned on "
        "every call path reachable from any solve_component."
    )

    def check_program(self, analysis) -> Iterable[Violation]:
        callgraph = analysis.call_graph
        roots = callgraph.solve_component_keys()
        for key in callgraph.reachable_from(roots):
            info = callgraph.functions[key]
            module = info.table.module
            aliases = _local_aliases(info.node)
            for call in iter_calls(info.node):
                message = self._offence(analysis, info, call, aliases)
                if message is not None:
                    yield module.violation(
                        self, call, f"{message} in {key}, which is "
                        "reachable from solve_component; thread an "
                        "explicit random.Random(seed) instead"
                    )

    @staticmethod
    def _offence(
        analysis, info, call: ast.Call, aliases: Dict[str, str]
    ) -> Optional[str]:
        dotted = analysis.module_graph.resolve_dotted(
            info.table, call.func, aliases
        )
        if dotted is None:
            return None
        if dotted == "random.Random":
            if _is_seeded_rng(call):
                return None
            return "unseeded random.Random() constructed"
        if dotted == "random.SystemRandom":
            return "random.SystemRandom() (OS entropy) constructed"
        if dotted == "random.seed":
            return "global random.seed() called (shared hidden state)"
        if dotted.startswith("random."):
            return f"global-state {dotted}() called"
        return None
