"""Hygiene rules (RPL4xx) and the RPL001 unused-suppression meta-rule.

Not determinism-specific, but both have bitten solver codebases in the
same way: a mutable default shared across calls turns a pure kernel
stateful, and a bare ``except:`` swallows the loud failures (verify
errors, UncoverableQueryError) the pipeline relies on.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.reprolint.model import SourceModule, Violation
from repro.devtools.reprolint.registry import Rule, register
from repro.devtools.reprolint.scopes import in_resilience_scope, in_src

@register
class UnusedSuppressionRule(Rule):
    """Meta-rule: its findings are emitted by the *runner*, which is
    the only place that knows which suppression comments matched a
    violation during the run.  Registering it here gives it a stable
    id, a catalogue entry, and ``--select``/``--ignore`` handling."""

    rule_id = "RPL001"
    name = "unused-suppression"
    summary = (
        "a `# reprolint: ignore[...]` comment must silence at least "
        "one finding; stale suppressions are findings themselves"
    )
    rationale = (
        "A suppression that matches nothing is worse than dead code: "
        "it asserts a judgment ('this line is exempt from rule X') "
        "about a violation that no longer exists, and it will silently "
        "eat the next real finding that appears on that line.  When a "
        "comment is only needed as a taint sanitizer, write "
        "`# reprolint: sanitize` instead of suppressing a rule that "
        "does not fire.  Opt out per-run with "
        "--allow-unused-suppressions (e.g. on partial-tree runs)."
    )

    # check() intentionally yields nothing — see class docstring.


_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in _MUTABLE_CONSTRUCTORS
        if isinstance(func, ast.Attribute):
            return func.attr in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultRule(Rule):
    rule_id = "RPL401"
    name = "mutable-default-argument"
    summary = "no mutable default arguments in src/"
    rationale = (
        "A mutable default is evaluated once and shared across every "
        "call; a kernel that appends to it returns different output on "
        "the second invocation — the exact class of hidden state the "
        "determinism suites cannot see from a single run.  Default to "
        "None and construct inside the body."
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_src(module.scope_key)

    def check(self, module: SourceModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            arguments = node.args
            defaults = list(arguments.defaults) + [
                default for default in arguments.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield module.violation(
                        self,
                        default,
                        f"mutable default argument in {label}(); use None "
                        "and construct inside the body",
                    )


@register
class BareExceptRule(Rule):
    rule_id = "RPL402"
    name = "bare-except"
    summary = "no bare except: clauses in src/"
    rationale = (
        "Solver.solve verifies every output and raises loudly on "
        "infeasibility; a bare except: (which also catches "
        "KeyboardInterrupt/SystemExit) can convert those loud failures "
        "into silently wrong solutions.  Catch the narrowest exception "
        "that the handler actually handles."
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_src(module.scope_key)

    def check(self, module: SourceModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield module.violation(
                    self,
                    node,
                    "bare except: clause; catch the narrowest exception "
                    "the handler can actually handle",
                )


def _caught_names(type_node: ast.AST) -> Iterable[ast.AST]:
    """The individual exception expressions of an ``except`` clause
    (a tuple clause yields each member)."""
    if isinstance(type_node, ast.Tuple):
        for element in type_node.elts:
            yield element
    else:
        yield type_node


def _exception_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


@register
class BroadExceptInResilienceRule(Rule):
    rule_id = "RPL404"
    name = "broad-except-in-fault-path"
    summary = (
        "engine/ and the chaos harness must catch named exceptions, "
        "never Exception, and must re-raise KeyboardInterrupt/SystemExit"
    )
    rationale = (
        "The resilient executor's whole contract is that every caught "
        "failure is *classified* — error, timeout, crash, infeasible, "
        "uncoverable — and recorded as a ComponentFailure.  An `except "
        "Exception:` in that perimeter cannot classify what it caught, "
        "so it converts unknown bugs into quietly degraded solutions; "
        "and a handler that swallows KeyboardInterrupt or SystemExit "
        "turns Ctrl-C into an infinite retry loop.  Catch ReproError "
        "subclasses or specific named stdlib exceptions, and if "
        "KeyboardInterrupt/SystemExit/BaseException appear in a clause "
        "the handler must re-raise (a bare `raise`)."
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_resilience_scope(module.scope_key)

    def check(self, module: SourceModule) -> Iterable[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue  # bare except: is RPL402's finding
            names = [_exception_name(expr) for expr in _caught_names(node.type)]
            if "Exception" in names:
                yield module.violation(
                    self,
                    node,
                    "except Exception: in the fault-handling perimeter; "
                    "catch ReproError subclasses or the specific stdlib "
                    "exceptions the handler classifies",
                )
            interrupting = [
                name
                for name in names
                if name in ("BaseException", "KeyboardInterrupt", "SystemExit")
            ]
            if interrupting and not _reraises(node):
                yield module.violation(
                    self,
                    node,
                    f"handler catches {', '.join(interrupting)} without a "
                    "bare `raise`; interpreter-exit exceptions must "
                    "propagate out of the fault-handling perimeter",
                )
