"""reprolint — AST-based determinism & solver-contract linter.

A stdlib-only, pluggable static-analysis pass that machine-checks the
contracts PRs 1–2 made load-bearing: bit-identical engine merges, the
bitmask/frozenset equivalence boundary, and the ComponentSolver/
registry surface.  See ``docs/devtools.md`` for the rule catalogue and
the suppression syntax (``# reprolint: ignore[RULE-ID] why``).

Programmatic use::

    from repro.devtools.reprolint import lint_paths
    result = lint_paths(["src", "tests", "benchmarks"])
    assert result.ok, [v.render() for v in result.violations]
"""

from repro.devtools.reprolint.model import SourceModule, Violation
from repro.devtools.reprolint.registry import (
    AnalysisRule,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register,
)
from repro.devtools.reprolint.reporters import (
    as_json_document,
    as_sarif_document,
    render_json,
    render_sarif,
    render_text,
)
from repro.devtools.reprolint.runner import (
    SYNTAX_ERROR_ID,
    UNUSED_SUPPRESSION_ID,
    LintResult,
    PathError,
    collect_files,
    lint_paths,
)

__all__ = [
    "SYNTAX_ERROR_ID",
    "UNUSED_SUPPRESSION_ID",
    "AnalysisRule",
    "LintResult",
    "PathError",
    "ProjectRule",
    "Rule",
    "SourceModule",
    "Violation",
    "all_rules",
    "as_json_document",
    "as_sarif_document",
    "collect_files",
    "get_rule",
    "lint_paths",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
]
