"""Command-line interface.

Usage::

    python -m repro.devtools.reprolint src tests benchmarks
    python -m repro.devtools.reprolint --format json src
    python -m repro.devtools.reprolint --list-rules
    python -m repro.devtools.reprolint --select RPL101,RPL103 src

Exit codes: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.devtools.reprolint.registry import all_rules
from repro.devtools.reprolint.reporters import render_json, render_text
from repro.devtools.reprolint.runner import collect_files, lint_paths


def _rule_id_list(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based determinism & solver-contract linter for the MC3 "
            "reproduction (stdlib-only; see docs/devtools.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        type=_rule_id_list,
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=_rule_id_list,
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_rule_catalogue() -> None:
    for rule in all_rules():
        kind = "project" if hasattr(rule, "check_project") else "module"
        print(f"{rule.rule_id}  {rule.name}  ({kind})")
        print(f"    {rule.summary}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        _print_rule_catalogue()
        return 0

    if not options.paths:
        parser.print_usage(sys.stderr)
        print("reprolint: error: no paths given", file=sys.stderr)
        return 2

    if not collect_files(options.paths):
        print("reprolint: error: no Python files under the given paths", file=sys.stderr)
        return 2

    try:
        result = lint_paths(options.paths, options.select, options.ignore)
    except KeyError as error:
        known = ", ".join(rule.rule_id for rule in all_rules())
        print(
            f"reprolint: error: unknown rule id {error.args[0]!r} "
            f"(known: {known})",
            file=sys.stderr,
        )
        return 2

    if options.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
