"""Command-line interface.

Usage::

    python -m repro.devtools.reprolint src tests benchmarks
    python -m repro.devtools.reprolint --format json src
    python -m repro.devtools.reprolint --jobs 4 src tests benchmarks
    python -m repro.devtools.reprolint --analyze --baseline reprolint-baseline.json src
    python -m repro.devtools.reprolint --analyze --write-baseline reprolint-baseline.json src
    python -m repro.devtools.reprolint --list-rules
    python -m repro.devtools.reprolint --select RPL101,RPL103 src

Exit codes: 0 clean, 1 violations found (including new-vs-baseline
findings and stale baseline entries), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.devtools.reprolint import baseline as baseline_mod
from repro.devtools.reprolint.registry import all_rules
from repro.devtools.reprolint.reporters import (
    render_json,
    render_sarif,
    render_text,
)
from repro.devtools.reprolint.runner import PathError, lint_paths


def _rule_id_list(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based determinism & solver-contract linter for the MC3 "
            "reproduction (stdlib-only; see docs/devtools.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        type=_rule_id_list,
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=_rule_id_list,
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "parse and run per-module rules in N worker processes; "
            "output is byte-identical to --jobs 1 (default: 1)"
        ),
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help=(
            "build the whole-program analysis (module graph, call "
            "graph, taint fixpoint) and run the RPL5xx rules"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "compare findings against a checked-in baseline: only "
            "findings absent from FILE fail the run, and baseline "
            "entries that no longer reproduce fail it too"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help=(
            "write the current findings to FILE as a baseline "
            "(preserving justifications for unchanged entries) and exit 0"
        ),
    )
    parser.add_argument(
        "--allow-unused-suppressions",
        action="store_true",
        help="do not report stale `# reprolint: ignore` comments (RPL001)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_rule_catalogue() -> None:
    for rule in all_rules():
        if getattr(rule, "requires_analysis", False):
            kind = "analysis"
        elif hasattr(rule, "check_project"):
            kind = "project"
        else:
            kind = "module"
        print(f"{rule.rule_id}  {rule.name}  ({kind})")
        print(f"    {rule.summary}")


_RENDERERS = {"text": render_text, "json": render_json, "sarif": render_sarif}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        _print_rule_catalogue()
        return 0

    if not options.paths:
        parser.print_usage(sys.stderr)
        print("reprolint: error: no paths given", file=sys.stderr)
        return 2

    if options.jobs < 1:
        print("reprolint: error: --jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        result = lint_paths(
            options.paths,
            options.select,
            options.ignore,
            jobs=options.jobs,
            analyze=options.analyze,
            allow_unused_suppressions=options.allow_unused_suppressions,
        )
    except PathError as error:
        print(f"reprolint: error: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        known = ", ".join(rule.rule_id for rule in all_rules())
        print(
            f"reprolint: error: unknown rule id {error.args[0]!r} "
            f"(known: {known})",
            file=sys.stderr,
        )
        return 2

    if result.files_scanned == 0 and not result.violations:
        print(
            "reprolint: error: no Python files under the given paths",
            file=sys.stderr,
        )
        return 2

    if options.write_baseline:
        previous = baseline_mod.load_baseline(options.write_baseline)
        document = baseline_mod.render_baseline(
            result.violations, result.modules_by_path, previous
        )
        with open(options.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(
            f"reprolint: wrote {len(result.violations)} finding(s) to "
            f"{options.write_baseline}"
        )
        return 0

    if options.baseline:
        entries = baseline_mod.load_baseline(options.baseline)
        new, matched, stale = baseline_mod.apply_baseline(
            result.violations, result.modules_by_path, entries
        )
        result.violations = new
        renderer = _RENDERERS[options.format]
        print(renderer(result))
        for entry in stale:
            print(
                "reprolint: stale baseline entry (no longer reproduces): "
                f"{entry.get('rule')} {entry.get('path')} "
                f"[key {entry.get('key')}] — delete it from the baseline",
                file=sys.stderr,
            )
        if options.format == "text":
            print(
                f"reprolint: baseline: {matched} matched, "
                f"{len(new)} new, {len(stale)} stale"
            )
        return 0 if not new and not stale else 1

    renderer = _RENDERERS[options.format]
    print(renderer(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
