"""Violation reporters: human-readable text, machine JSON, and SARIF.

The JSON document is a stable schema (``version`` 1) for CI tooling::

    {
      "tool": "reprolint",
      "version": 1,
      "files_scanned": 190,
      "rules": ["RPL101", ...],
      "violations": [
        {"rule": "RPL101", "name": "set-iteration",
         "path": "src/repro/x.py", "line": 3, "column": 8,
         "message": "..."}
      ],
      "counts": {"total": 1, "suppressed": 2, "by_rule": {"RPL101": 1}}
    }
"""

from __future__ import annotations

import json
from typing import Dict

from repro.devtools.reprolint.registry import all_rules
from repro.devtools.reprolint.runner import LintResult

JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    lines = [f"reprolint: warning: {warning}" for warning in result.warnings]
    lines += [violation.render() for violation in result.violations]
    noun = "file" if result.files_scanned == 1 else "files"
    summary = (
        f"reprolint: {len(result.violations)} violation(s), "
        f"{result.suppressed} suppressed, "
        f"{result.files_scanned} {noun} scanned"
    )
    lines.append(summary)
    return "\n".join(lines)


def as_json_document(result: LintResult) -> Dict[str, object]:
    return {
        "tool": "reprolint",
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "rules": list(result.rule_ids),
        "violations": [v.as_json() for v in result.violations],
        "counts": {
            "total": len(result.violations),
            "suppressed": result.suppressed,
            "by_rule": result.counts_by_rule(),
        },
    }


def render_json(result: LintResult) -> str:
    return json.dumps(as_json_document(result), indent=2, sort_keys=True)


def as_sarif_document(result: LintResult) -> Dict[str, object]:
    """Minimal SARIF 2.1.0 log: one run, one result per violation.

    SARIF is what code-scanning UIs (GitHub, VS Code SARIF viewers)
    ingest; columns are 1-based there, so ``startColumn`` is the
    violation's 0-based column plus one.
    """
    executed = set(result.rule_ids)
    rules = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
        }
        for rule in all_rules()
        if rule.rule_id in executed
    ]
    results = [
        {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": violation.path},
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.column + 1,
                        },
                    }
                }
            ],
        }
        for violation in result.violations
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/devtools.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    return json.dumps(as_sarif_document(result), indent=2, sort_keys=True)
