"""Violation reporters: human-readable text and machine-readable JSON.

The JSON document is a stable schema (``version`` 1) for CI tooling::

    {
      "tool": "reprolint",
      "version": 1,
      "files_scanned": 190,
      "rules": ["RPL101", ...],
      "violations": [
        {"rule": "RPL101", "name": "set-iteration",
         "path": "src/repro/x.py", "line": 3, "column": 8,
         "message": "..."}
      ],
      "counts": {"total": 1, "suppressed": 2, "by_rule": {"RPL101": 1}}
    }
"""

from __future__ import annotations

import json
from typing import Dict

from repro.devtools.reprolint.runner import LintResult

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    lines = [violation.render() for violation in result.violations]
    noun = "file" if result.files_scanned == 1 else "files"
    summary = (
        f"reprolint: {len(result.violations)} violation(s), "
        f"{result.suppressed} suppressed, "
        f"{result.files_scanned} {noun} scanned"
    )
    lines.append(summary)
    return "\n".join(lines)


def as_json_document(result: LintResult) -> Dict[str, object]:
    return {
        "tool": "reprolint",
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "rules": list(result.rule_ids),
        "violations": [v.as_json() for v in result.violations],
        "counts": {
            "total": len(result.violations),
            "suppressed": result.suppressed,
            "by_rule": result.counts_by_rule(),
        },
    }


def render_json(result: LintResult) -> str:
    return json.dumps(as_json_document(result), indent=2, sort_keys=True)
