"""File collection and rule execution.

The runner parses each file once, runs every applicable per-module rule
on it, runs project rules once over the whole scanned set, filters
suppressed findings, and returns a :class:`LintResult` the reporters
render.  Unparseable files surface as ``RPL000`` findings rather than
crashing the run, so a syntax error in one file never hides findings in
the rest of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.devtools.reprolint.model import SourceModule, Violation
from repro.devtools.reprolint.registry import ProjectRule, Rule, all_rules

#: Pseudo-rule id for files the parser rejects.
SYNTAX_ERROR_ID = "RPL000"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    rule_ids: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return counts


def collect_files(paths: Sequence["str | Path"]) -> List[Path]:
    """Python files under the given files/directories, sorted, deduped."""
    seen = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(part in _SKIP_DIR_NAMES for part in candidate.parts):
                continue
            seen[candidate.as_posix()] = candidate
    return [seen[key] for key in sorted(seen)]


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Registered rules filtered by explicit select/ignore id lists."""
    rules = all_rules()
    known = {rule.rule_id for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise KeyError(requested)
    if select:
        rules = [rule for rule in rules if rule.rule_id in set(select)]
    if ignore:
        rules = [rule for rule in rules if rule.rule_id not in set(ignore)]
    return rules


def lint_paths(
    paths: Sequence["str | Path"],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint files/directories; returns the full result (never raises on
    findings — the CLI turns them into the exit code)."""
    rules = select_rules(select, ignore)
    result = LintResult(rule_ids=[rule.rule_id for rule in rules])

    modules: List[SourceModule] = []
    raw_violations: List[tuple] = []  # (module or None, violation)
    for path in collect_files(paths):
        try:
            module = SourceModule.parse(path)
        except SyntaxError as error:
            raw_violations.append(
                (
                    None,
                    Violation(
                        rule_id=SYNTAX_ERROR_ID,
                        rule_name="syntax-error",
                        path=str(path),
                        line=error.lineno or 1,
                        column=(error.offset or 1) - 1,
                        message=f"file does not parse: {error.msg}",
                    ),
                )
            )
            continue
        modules.append(module)
    result.files_scanned = len(modules)

    for module in modules:
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            if not rule.applies_to(module):
                continue
            for violation in rule.check(module):
                raw_violations.append((module, violation))

    module_by_path = {module.path: module for module in modules}
    for rule in rules:
        if isinstance(rule, ProjectRule):
            for violation in rule.check_project(modules):
                raw_violations.append(
                    (module_by_path.get(violation.path), violation)
                )

    for module, violation in raw_violations:
        if module is not None and module.is_suppressed(violation):
            result.suppressed += 1
        else:
            result.violations.append(violation)
    result.violations.sort(key=Violation.sort_key)
    return result
