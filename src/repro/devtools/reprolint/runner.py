"""File collection and rule execution.

The runner parses each file once, runs every applicable per-module rule
on it, runs project rules once over the whole scanned set, filters
suppressed findings, and returns a :class:`LintResult` the reporters
render.  Unparseable files surface as ``RPL000`` findings rather than
crashing the run, so a syntax error in one file never hides findings in
the rest of the tree.

Two opt-in layers sit on top of the per-file pass:

* ``jobs > 1`` fans parsing + per-module rule execution out to a
  process pool.  Workers return their parsed modules and raw findings;
  the parent merges them back **in path-sorted order** and runs the
  project/analysis rules and suppression filtering exactly as the
  serial path does, so the output is byte-identical to ``jobs=1``.
* ``analyze=True`` builds the whole-program analysis (module graph →
  call graph → taint fixpoint) once and hands it to every registered
  :class:`~repro.devtools.reprolint.registry.AnalysisRule` (RPL5xx).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devtools.reprolint.model import (
    SUPPRESS_ALL,
    SourceModule,
    Violation,
)
from repro.devtools.reprolint.registry import (
    AnalysisRule,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
)

#: Pseudo-rule id for files the parser rejects.
SYNTAX_ERROR_ID = "RPL000"

#: Meta-rule id for suppression comments that silence nothing.
UNUSED_SUPPRESSION_ID = "RPL001"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


class PathError(ValueError):
    """An input path does not exist (usage error, exit code 2)."""


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    rule_ids: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    #: Parsed modules, keyed by path — the baseline layer derives its
    #: content keys from the flagged source lines.
    modules_by_path: Dict[str, SourceModule] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return counts


def collect_files(
    paths: Sequence["str | Path"],
    warnings: Optional[List[str]] = None,
) -> List[Path]:
    """Python files under the given files/directories, sorted, deduped.

    A nonexistent path raises :class:`PathError` (the CLI turns it into
    a clean exit-2 message); an explicitly named non-``.py`` file is
    skipped with a warning instead of being parsed as Python.
    """
    seen = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.exists():
            if path.suffix != ".py":
                if warnings is not None:
                    warnings.append(f"skipping non-Python file: {path}")
                continue
            candidates = [path]
        else:
            raise PathError(f"path does not exist: {path}")
        for candidate in candidates:
            if any(part in _SKIP_DIR_NAMES for part in candidate.parts):
                continue
            seen[candidate.as_posix()] = candidate
    return [seen[key] for key in sorted(seen)]


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    analyze: bool = False,
) -> List[Rule]:
    """Registered rules filtered by explicit select/ignore id lists.

    Analysis rules (RPL5xx) are excluded unless ``analyze`` is set, so
    a plain lint run never pays for — or reports against — the
    whole-program pass it did not build.
    """
    rules = all_rules()
    known = {rule.rule_id for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise KeyError(requested)
    if not analyze:
        rules = [
            rule
            for rule in rules
            if not getattr(rule, "requires_analysis", False)
        ]
    if select:
        rules = [rule for rule in rules if rule.rule_id in set(select)]
    if ignore:
        rules = [rule for rule in rules if rule.rule_id not in set(ignore)]
    return rules


def _syntax_violation(path: str, error: SyntaxError) -> Violation:
    return Violation(
        rule_id=SYNTAX_ERROR_ID,
        rule_name="syntax-error",
        path=path,
        line=error.lineno or 1,
        column=(error.offset or 1) - 1,
        message=f"file does not parse: {error.msg}",
    )


def _parse_and_check_one(
    payload: Tuple[str, Tuple[str, ...]],
) -> Tuple[str, Optional[SourceModule], Optional[Violation], List[Violation]]:
    """Worker unit: parse one file and run the per-module rules on it.

    Runs in a pool process (rules are re-resolved by id from the
    worker's own registry); also the shared serial path, so the two
    modes cannot diverge.
    """
    path, rule_ids = payload
    try:
        module = SourceModule.parse(path)
    except SyntaxError as error:
        return path, None, _syntax_violation(path, error), []
    violations: List[Violation] = []
    for rule_id in rule_ids:
        rule = get_rule(rule_id)
        if isinstance(rule, ProjectRule):
            continue
        if not rule.applies_to(module):
            continue
        violations.extend(rule.check(module))
    return path, module, None, violations


def _run_per_module_rules(
    files: List[Path], rule_ids: Tuple[str, ...], jobs: int
) -> List[Tuple[str, Optional[SourceModule], Optional[Violation], List[Violation]]]:
    payloads = [(str(path), rule_ids) for path in files]
    if jobs <= 1 or len(files) < 2:
        return [_parse_and_check_one(payload) for payload in payloads]
    # Few large chunks keep per-task IPC overhead negligible while
    # still giving every worker several chunks to balance across.
    chunksize = max(1, len(files) // (jobs * 4))
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        # executor.map preserves input order, which is path-sorted —
        # the merge is deterministic regardless of completion order.
        return list(
            pool.map(_parse_and_check_one, payloads, chunksize=chunksize)
        )


def _unused_suppression_violations(
    modules: List[SourceModule],
    executed_rule_ids: List[str],
    full_rule_set: bool,
) -> List[Violation]:
    """RPL001: suppression comments that silenced nothing this run.

    A bracketed suppression is reported only when every rule it names
    actually executed (otherwise this run cannot know it is dead) or
    when it names an id that does not exist at all.  A bare ``ignore``
    is only judged on a full-rule-set run for the same reason.
    """
    rule = get_rule(UNUSED_SUPPRESSION_ID)
    executed = set(executed_rule_ids)
    known = {candidate.rule_id for candidate in all_rules()}
    out: List[Violation] = []
    for module in modules:
        for line in sorted(module.suppressions):
            if line in module.used_suppressions:
                continue
            ids = module.suppressions[line]
            if SUPPRESS_ALL in ids:
                if not full_rule_set:
                    continue
                detail = "bare `reprolint: ignore`"
            else:
                unknown = sorted(ids - known)
                if not unknown and not (ids <= executed):
                    continue  # a named rule did not run; can't judge
                if unknown:
                    detail = (
                        f"unknown rule id(s) {', '.join(unknown)} in "
                        "suppression"
                    )
                else:
                    detail = f"suppression of {', '.join(sorted(ids))}"
            out.append(
                Violation(
                    rule_id=rule.rule_id,
                    rule_name=rule.name,
                    path=module.path,
                    line=line,
                    column=0,
                    message=(
                        f"{detail} matches no finding on this line; "
                        "remove the stale comment (or fix the rule id)"
                    ),
                )
            )
    return out


def lint_paths(
    paths: Sequence["str | Path"],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    jobs: int = 1,
    analyze: bool = False,
    allow_unused_suppressions: bool = False,
) -> LintResult:
    """Lint files/directories; returns the full result (never raises on
    findings — the CLI turns them into the exit code)."""
    rules = select_rules(select, ignore, analyze=analyze)
    result = LintResult(rule_ids=[rule.rule_id for rule in rules])

    files = collect_files(paths, warnings=result.warnings)
    per_module_ids = tuple(
        rule.rule_id for rule in rules if not isinstance(rule, ProjectRule)
    )

    modules: List[SourceModule] = []
    raw_violations: List[tuple] = []  # (module or None, violation)
    for _path, module, syntax_error, found in _run_per_module_rules(
        files, per_module_ids, jobs
    ):
        if syntax_error is not None:
            raw_violations.append((None, syntax_error))
            continue
        assert module is not None
        modules.append(module)
        for violation in found:
            raw_violations.append((module, violation))
    result.files_scanned = len(modules)

    module_by_path = {module.path: module for module in modules}
    result.modules_by_path = module_by_path
    analysis = None
    if analyze and any(isinstance(rule, AnalysisRule) for rule in rules):
        from repro.devtools.reprolint.analysis import build_analysis

        analysis = build_analysis(modules)
    for rule in rules:
        if isinstance(rule, AnalysisRule):
            if analysis is None:
                continue
            found = rule.check_program(analysis)
        elif isinstance(rule, ProjectRule):
            found = rule.check_project(modules)
        else:
            continue
        for violation in found:
            raw_violations.append(
                (module_by_path.get(violation.path), violation)
            )

    for module, violation in raw_violations:
        if module is not None and module.is_suppressed(violation):
            result.suppressed += 1
        else:
            result.violations.append(violation)

    if not allow_unused_suppressions and any(
        rule.rule_id == UNUSED_SUPPRESSION_ID for rule in rules
    ):
        full_rule_set = not select and not ignore and analyze
        result.violations.extend(
            _unused_suppression_violations(
                modules, result.rule_ids, full_rule_set
            )
        )

    result.violations.sort(key=Violation.sort_key)
    return result
