"""Core data model: parsed source files, violations, suppressions.

A :class:`SourceModule` is one parsed file — AST, raw source, and the
per-line suppression table extracted from ``# reprolint: ignore[...]``
comments.  Rules consume modules and yield :class:`Violation` records;
the runner filters suppressed ones before reporting.

Suppression syntax (one comment, on the violating line)::

    x == y  # reprolint: ignore[RPL103] exact DP tie-break, pinned by tests
    anything  # reprolint: ignore

The bracket form silences only the listed rule ids (comma-separated);
the bare form silences every rule on that line.  Trailing prose after
the bracket is encouraged — every suppression should say *why*.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Set

#: Wildcard stored in the suppression table for bare ``ignore`` comments.
SUPPRESS_ALL = "*"

_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_\-, ]+)\])?"
)


@dataclass(frozen=True)
class Violation:
    """One rule finding, addressable as ``path:line:column``."""

    rule_id: str
    rule_name: str
    path: str
    line: int
    column: int
    message: str

    def sort_key(self):
        return (self.path, self.line, self.column, self.rule_id)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    def as_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "name": self.rule_name,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


class SourceModule:
    """One source file: path, source text, AST, suppression table."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        suppressions: Dict[int, Set[str]],
    ):
        self.path = path
        self.source = source
        self.tree = tree
        self.suppressions = suppressions
        #: Posix-normalised path used for scope matching.
        self.scope_key = Path(path).as_posix()

    @classmethod
    def parse(cls, path: "str | Path") -> "SourceModule":
        """Read and parse ``path``; raises ``SyntaxError`` on bad source."""
        source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(str(path), source, tree, extract_suppressions(source))

    def violation(
        self, rule: "object", node: ast.AST, message: str
    ) -> Violation:
        """Build a violation anchored at ``node`` for ``rule``."""
        return Violation(
            rule_id=rule.rule_id,  # type: ignore[attr-defined]
            rule_name=rule.name,  # type: ignore[attr-defined]
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )

    def is_suppressed(self, violation: Violation) -> bool:
        rules = self.suppressions.get(violation.line)
        if not rules:
            return False
        return SUPPRESS_ALL in rules or violation.rule_id in rules


def extract_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number → rule ids silenced there (``*`` = all rules)."""
    table: Dict[int, Set[str]] = {}
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            names = match.group("rules")
            if names is None:
                ids = {SUPPRESS_ALL}
            else:
                ids = {part.strip() for part in names.split(",") if part.strip()}
            table.setdefault(token.start[0], set()).update(ids)
    except tokenize.TokenError:
        # Unterminated string/bracket: the AST parse will report it.
        pass
    return table
