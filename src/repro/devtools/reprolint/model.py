"""Core data model: parsed source files, violations, suppressions.

A :class:`SourceModule` is one parsed file — AST, raw source, and the
per-line suppression table extracted from ``# reprolint: ignore[...]``
comments.  Rules consume modules and yield :class:`Violation` records;
the runner filters suppressed ones before reporting.

Suppression syntax (one comment, on the violating line)::

    x == y  # reprolint: ignore[RPL103] exact DP tie-break, pinned by tests
    anything  # reprolint: ignore

The bracket form silences only the listed rule ids (comma-separated);
the bare form silences every rule on that line.  Trailing prose after
the bracket is encouraged — every suppression should say *why*.

A second annotation, ``# reprolint: sanitize``, feeds the
whole-program taint analysis (``--analyze``): values produced on an
annotated line are treated as determinism-clean, the human-judgment
sanitizer for flows the lattice cannot prove order-free.  Lines
carrying a justified ``ignore[RPL101]``/``ignore[RPL204]`` suppression
are honoured the same way, so a single commutativity judgment does not
have to be written twice.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Set

#: Wildcard stored in the suppression table for bare ``ignore`` comments.
SUPPRESS_ALL = "*"

_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_\-, ]+)\])?"
)

_SANITIZE_RE = re.compile(r"#\s*reprolint:\s*sanitize\b")

#: Suppressions of these rules double as taint sanitizers: both assert
#: that a specific unordered iteration is order-free by construction.
_SANITIZING_SUPPRESSIONS = ("RPL101", "RPL204")


@dataclass(frozen=True)
class Violation:
    """One rule finding, addressable as ``path:line:column``."""

    rule_id: str
    rule_name: str
    path: str
    line: int
    column: int
    message: str

    def sort_key(self):
        return (self.path, self.line, self.column, self.rule_id)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    def as_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "name": self.rule_name,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


class SourceModule:
    """One source file: path, source text, AST, suppression table."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        suppressions: Dict[int, Set[str]],
        sanitized_lines: Optional[Set[int]] = None,
    ):
        self.path = path
        self.source = source
        self._tree: Optional[ast.Module] = tree
        self.suppressions = suppressions
        self.sanitized_lines = sanitized_lines or set()
        #: Lines whose suppression actually silenced at least one
        #: violation during the current run (RPL001 reports the rest).
        self.used_suppressions: Set[int] = set()
        #: Posix-normalised path used for scope matching.
        self.scope_key = Path(path).as_posix()

    @property
    def tree(self) -> ast.Module:
        """The parsed AST, rebuilt from source after pickling.

        A module crossing a process boundary (``--jobs`` workers hand
        their modules back to the parent) drops its tree: shipping 199
        ASTs through pickle costs more than the parallelism saves, and
        the parent only needs trees for the few files the project rules
        actually inspect.  Re-parsing here is safe — the source already
        parsed once in the worker.
        """
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=self.path)
        return self._tree

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_tree"] = None
        return state

    @classmethod
    def parse(cls, path: "str | Path") -> "SourceModule":
        """Read and parse ``path``; raises ``SyntaxError`` on bad source."""
        source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            str(path),
            source,
            tree,
            extract_suppressions(source),
            extract_sanitized_lines(source),
        )

    def violation(
        self, rule: "object", node: ast.AST, message: str
    ) -> Violation:
        """Build a violation anchored at ``node`` for ``rule``."""
        return Violation(
            rule_id=rule.rule_id,  # type: ignore[attr-defined]
            rule_name=rule.name,  # type: ignore[attr-defined]
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )

    def is_suppressed(self, violation: Violation) -> bool:
        rules = self.suppressions.get(violation.line)
        if not rules:
            return False
        if SUPPRESS_ALL in rules or violation.rule_id in rules:
            self.used_suppressions.add(violation.line)
            return True
        return False

    def is_sanitized(self, line: int) -> bool:
        """Whether ``line`` carries a taint-sanitizing annotation: an
        explicit ``# reprolint: sanitize`` or a justified suppression of
        an order-judgment rule (RPL101/RPL204)."""
        if line in self.sanitized_lines:
            return True
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return any(rule in rules for rule in _SANITIZING_SUPPRESSIONS)


def _iter_comments(source: str):
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token
    except tokenize.TokenError:
        # Unterminated string/bracket: the AST parse will report it.
        pass


def extract_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number → rule ids silenced there (``*`` = all rules)."""
    table: Dict[int, Set[str]] = {}
    for token in _iter_comments(source):
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        names = match.group("rules")
        if names is None:
            ids = {SUPPRESS_ALL}
        else:
            ids = {part.strip() for part in names.split(",") if part.strip()}
        table.setdefault(token.start[0], set()).update(ids)
    return table


def extract_sanitized_lines(source: str) -> Set[int]:
    """Lines carrying an explicit ``# reprolint: sanitize`` annotation."""
    lines: Set[int] = set()
    for token in _iter_comments(source):
        if _SANITIZE_RE.search(token.string):
            lines.add(token.start[0])
    return lines
