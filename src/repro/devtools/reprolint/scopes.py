"""Path scopes: which contract applies to which part of the tree.

Scope matching keys off the ``src/repro/`` segment of a file's posix
path, so the linter behaves identically whether invoked from the repo
root (``python -m repro.devtools.reprolint src``), from tests with
absolute paths, or on fixture trees that mirror the layout under a
temporary directory.

``core/reference.py`` is excluded from the determinism scopes by
design: it is the *pre-contract* frozenset oracle, kept verbatim so the
bitmask rewrite stays falsifiable, and deliberately exhibits the
patterns the rewrite removed.  Rule RPL202 instead polices who may
import it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

#: Directories whose modules carry the bit-identical determinism
#: contract (PRs 1–2): solver pipelines, kernels, and the engine.
DETERMINISM_DIRS = (
    "core/",
    "engine/",
    "solvers/",
    "preprocess/",
    "reductions/",
    "setcover/",
    "flow/",
    "matching/",
    "graph/",
)

#: Modules rewritten onto interned bitmasks in PR 2; frozenset algebra
#: inside them (outside the PropertySpace boundary) is a regression.
#: The kernel backends (PR 6) host the moved hot paths and carry the
#: same contract.
MASK_MODULES = (
    "core/mincover.py",
    "core/kernels/pyjit.py",
    "core/kernels/array.py",
    "preprocess/dominated.py",
    "preprocess/decompose.py",
    "reductions/mc3_to_wsc.py",
    "setcover/greedy.py",
    "setcover/bucket_greedy.py",
)

#: The frozen pre-bitset oracle (see module docstring).
REFERENCE_MODULE = "core/reference.py"


def repro_relative(scope_key: str) -> Optional[str]:
    """Path inside ``src/repro/``, or ``None`` for non-package files."""
    marker = "src/repro/"
    index = scope_key.rfind(marker)
    if index < 0:
        return None
    return scope_key[index + len(marker) :]


def in_src(scope_key: str) -> bool:
    return repro_relative(scope_key) is not None


def is_reference_module(scope_key: str) -> bool:
    return repro_relative(scope_key) == REFERENCE_MODULE


def in_determinism_scope(scope_key: str) -> bool:
    rel = repro_relative(scope_key)
    if rel is None or rel == REFERENCE_MODULE:
        return False
    return rel.startswith(DETERMINISM_DIRS)


def in_core(scope_key: str) -> bool:
    rel = repro_relative(scope_key)
    return rel is not None and rel != REFERENCE_MODULE and rel.startswith("core/")


def in_mask_scope(scope_key: str) -> bool:
    return repro_relative(scope_key) in MASK_MODULES


def in_kernels_package(scope_key: str) -> bool:
    """The kernel-backend package itself (RPL203): the only package
    code allowed to import the backend implementation modules."""
    rel = repro_relative(scope_key)
    return rel is not None and rel.startswith("core/kernels/")


#: Modules that produce cache-key material (RPL204): the component
#: fingerprint and the solution-cache entry codec.  Anything
#: hash-seed- or address-dependent there silently splits one logical
#: key into many, which turns every lookup into a miss (or worse,
#: collides two distinct components).
CACHE_KEY_MODULES = (
    "core/bitspace.py",
    "engine/cache.py",
)


def in_cache_key_scope(scope_key: str) -> bool:
    return repro_relative(scope_key) in CACHE_KEY_MODULES


def in_resilience_scope(scope_key: str) -> bool:
    """The fault-handling perimeter (RPL404): the engine package plus
    the chaos harness — the modules whose ``except`` clauses decide
    whether a failure is recovered, degraded, or silently eaten."""
    rel = repro_relative(scope_key)
    if rel is None:
        return False
    return rel.startswith("engine/") or rel == "devtools/chaos.py"


def in_service_scope(scope_key: str) -> bool:
    """The planner-daemon package (RPL102 service leg, RPL505): journal
    replay must reproduce live state bit-identically, so ambient
    nondeterminism is banned except at the annotated deadline/journal-
    timestamp seams."""
    rel = repro_relative(scope_key)
    return rel is not None and rel.startswith("service/")


def in_solvers_dir(scope_key: str) -> bool:
    rel = repro_relative(scope_key)
    return rel is not None and rel.startswith("solvers/")


def in_tests_or_benchmarks(path: str) -> bool:
    """True for files under a literal ``tests``/``benchmarks`` directory
    (the callers allowed to import the reference oracle directly)."""
    parts = Path(path).parts
    return "tests" in parts or "benchmarks" in parts
