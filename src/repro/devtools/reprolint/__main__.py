"""``python -m repro.devtools.reprolint`` entry point."""

import sys

from repro.devtools.reprolint.cli import main

sys.exit(main())
