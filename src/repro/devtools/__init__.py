"""Developer tooling that ships with the package but is not part of the
solver API: static analysis (:mod:`repro.devtools.reprolint`) guarding
the determinism and solver contracts that the runtime cannot check."""
