"""Deterministic chaos harness for the resilient engine.

A :class:`ChaosInjector` wraps any ``solve_component`` rung and injects
faults on a schedule derived *only* from ``(seed, component index, rung
name, attempt)`` — no RNG state, no wall clock, no environment — so
every resilience behavior (retry, fallback, timeout, worker death,
infeasible output, degradation) is reproducible in CI without real
crashes, and a run with a fixed seed is bit-identical across ``jobs=1``
and ``jobs=N``.

Fault modes:

``"fault"``
    Raise :class:`ChaosError` (a :class:`~repro.exceptions.SolverError`)
    before the rung runs.
``"stall"``
    Sleep ``stall_seconds`` before the rung runs — long enough to blow
    a wall-clock budget, short enough to finish eventually, so
    abandoned workers never outlive the test.
``"crash"``
    Kill the worker process (``os._exit``), producing a real
    ``BrokenProcessPool`` in pool mode.  In the *main* process the same
    schedule raises :class:`ChaosWorkerCrash` instead — the resilient
    executor recognises its ``simulates_worker_crash`` marker — so the
    sequential path exercises the identical chain transitions without
    killing the interpreter.
``"infeasible"``
    Run the rung, then discard its answer and return an empty cover —
    the resilient executor's independent per-component verification
    must catch it and move down the chain.

The decision function hashes with SHA-256, so the schedule is identical
across processes and interpreters regardless of ``PYTHONHASHSEED`` —
exactly the property that lets a forked worker and the parent agree on
the schedule.  An explicit ``plan`` mapping overrides the rate-based
schedule for precise test scenarios.

:class:`ServiceChaos` extends the same discipline one layer up, to the
planner daemon (:mod:`repro.service`): deterministic ``kill -9`` and
stall faults at the daemon's batch-processing seams, plus journal
tail-damage helpers, so crash-recovery equivalence is testable in CI
with real process deaths.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.exceptions import SolverError

#: Recognised injection modes.
CHAOS_MODES = ("fault", "stall", "crash", "infeasible")

#: Exit code used when chaos kills a pool worker, chosen to be
#: recognisable in process tables and CI logs.
CHAOS_EXIT_CODE = 43


class ChaosError(SolverError):
    """An injected (scheduled, deterministic) component-solve failure."""


class ChaosWorkerCrash(SolverError):
    """In-process stand-in for a worker death.

    Raised instead of ``os._exit`` when the chaos schedule says "crash"
    but the code is running in the main process (sequential path, or a
    quarantined component).  The ``simulates_worker_crash`` marker lets
    the resilient executor count it as a crash without importing this
    module — the engine layer stays below devtools.
    """

    simulates_worker_crash = True


def _unit_interval(seed: int, index: int, rung: str, attempt: int) -> float:
    """A reproducible value in [0, 1) for one attempt key.

    SHA-256 rather than ``hash()``: the schedule must not depend on the
    interpreter's hash seed, or forked workers and spawned workers
    would disagree with the parent.
    """
    key = f"{seed}|{index}|{rung}|{attempt}".encode("utf-8")
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


def _die() -> None:
    """Kill the current worker; simulate the death in the main process."""
    if _in_worker_process():
        os._exit(CHAOS_EXIT_CODE)
    raise ChaosWorkerCrash(
        "injected worker crash (simulated in-process: the main process "
        "must survive to observe it)"
    )


def _stall(seconds: float) -> None:
    time.sleep(seconds)


@dataclass(frozen=True)
class ChaosInjector:
    """Seeded, deterministic fault injector.

    ``*_rate`` parameters partition the unit interval: for each attempt
    key the hashed value lands in the fault, stall, crash, infeasible,
    or clean region, in that order.  ``plan`` pins specific attempts to
    a mode (or to ``None`` for explicitly clean), overriding the rates —
    the precise tool for test scenarios like "component 2's primary
    stalls once, everything else is clean".
    """

    seed: int = 0
    fault_rate: float = 0.0
    stall_rate: float = 0.0
    crash_rate: float = 0.0
    infeasible_rate: float = 0.0
    stall_seconds: float = 0.5
    plan: Mapping[Tuple[int, str, int], Optional[str]] = field(default_factory=dict)

    def __post_init__(self):
        total = (
            self.fault_rate + self.stall_rate + self.crash_rate + self.infeasible_rate
        )
        if total > 1.0 + 1e-12:
            raise SolverError(f"chaos rates sum to {total}, must be <= 1")
        for mode in self.plan.values():
            if mode is not None and mode not in CHAOS_MODES:
                raise SolverError(
                    f"unknown chaos mode {mode!r} (known: {CHAOS_MODES})"
                )

    def decision(self, index: int, rung: str, attempt: int) -> Optional[str]:
        """The scheduled mode for one attempt, or ``None`` for clean."""
        key = (index, rung, attempt)
        if key in self.plan:
            return self.plan[key]
        value = _unit_interval(self.seed, index, rung, attempt)
        threshold = 0.0
        for mode, rate in (
            ("fault", self.fault_rate),
            ("stall", self.stall_rate),
            ("crash", self.crash_rate),
            ("infeasible", self.infeasible_rate),
        ):
            threshold += rate
            if value < threshold:
                return mode
        return None

    def wrap(self, rung, index: int, attempt: int) -> "ChaosRung":
        """A picklable rung applying this schedule around ``rung``."""
        return ChaosRung(self, rung, index, attempt)


class ChaosRung:
    """One chain attempt wrapped with its scheduled fault (picklable)."""

    __slots__ = ("injector", "rung", "index", "attempt", "name")

    def __init__(self, injector: ChaosInjector, rung, index: int, attempt: int):
        self.injector = injector
        self.rung = rung
        self.index = index
        self.attempt = attempt
        self.name = rung.name

    def __getstate__(self):
        return (self.injector, self.rung, self.index, self.attempt, self.name)

    def __setstate__(self, state):
        self.injector, self.rung, self.index, self.attempt, self.name = state

    def solve_component(self, component):
        mode = self.injector.decision(self.index, self.name, self.attempt)
        if mode == "crash":
            _die()
        if mode == "fault":
            raise ChaosError(
                f"injected fault: component {self.index}, rung {self.name!r}, "
                f"attempt {self.attempt}"
            )
        if mode == "stall":
            _stall(self.injector.stall_seconds)
        classifiers, details = self.rung.solve_component(component)
        if mode == "infeasible":
            corrupted: Dict[str, object] = {"chaos": "infeasible"}
            return set(), corrupted
        return classifiers, details


# ----------------------------------------------------------------------
# Service-level chaos (planner daemon)
# ----------------------------------------------------------------------

#: Daemon seams where service chaos can strike: around the journal
#: append (before = admitted-but-unjournaled, after = journaled-but-
#: unapplied) and after the planner applied the batch.
SERVICE_SEAMS = ("pre-journal", "post-journal", "post-apply")

#: Recognised service fault modes.  ``"kill"`` is a real ``SIGKILL`` to
#: the daemon's own process — no atexit handlers, no flush, the honest
#: crash the journal recovery contract is tested against.  ``"stall"``
#: sleeps inside the worker seam, long enough to trip request deadlines.
SERVICE_CHAOS_MODES = ("kill", "stall")


@dataclass(frozen=True)
class ServiceChaos:
    """Deterministic fault schedule over the daemon's batch seams.

    Decisions hash ``(seed, seam, seq)`` with SHA-256 — same rationale
    as :class:`ChaosInjector`: the schedule must be identical across
    processes and hash seeds, so a drill driver can predict exactly
    which admitted batch kills the daemon.  ``plan`` pins specific
    ``(seam, seq)`` keys to a mode (or ``None`` for clean), overriding
    the rates — e.g. ``{("post-journal", 3): "kill"}`` is "die after
    durably admitting batch 3, before applying it".
    """

    seed: int = 0
    kill_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.05
    plan: Mapping[Tuple[str, int], Optional[str]] = field(default_factory=dict)

    def __post_init__(self):
        if self.kill_rate + self.stall_rate > 1.0 + 1e-12:
            raise SolverError("service chaos rates must sum to <= 1")
        for (seam, _seq), mode in self.plan.items():
            if seam not in SERVICE_SEAMS:
                raise SolverError(
                    f"unknown service seam {seam!r} (known: {SERVICE_SEAMS})"
                )
            if mode is not None and mode not in SERVICE_CHAOS_MODES:
                raise SolverError(
                    f"unknown service chaos mode {mode!r} "
                    f"(known: {SERVICE_CHAOS_MODES})"
                )

    def decision(self, seam: str, seq: int) -> Optional[str]:
        """The scheduled mode for one (seam, batch-seq) key, or ``None``."""
        key = (seam, seq)
        if key in self.plan:
            return self.plan[key]
        value = _unit_interval(self.seed, seq, f"service:{seam}", 0)
        if value < self.kill_rate:
            return "kill"
        if value < self.kill_rate + self.stall_rate:
            return "stall"
        return None

    def strike(self, seam: str, seq: int) -> None:
        """Apply the scheduled fault at one seam crossing (maybe a no-op)."""
        mode = self.decision(seam, seq)
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "stall":
            _stall(self.stall_seconds)


def truncate_journal_tail(path: str, nbytes: int) -> int:
    """Chop ``nbytes`` off the end of a journal file (simulates a torn
    final write); returns the new size.  Chopping more than the file
    holds leaves it empty."""
    size = os.path.getsize(path)
    new_size = max(0, size - max(0, nbytes))
    with open(path, "rb+") as handle:
        handle.truncate(new_size)
    return new_size


def corrupt_journal_tail(path: str, garbage: bytes = b'{"v":9,"x":1}\tdeadbeefdeadbeef\n') -> int:
    """Append a well-formed-looking but invalid record (bad checksum /
    foreign version) to a journal; returns the appended byte count.
    Recovery must drop exactly this tail."""
    with open(path, "ab") as handle:
        handle.write(garbage)
    return len(garbage)
