"""The ``mc3`` command-line tool.

Subcommands::

    mc3 solve INSTANCE.json [--solver mc3-general] [--output SOLUTION.json]
    mc3 generate DATASET [--n N] [--seed S] --output INSTANCE.json
    mc3 stats INSTANCE.json
    mc3 solvers
    mc3 datasets

Experiments live under ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.io import load_instance, materialize_cost, save_instance, save_solution
from repro.core.stats import InstanceStats
from repro.datasets import available_datasets, make_dataset
from repro.exceptions import ReproError
from repro.solvers import available_solvers, make_solver


def _resilience_policy(args: argparse.Namespace):
    """Build a :class:`~repro.engine.ResiliencePolicy` from the CLI
    flags, or ``None`` when every resilience flag is at its default (the
    zero-overhead plain dispatch path)."""
    timeout = getattr(args, "timeout", None)
    on_error = getattr(args, "on_error", "raise")
    max_retries = getattr(args, "max_retries", 0)
    fallback = getattr(args, "fallback", None)
    if timeout is None and on_error == "raise" and not max_retries and not fallback:
        return None
    from repro.engine import ResiliencePolicy

    return ResiliencePolicy(
        timeout_seconds=timeout,
        on_error=on_error,
        max_retries=max_retries,
        fallback=tuple(fallback or ()),
    )


def _cache_spec(args: argparse.Namespace):
    """Build a :class:`~repro.engine.cache.CacheConfig` from the CLI
    flags, or ``None`` when every cache flag is at its default (the
    process default — ``REPRO_SOLUTION_CACHE`` — then applies)."""
    choice = getattr(args, "cache", None)
    directory = getattr(args, "cache_dir", None)
    max_mb = getattr(args, "cache_max_mb", None)
    if choice is None and directory is None and max_mb is None:
        return None
    from repro.engine.cache import CacheConfig

    return CacheConfig(
        backend=choice or ("disk" if directory is not None else "memory"),
        directory=directory,
        max_mb=max_mb,
    )


def _solver_kwargs(args: argparse.Namespace) -> dict:
    """Engine-level solver options shared by the solve/plan/compare
    subcommands.  Only non-default values are forwarded, so solvers that
    lack a knob (e.g. ``--dispatch-k2`` on the baselines) fail with the
    registry's message naming the supported parameters."""
    kwargs: dict = {}
    if getattr(args, "jobs", 1) != 1:
        kwargs["jobs"] = args.jobs
    if getattr(args, "dispatch_k2", False):
        kwargs["dispatch_k2"] = True
    if getattr(args, "backend", None) is not None:
        kwargs["backend"] = args.backend
    if getattr(args, "solver_seed", None) is not None:
        kwargs["seed"] = args.solver_seed
    if getattr(args, "sample_rate", None):
        kwargs["sample_rates"] = tuple(args.sample_rate)
    policy = _resilience_policy(args)
    if policy is not None:
        kwargs["resilience"] = policy
    spec = _cache_spec(args)
    if spec is not None:
        kwargs["cache"] = spec
    return kwargs


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for per-component parallel solving "
        "(default 1 = sequential; output is identical either way)",
    )
    parser.add_argument(
        "--dispatch-k2",
        dest="dispatch_k2",
        action="store_true",
        help="solve components whose queries all have length <= 2 exactly "
        "via max-flow instead of the WSC approximation",
    )
    from repro.core.kernels.registry import backend_choices

    parser.add_argument(
        "--backend",
        choices=backend_choices(),
        default=None,
        help="kernel backend for the mask hot paths: pyjit (pure python), "
        "array (numpy column-packed; requires numpy >= 2), or auto "
        "(array when available). Default: the REPRO_KERNEL_BACKEND "
        "environment variable, else pyjit. Output is bit-identical "
        "across backends",
    )
    parser.add_argument(
        "--seed",
        dest="solver_seed",
        type=int,
        default=None,
        metavar="N",
        help="run seed for randomized solvers (mc3-sampled); the only "
        "randomness source — identical seeds give bit-identical "
        "solutions regardless of --jobs",
    )
    parser.add_argument(
        "--sample-rate",
        dest="sample_rate",
        type=float,
        action="append",
        default=None,
        metavar="R",
        help="element-sampling rate for one round of the sampled greedy "
        "(repeat the flag for a multi-round schedule; mc3-sampled only)",
    )
    from repro.engine.cache import CACHE_ENV_VAR, cache_choices

    parser.add_argument(
        "--cache",
        choices=cache_choices(),
        default=None,
        help="component-solution cache: off, memory (in-process LRU), or "
        "disk (content-addressed store, shared across runs). Default: "
        f"the {CACHE_ENV_VAR} environment variable, else off. Cached "
        "answers are bit-identical to uncached solves",
    )
    parser.add_argument(
        "--cache-dir",
        dest="cache_dir",
        default=None,
        metavar="DIR",
        help="directory for the disk cache (default: "
        "REPRO_SOLUTION_CACHE_DIR, else ~/.cache/mc3/solutions); "
        "implies --cache disk when --cache is not given",
    )
    parser.add_argument(
        "--cache-max-mb",
        dest="cache_max_mb",
        type=float,
        default=None,
        metavar="MB",
        help="cache size budget in megabytes (default 64); least-recently"
        "-used (memory) / oldest (disk) entries are evicted beyond it",
    )
    from repro.engine.resilience import FALLBACK_RUNGS, ON_ERROR_POLICIES

    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-component wall-clock budget; an attempt exceeding it "
        "counts as a failure and moves down the fallback chain",
    )
    parser.add_argument(
        "--on-error",
        dest="on_error",
        choices=ON_ERROR_POLICIES,
        default="raise",
        help="what to do when a component exhausts its fallback chain: "
        "raise (default), degrade to the query-oriented cover, or skip "
        "the component and report a partial solution",
    )
    parser.add_argument(
        "--max-retries",
        dest="max_retries",
        type=int,
        default=0,
        metavar="N",
        help="re-attempt a failed rung up to N times before falling back "
        "(deterministic backoff, default 0)",
    )
    parser.add_argument(
        "--fallback",
        nargs="*",
        choices=sorted(FALLBACK_RUNGS),
        default=None,
        metavar="RUNG",
        help="fallback rungs tried in order after the primary solver "
        f"fails (choices: {', '.join(sorted(FALLBACK_RUNGS))})",
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    solver = make_solver(args.solver, **_solver_kwargs(args))
    result = solver.solve(instance)
    print(f"solver   : {result.solver_name}")
    print(f"cost     : {result.cost:g}")
    print(f"selected : {len(result.solution)} classifiers")
    print(f"time     : {result.elapsed_seconds:.3f}s")
    engine_details = result.details.get("engine")
    if isinstance(engine_details, dict) and "cache" in engine_details:
        cache_stats = engine_details["cache"]
        print(
            f"cache    : {cache_stats['kind']} — {cache_stats['hits']} hit(s), "
            f"{cache_stats['misses']} miss(es), {cache_stats['inserts']} "
            f"insert(s) ({cache_stats['hit_rate']:.0%} hit rate)"
        )
    from repro.engine import PartialSolution

    if isinstance(result.solution, PartialSolution):
        solution = result.solution
        print(
            f"partial  : {len(solution.failures)} failure(s), "
            f"{len(solution.degraded_components)} degraded, "
            f"{len(solution.skipped_components)} skipped, "
            f"{len(solution.uncovered_queries)} queries uncovered"
        )
    if args.verbose:
        for label in result.solution.sorted_labels():
            print(f"  {label}")
    if args.report_gap:
        from repro.analysis import optimality_report

        print(optimality_report(instance, result.solution).describe())
    if args.output:
        save_solution(result.solution, args.output)
        print(f"solution written to {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    kwargs = {"seed": args.seed}
    if args.n is not None:
        kwargs["n"] = args.n
    instance = make_dataset(args.dataset, **kwargs)
    # Lazy cost models are materialised into an explicit table first (the
    # paper's literal input representation); instances whose candidate
    # universe is too large to materialise must be regenerated from
    # (dataset, n, seed) instead.
    try:
        concrete = materialize_cost(instance, max_entries=args.max_entries)
        save_instance(concrete, args.output)
    except ReproError:
        print(
            f"{args.dataset} is too large to materialise; regenerate with "
            f"make_dataset({args.dataset!r}, n={instance.n}, seed={args.seed})",
            file=sys.stderr,
        )
        return 1
    print(f"{instance.n} queries written to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    print(InstanceStats(instance).describe())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """End-to-end planning from a raw query log + cost table.

    Duplicate lines in the log are treated as popularity: with a budget
    they become query weights for the partial-cover planner; without a
    budget the full load is covered by the chosen solver.
    """
    from collections import Counter

    from repro.core.instance import MC3Instance
    from repro.datasets import load_cost_table_csv, load_query_log

    raw = load_query_log(args.queries)
    frequencies = Counter(raw)
    cost = load_cost_table_csv(args.costs)
    instance = MC3Instance(frequencies.keys(), cost, name=str(args.queries))

    if args.budget is not None:
        from repro.extensions import greedy_partial_cover

        weights = {q: float(count) for q, count in frequencies.items()}
        plan = greedy_partial_cover(instance, weights, budget=args.budget)
        total_weight = sum(weights.values())
        print(f"budget        : {args.budget:g}")
        print(f"spent         : {plan.cost:g}")
        print(f"covered       : {len(plan.covered_queries)}/{instance.n} queries "
              f"({plan.covered_weight / total_weight:.1%} of traffic)")
        selected = plan.classifiers
    else:
        solver = make_solver(args.solver, **_solver_kwargs(args))
        result = solver.solve(instance)
        print(f"solver        : {result.solver_name}")
        print(f"cost          : {result.cost:g}")
        print(f"covered       : {instance.n}/{instance.n} queries")
        selected = result.solution.classifiers

    print(f"classifiers   : {len(selected)}")
    if args.verbose:
        from repro.core.properties import canonical_label

        for label in sorted(canonical_label(clf) for clf in selected):
            print(f"  {label}")
    if args.output:
        from repro.core.solution import Solution

        solution = Solution.from_instance(selected, instance)
        save_solution(solution, args.output)
        print(f"plan written to {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    kwargs = {"seed": args.seed}
    if args.n is not None:
        kwargs["n"] = args.n
    instance = make_dataset(args.dataset, **kwargs)
    print(InstanceStats(instance, sample_costs=args.cost_sample).describe())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Check a solution file against an instance file: feasibility and
    price.  Exit code 0 = valid."""
    from repro.core.io import load_solution
    from repro.exceptions import InfeasibleSolutionError

    instance = load_instance(args.instance)
    solution = load_solution(args.solution)
    try:
        solution.verify(instance)
    except InfeasibleSolutionError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"valid: {len(solution)} classifiers cover all {instance.n} queries "
          f"at cost {solution.cost:g}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Run several solvers on one instance and print a comparison table."""
    from repro.exceptions import ReproError as _ReproError
    from repro.experiments.report import render_table

    from repro.solvers import supports_parameter

    instance = load_instance(args.instance)
    names = args.solvers or ["mc3-general", "local-greedy", "query-oriented",
                             "property-oriented"]
    rows = []
    for name in names:
        # Forward engine flags only where the solver understands them, so
        # one table can mix engine-backed solvers and baselines.
        kwargs = {
            key: value
            for key, value in _solver_kwargs(args).items()
            if supports_parameter(name, key)
        }
        try:
            result = make_solver(name, **kwargs).solve(instance)
        except _ReproError as exc:
            rows.append([name, "-", "-", f"({type(exc).__name__})"])
            continue
        rows.append(
            [name, result.cost, len(result.solution), f"{result.elapsed_seconds:.3f}s"]
        )
    print(render_table(["solver", "cost", "classifiers", "time"], rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the planner daemon (see :mod:`repro.service`) over a cost
    table, serving JSON-lines plan requests on a unix socket or TCP
    port until SIGTERM (graceful drain) or SIGINT."""
    import asyncio

    from repro.datasets import load_cost_table_csv
    from repro.service import PlannerService, ServiceConfig

    if args.socket is None and args.port is None:
        print("error: serve needs --socket PATH or --port N", file=sys.stderr)
        return 2
    cost = load_cost_table_csv(args.costs)
    config = ServiceConfig(
        solver_name=args.solver,
        solver_kwargs=_solver_kwargs(args),
        queue_depth=args.queue_depth,
        batch_window=args.batch_window,
        default_deadline_seconds=args.deadline,
        journal_path=args.journal,
        journal_fsync=not args.no_fsync,
    )
    service = PlannerService(cost, config=config)
    where = args.socket or f"{args.host}:{args.port}"
    print(f"planner daemon listening on {where}", file=sys.stderr)
    asyncio.run(
        service.serve_forever(
            socket_path=args.socket, host=args.host, port=args.port
        )
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the on-disk component-solution cache."""
    from repro.engine.cache import DiskSolutionCache, default_cache_dir

    directory = args.cache_dir or default_cache_dir()
    store = DiskSolutionCache(directory)
    if args.action == "stats":
        stats = store.stats()
        print(f"directory : {directory}")
        print(f"entries   : {stats['entries']}")
        print(f"bytes     : {stats['bytes']}")
        print(f"max bytes : {stats['max_bytes']}")
        return 0
    removed = store.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} from {directory}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="mc3", description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve an instance JSON file")
    solve.add_argument("instance")
    solve.add_argument("--solver", default="mc3-general", choices=available_solvers())
    solve.add_argument("--output", help="write the solution JSON here")
    solve.add_argument("--verbose", action="store_true", help="list selected classifiers")
    solve.add_argument(
        "--report-gap",
        dest="report_gap",
        action="store_true",
        help="print an optimality certificate (LP lower bound + proven ratio)",
    )
    _add_engine_flags(solve)
    solve.set_defaults(fn=_cmd_solve)

    generate = sub.add_parser("generate", help="generate a dataset instance")
    generate.add_argument("dataset", choices=available_datasets())
    generate.add_argument("--n", type=int, default=None)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)
    generate.add_argument(
        "--max-entries",
        dest="max_entries",
        type=int,
        default=1_000_000,
        help="cap on materialised cost-table entries (default 1e6)",
    )
    generate.set_defaults(fn=_cmd_generate)

    stats = sub.add_parser("stats", help="describe an instance JSON file")
    stats.add_argument("instance")
    stats.set_defaults(fn=_cmd_stats)

    analyze = sub.add_parser(
        "analyze", help="characterise a generated dataset (Section 6.1 style)"
    )
    analyze.add_argument("dataset", choices=available_datasets())
    analyze.add_argument("--n", type=int, default=None)
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument(
        "--cost-sample", dest="cost_sample", type=int, default=500,
        help="queries sampled for the cost-range scan (default 500)",
    )
    analyze.set_defaults(fn=_cmd_analyze)

    plan = sub.add_parser(
        "plan", help="plan classifiers from a raw query log + cost CSV"
    )
    plan.add_argument("queries", help="query log: one query per line")
    plan.add_argument("costs", help="cost table CSV: classifier,cost")
    plan.add_argument("--solver", default="mc3-general", choices=available_solvers())
    plan.add_argument(
        "--budget", type=float, default=None,
        help="optional budget: maximise covered traffic instead of covering all",
    )
    plan.add_argument("--output", help="write the selected classifiers as JSON")
    plan.add_argument("--verbose", action="store_true")
    _add_engine_flags(plan)
    plan.set_defaults(fn=_cmd_plan)

    verify = sub.add_parser("verify", help="verify a solution against an instance")
    verify.add_argument("instance")
    verify.add_argument("solution")
    verify.set_defaults(fn=_cmd_verify)

    compare = sub.add_parser("compare", help="compare solvers on an instance file")
    compare.add_argument("instance")
    compare.add_argument(
        "--solvers", nargs="*", choices=available_solvers(), default=None
    )
    _add_engine_flags(compare)
    compare.set_defaults(fn=_cmd_compare)

    serve = sub.add_parser(
        "serve",
        help="run the planner daemon (JSON-lines over unix socket or TCP)",
    )
    serve.add_argument("costs", help="cost table CSV: classifier,cost")
    serve.add_argument("--socket", default=None, help="unix socket path")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None)
    serve.add_argument("--solver", default="mc3-general", choices=available_solvers())
    serve.add_argument(
        "--journal", default=None,
        help="write-ahead workload journal path (enables crash recovery)",
    )
    serve.add_argument(
        "--no-fsync", dest="no_fsync", action="store_true",
        help="skip fsync after journal appends (faster, weaker durability)",
    )
    serve.add_argument(
        "--queue-depth", dest="queue_depth", type=int, default=64,
        help="admission queue capacity; beyond it requests get queue-full",
    )
    serve.add_argument(
        "--batch-window", dest="batch_window", type=int, default=8,
        help="max requests drained per batch (coalescing window)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None,
        help="default per-request deadline in seconds",
    )
    _add_engine_flags(serve)
    serve.set_defaults(fn=_cmd_serve)

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk component-solution cache"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir",
        dest="cache_dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: REPRO_SOLUTION_CACHE_DIR, else "
        "~/.cache/mc3/solutions)",
    )
    cache.set_defaults(fn=_cmd_cache)

    solvers = sub.add_parser("solvers", help="list registered solvers")
    solvers.set_defaults(fn=lambda a: (print("\n".join(available_solvers())), 0)[1])

    datasets = sub.add_parser("datasets", help="list registered datasets")
    datasets.set_defaults(fn=lambda a: (print("\n".join(available_datasets())), 0)[1])

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
