"""Algorithm 2: the exact polynomial solver for k ≤ 2.

Pipeline per the paper: preprocessing (Algorithm 1) → reduction to
bipartite Weighted Vertex Cover (Theorem 4.1) → reduction to Max-Flow
(Theorem 2.3) → a max-flow kernel (Dinic by default, the paper's choice)
→ translation back to classifiers.

The solution is *optimal*: preprocessing preserves an optimal solution
and the two reductions are exact.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.costs import OverlayCost
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier, Query
from repro.core.solution import Solution
from repro.exceptions import ReductionError, UncoverableQueryError
from repro.preprocess import ALL_STEPS, preprocess
from repro.reductions import mc3_to_bipartite_wvc, solve_bipartite_wvc
from repro.solvers.base import Solver


class K2Solver(Solver):
    """Exact MC³ solver for instances with maximal query length ≤ 2.

    Parameters
    ----------
    flow_algorithm:
        Max-flow kernel name (see :data:`repro.flow.ALGORITHMS`).
    preprocess_steps:
        Which Algorithm 1 steps to run first; the empty tuple disables
        preprocessing entirely (used by the Figure 3c ablation) — the
        result is still optimal, just slower.
    """

    name = "mc3-k2"

    def __init__(
        self,
        flow_algorithm: str = "dinic",
        preprocess_steps: Sequence[int] = ALL_STEPS,
        verify: bool = True,
    ):
        super().__init__(verify=verify)
        self.flow_algorithm = flow_algorithm
        self.preprocess_steps = tuple(preprocess_steps)

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        if instance.max_query_length > 2:
            raise ReductionError(
                f"K2Solver requires k <= 2, instance has k = {instance.max_query_length}"
            )
        prep = preprocess(instance, steps=self.preprocess_steps)
        selected: Set[Classifier] = set()
        flow_value_total = 0.0
        for component in prep.components:
            component_selection, flow_value = self._solve_component(component)
            selected |= component_selection
            flow_value_total += flow_value
        solution = prep.finalize(selected)
        details: Dict[str, object] = {
            "preprocess": prep.report.as_dict(),
            "components": len(prep.components),
            "flow_algorithm": self.flow_algorithm,
            "flow_value": flow_value_total,
        }
        return solution, details

    def _solve_component(self, component: MC3Instance) -> Tuple[Set[Classifier], float]:
        """Solve one property-disjoint component.

        Singleton queries may survive when preprocessing step 1 is
        disabled; their classifiers are forced here so the WVC reduction
        receives only length-2 queries, keeping the no-preprocessing mode
        correct.
        """
        forced: Set[Classifier] = set()
        length_two: List[Query] = []
        for q in component.queries:
            if len(q) == 1:
                if not math.isfinite(component.weight(q)):
                    raise UncoverableQueryError(q)
                forced.add(q)
            else:
                length_two.append(q)
        if not length_two:
            return forced, 0.0
        cost = component.cost
        if forced:
            # Forced singletons are already paid for; the WVC must see
            # them as free or it may buy a pair classifier redundantly.
            overlay = OverlayCost(cost)
            for clf in forced:
                overlay.select(clf)
            cost = overlay
        graph = mc3_to_bipartite_wvc(length_two, cost)
        cover, flow_value = solve_bipartite_wvc(graph, algorithm=self.flow_algorithm)
        return forced | cover, flow_value
