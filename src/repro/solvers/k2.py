"""Algorithm 2: the exact polynomial solver for k ≤ 2.

Pipeline per the paper: preprocessing (Algorithm 1) → reduction to
bipartite Weighted Vertex Cover (Theorem 4.1) → reduction to Max-Flow
(Theorem 2.3) → a max-flow kernel (Dinic by default, the paper's choice)
→ translation back to classifiers.

The solution is *optimal*: preprocessing preserves an optimal solution
and the two reductions are exact.  The pipeline itself (preprocess →
per-component dispatch → merge) is owned by the shared engine; this
module contributes only the per-component algorithm, which lives in
:func:`repro.engine.routing.solve_component_k2` so the engine can also
route short components here from approximate solvers (``dispatch_k2``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.instance import MC3Instance
from repro.core.properties import Classifier
from repro.engine.component import ComponentOutcome
from repro.engine.resilience import ResiliencePolicy
from repro.engine.routing import solve_component_k2
from repro.exceptions import ReductionError
from repro.preprocess import ALL_STEPS
from repro.solvers.base import ComponentSolver


class K2Solver(ComponentSolver):
    """Exact MC³ solver for instances with maximal query length ≤ 2.

    Parameters
    ----------
    flow_algorithm:
        Max-flow kernel name (see :data:`repro.flow.ALGORITHMS`).
    preprocess_steps:
        Which Algorithm 1 steps to run first; the empty tuple disables
        preprocessing entirely (used by the Figure 3c ablation) — the
        result is still optimal, just slower.
    jobs:
        Worker processes for solving components in parallel (the
        decomposition of Algorithm 1 step 2 makes them independent).
    """

    name = "mc3-k2"

    def __init__(
        self,
        flow_algorithm: str = "dinic",
        preprocess_steps: Sequence[int] = ALL_STEPS,
        jobs: int = 1,
        verify: bool = True,
        resilience: Optional[ResiliencePolicy] = None,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
    ):
        super().__init__(
            preprocess_steps=preprocess_steps,
            jobs=jobs,
            verify=verify,
            resilience=resilience,
            backend=backend,
            cache=cache,
        )
        self.flow_algorithm = flow_algorithm

    def cache_token(self) -> Optional[Tuple[object, ...]]:
        return (self.name, self.flow_algorithm)

    def validate_instance(self, instance: MC3Instance) -> None:
        if instance.max_query_length > 2:
            raise ReductionError(
                f"K2Solver requires k <= 2, instance has k = {instance.max_query_length}"
            )

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        return solve_component_k2(component, flow_algorithm=self.flow_algorithm)

    def aggregate_details(
        self, outcomes: List[ComponentOutcome]
    ) -> Dict[str, object]:
        return {
            "flow_algorithm": self.flow_algorithm,
            "flow_value": sum(
                float(outcome.details.get("flow_value", 0.0)) for outcome in outcomes
            ),
        }
