"""Sampling-based sub-linear MC³ solver (extension beyond the paper).

Same pipeline shape as :class:`~repro.solvers.general.GeneralSolver` —
preprocess, reduce each property-disjoint component to Weighted Set
Cover, cover it — but the per-component WSC solve is the
sampling-based sub-linear greedy of Indyk et al. (see
:mod:`repro.setcover.sampled_greedy`): gains are estimated on sampled
elements, then an exact greedy repairs the residual, so huge components
are covered without ever scanning their full universes per iteration.

Randomness is disciplined: the solver carries one run ``seed``, and each
component draws from ``derive_seed(seed, component.queries)`` — a
content digest, not ``hash()`` — so outputs are bit-identical across
``jobs=1``/``jobs=N``, scheduling orders, and ``PYTHONHASHSEED``
values (the chaos/determinism contract every engine solver obeys).

Approximation-gap probes: components small enough to afford it also run
the exact-gain greedy (and, on tiny set systems, the branch-and-bound
optimum) on a *forced-sampling* answer, and report the observed cost
ratios.  The engine aggregates them into
``details["engine"]["approx_gap"]`` so every run carries its own
measured gap alongside the speedup — the returned solution still comes
from the default path (exactness fallback included), the probe is
telemetry only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.bitspace import PropertySpace
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier
from repro.engine.component import ComponentOutcome
from repro.engine.resilience import ResiliencePolicy
from repro.preprocess import ALL_STEPS
from repro.reductions import mc3_to_wsc
from repro.setcover import (
    DEFAULT_EXACT_THRESHOLD,
    DEFAULT_SAMPLE_RATES,
    derive_seed,
    exact_wsc,
    greedy_wsc,
    sampled_greedy_wsc,
)
from repro.solvers.base import ComponentSolver

#: Components with at most this many WSC elements run the gap probe
#: (greedy costs O(elements·sets) there — cheap at this size).
GAP_PROBE_MAX_ELEMENTS = 2000

#: Exact-optimum probe bound: branch-and-bound is exponential in the
#: number of sets, so only tiny set systems compare against OPT.
GAP_PROBE_MAX_EXACT_SETS = 16


class SampledSolver(ComponentSolver):
    """MC³ approximation solver with a sub-linear sampled-greedy core.

    Parameters
    ----------
    seed:
        Run-level seed; the *only* source of randomness.  Identical
        seeds give bit-identical solutions regardless of ``jobs``.
    sample_rates:
        Per-round element-sampling schedule (fractions of the
        component's universe), default
        :data:`~repro.setcover.DEFAULT_SAMPLE_RATES`.
    exact_threshold:
        Universes at or below this size use the exact-gain greedy
        directly (sampling has nothing to save there), default
        :data:`~repro.setcover.DEFAULT_EXACT_THRESHOLD`.
    gap_probe:
        Run the approximation-gap probes on small components (default
        on; disable for pure benchmarking runs).
    """

    name = "mc3-sampled"

    def __init__(
        self,
        seed: int = 0,
        sample_rates: Sequence[float] = DEFAULT_SAMPLE_RATES,
        exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
        gap_probe: bool = True,
        preprocess_steps: Sequence[int] = ALL_STEPS,
        jobs: int = 1,
        verify: bool = True,
        resilience: Optional[ResiliencePolicy] = None,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
    ):
        super().__init__(
            preprocess_steps=preprocess_steps,
            jobs=jobs,
            verify=verify,
            resilience=resilience,
            backend=backend,
            cache=cache,
        )
        self.seed = int(seed)
        self.sample_rates = tuple(float(rate) for rate in sample_rates)
        self.exact_threshold = int(exact_threshold)
        self.gap_probe = gap_probe

    def cache_token(self) -> Optional[Tuple[object, ...]]:
        # ``gap_probe`` is absent on purpose: probes only add telemetry,
        # the selected classifiers are identical either way.
        return (
            self.name,
            self.seed,
            *self.sample_rates,
            self.exact_threshold,
        )

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        space = PropertySpace.from_queries(component.queries)
        wsc = mc3_to_wsc(component, space=space)
        component_seed = derive_seed(self.seed, component.queries)
        stats: Dict[str, object] = {}
        wsc_solution = sampled_greedy_wsc(
            wsc,
            seed=component_seed,
            rates=self.sample_rates,
            exact_threshold=self.exact_threshold,
            stats=stats,
        )
        details: Dict[str, object] = {
            "sampled": stats,
            "bitspace": {
                "properties": space.size,
                "elements": wsc.universe_size,
                "sets": wsc.num_sets,
            },
        }
        if self.gap_probe and wsc.universe_size <= GAP_PROBE_MAX_ELEMENTS:
            details["gap"] = self._probe_gap(wsc, component_seed)
        return {wsc.set_label(set_id) for set_id in wsc_solution.set_ids}, details

    def _probe_gap(self, wsc, component_seed: int) -> Dict[str, float]:
        """Measure sampling quality on a component cheap enough to
        afford reference solves.

        Forces the sampling path (``exact_threshold=0``) so the probe
        measures the estimator rather than the fallback, and compares
        against exact-gain greedy — plus branch-and-bound OPT when the
        set system is tiny.
        """
        forced = sampled_greedy_wsc(
            wsc, seed=component_seed, rates=self.sample_rates, exact_threshold=0
        )
        reference = greedy_wsc(wsc)
        probe: Dict[str, float] = {
            "sampled_cost": forced.cost,
            "greedy_cost": reference.cost,
            "ratio_vs_greedy": forced.cost / reference.cost if reference.cost else 1.0,
        }
        if wsc.num_sets <= GAP_PROBE_MAX_EXACT_SETS:
            optimum = exact_wsc(wsc)
            probe["exact_cost"] = optimum.cost
            probe["ratio_vs_exact"] = (
                forced.cost / optimum.cost if optimum.cost else 1.0
            )
        return probe

    def aggregate_details(
        self, outcomes: List[ComponentOutcome]
    ) -> Dict[str, object]:
        modes: Dict[str, int] = {}
        sampled_rounds = 0
        residual_elements = 0
        for outcome in outcomes:
            stats = outcome.details.get("sampled")
            if not isinstance(stats, dict):
                continue
            mode = str(stats.get("mode", "unknown"))
            modes[mode] = modes.get(mode, 0) + 1
            sampled_rounds += len(stats.get("rounds", ()))
            residual_elements += int(stats.get("residual_elements", 0))
        return {
            "seed": self.seed,
            "sample_rates": list(self.sample_rates),
            "exact_threshold": self.exact_threshold,
            "component_modes": modes,
            "sampled_rounds": sampled_rounds,
            "residual_elements": residual_elements,
        }
