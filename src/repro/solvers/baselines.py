"""Baseline solvers from the paper's experimental study (Section 6.1).

* Property-Oriented — one singleton classifier per property.
* Query-Oriented — one full classifier per query.
* Mixed — the algorithm of the prior work [Dushkin et al., EDBT 2019]:
  uniform costs, k ≤ 2; optimal in that regime via König's theorem.
* Local-Greedy — per iteration, cover the query whose cheapest residual
  cover is globally cheapest, accounting for previous selections.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.core.costs import OverlayCost
from repro.core.instance import MC3Instance
from repro.core.mincover import min_cover
from repro.core.properties import Classifier, Query
from repro.core.solution import Solution
from repro.exceptions import SolverError, UncoverableQueryError
from repro.matching import BipartiteGraph, konig_vertex_cover
from repro.solvers.base import Solver


class PropertyOrientedSolver(Solver):
    """Select every singleton classifier (and nothing else)."""

    name = "property-oriented"

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        selected: Set[Classifier] = set()
        for prop in instance.properties:
            clf = frozenset((prop,))
            if not math.isfinite(instance.weight(clf)):
                raise UncoverableQueryError(
                    clf, f"property-oriented baseline needs singleton {prop!r}, priced at infinity"
                )
            selected.add(clf)
        return Solution.from_instance(selected, instance), {"classifiers": len(selected)}


class QueryOrientedSolver(Solver):
    """Select, for every query, the classifier testing the whole query."""

    name = "query-oriented"

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        selected: Set[Classifier] = set()
        for q in instance.queries:
            if not math.isfinite(instance.weight(q)):
                raise UncoverableQueryError(
                    q, "query-oriented baseline needs the full-query classifier, priced at infinity"
                )
            selected.add(frozenset(q))
        return Solution.from_instance(selected, instance), {"classifiers": len(selected)}


class MixedSolver(Solver):
    """The prior work's algorithm: optimal for *uniform* costs and k ≤ 2.

    Uniform unit costs make the bipartite WVC unweighted, so a minimum
    vertex cover is a maximum matching by König's theorem — no flow
    computation needed.  Instances violating either restriction raise
    :class:`SolverError`, mirroring the paper's usage (BestBuy only).
    """

    name = "mixed"

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        if instance.max_query_length > 2:
            raise SolverError("Mixed handles only queries of length <= 2")
        uniform = self._uniform_cost(instance)

        selected: Set[Classifier] = set()
        for q in instance.queries:
            if len(q) == 1:
                selected.add(frozenset(q))
        graph = BipartiteGraph()
        for q in instance.queries:
            if len(q) == 1:
                continue
            pair = frozenset(q)
            for prop in sorted(q):
                singleton = frozenset((prop,))
                if singleton in selected:
                    # Already forced by a singleton query: this side of the
                    # pair is covered for free, so no edge is needed.
                    continue
                graph.add_left(singleton)
                graph.add_edge(singleton, pair)
        left_cover, right_cover = konig_vertex_cover(graph)
        selected |= left_cover
        selected |= right_cover
        solution = Solution.from_instance(selected, instance)
        return solution, {"uniform_cost": uniform, "classifiers": len(selected)}

    @staticmethod
    def _uniform_cost(instance: MC3Instance) -> float:
        uniform: Optional[float] = None
        for q in instance.queries:
            for clf in instance.candidates(q):
                weight = instance.weight(clf)
                if uniform is None:
                    uniform = weight
                elif weight != uniform:
                    raise SolverError(
                        "Mixed requires uniform classifier costs "
                        f"(saw {uniform} and {weight})"
                    )
        if uniform is None:
            raise SolverError("no finite-cost classifiers available")
        return uniform


class LocalGreedySolver(Solver):
    """Iterative greedy over whole-query covers (Section 6.1).

    Each iteration computes, for every uncovered query, its cheapest
    residual cover (classifiers already selected are free), selects the
    overall cheapest cover, and repeats — covering at least one query per
    iteration.  Cover costs are cached and invalidated only for queries
    sharing a property with the latest selection.
    """

    name = "local-greedy"

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        overlay = OverlayCost(instance.cost)
        selected: Set[Classifier] = set()

        remaining: Dict[int, Query] = dict(enumerate(instance.queries))
        by_property: Dict[str, Set[int]] = {}
        for index, q in remaining.items():
            for prop in q:
                by_property.setdefault(prop, set()).add(index)

        def residual_cover(q: Query):
            pairs = []
            for clf in instance.candidates(q):
                weight = overlay.cost(clf)
                if self._capped(instance, clf):
                    continue
                if math.isfinite(weight):
                    pairs.append((clf, weight))
            return min_cover(q, pairs, required=True)

        cache: Dict[int, object] = {}
        iterations = 0
        while remaining:
            iterations += 1
            best_index = None
            best_cover = None
            for index, q in remaining.items():
                cover = cache.get(index)
                if cover is None:
                    cover = residual_cover(q)
                    cache[index] = cover
                if best_cover is None or cover.cost < best_cover.cost:
                    best_cover = cover
                    best_index = index
            assert best_cover is not None and best_index is not None
            for clf in best_cover.classifiers:
                if clf not in selected:
                    selected.add(clf)
                    overlay.select(clf)
            # Drop queries now fully covered; invalidate caches of queries
            # touching the selected classifiers' properties.
            touched_props = set().union(*best_cover.classifiers) if best_cover.classifiers else set()
            affected = set()
            # RPL101 suppressed below: set-union accumulation commutes.
            for prop in touched_props:  # reprolint: ignore[RPL101]
                affected |= by_property.get(prop, set())
            for index in affected:
                cache.pop(index, None)
            for index in list(affected):
                q = remaining.get(index)
                if q is not None and self._covered(q, selected):
                    del remaining[index]
        solution = Solution.from_instance(selected, instance)
        return solution, {"iterations": iterations}

    @staticmethod
    def _capped(instance: MC3Instance, clf: Classifier) -> bool:
        cap = instance.max_classifier_length
        return cap is not None and len(clf) > cap

    @staticmethod
    def _covered(q: Query, selected: Set[Classifier]) -> bool:
        remaining = set(q)
        # RPL101 suppressed below: set-difference accumulation commutes;
        # the early exit changes nothing observable.
        for clf in selected:  # reprolint: ignore[RPL101]
            if clf <= q:
                remaining -= clf
                if not remaining:
                    return True
        return not remaining
