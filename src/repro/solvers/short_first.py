"""The Short-First strategy (Section 4, "Almost k = 2").

When nearly all queries have length ≤ 2, first solve those *optimally*
with Algorithm 2, then hand the residual long queries to Algorithm 3
with the already-bought classifiers marked free.  On loads like the
fashion category (96% short) the paper reports this beats running
Algorithm 3 on everything.

Both phases run on the shared engine (via :class:`K2Solver` and
:class:`GeneralSolver`), so the ``preprocess_steps`` / ``jobs`` /
``dispatch_k2`` knobs apply to each phase uniformly.  The split itself
stays *above* the engine: it partitions by query length before any
preprocessing, which is a different axis than the engine's
property-disjoint component routing.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.costs import OverlayCost
from repro.core.instance import MC3Instance
from repro.core.solution import Solution
from repro.engine.resilience import ResiliencePolicy
from repro.preprocess import ALL_STEPS
from repro.setcover import DEFAULT_SIZE_LIMIT
from repro.solvers.base import Solver
from repro.solvers.general import GeneralSolver
from repro.solvers.k2 import K2Solver


class ShortFirstSolver(Solver):
    """Algorithm 2 on queries of length ≤ ``threshold`` (default 2), then
    Algorithm 3 on the rest with prior selections free."""

    name = "short-first"

    def __init__(
        self,
        threshold: int = 2,
        flow_algorithm: str = "dinic",
        wsc_method: str = "best_of",
        lp_size_limit: Optional[int] = DEFAULT_SIZE_LIMIT,
        preprocess_steps: Sequence[int] = ALL_STEPS,
        dispatch_k2: bool = False,
        jobs: int = 1,
        verify: bool = True,
        resilience: Optional[ResiliencePolicy] = None,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
    ):
        super().__init__(verify=verify, jobs=jobs, backend=backend, cache=cache)
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.flow_algorithm = flow_algorithm
        self.wsc_method = wsc_method
        self.lp_size_limit = lp_size_limit
        self.preprocess_steps = tuple(preprocess_steps)
        self.dispatch_k2 = dispatch_k2
        self.resilience = resilience

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        short, long_ = instance.split_by_length(self.threshold)
        details: Dict[str, object] = {"threshold": self.threshold}

        selected: Set = set()
        if short is not None:
            k2 = K2Solver(
                flow_algorithm=self.flow_algorithm,
                preprocess_steps=self.preprocess_steps,
                jobs=self.jobs,
                verify=False,  # the combined solution is verified once
                resilience=self.resilience,
                backend=self.backend,
                cache=self.cache,
            )
            short_result = k2.solve(short)
            selected |= short_result.solution.classifiers
            details["short_queries"] = short.n
            details["short_cost"] = short_result.cost

        if long_ is not None:
            # Classifiers bought for the short phase are free now.
            overlay = OverlayCost(instance.cost)
            # RPL101 suppressed below: overlay.select commutes.
            for clf in selected:  # reprolint: ignore[RPL101]
                overlay.select(clf)
            residual = long_.with_cost(overlay, name=f"{instance.name}|residual")
            general = GeneralSolver(
                wsc_method=self.wsc_method,
                lp_size_limit=self.lp_size_limit,
                preprocess_steps=self.preprocess_steps,
                dispatch_k2=self.dispatch_k2,
                jobs=self.jobs,
                verify=False,
                resilience=self.resilience,
                backend=self.backend,
                cache=self.cache,
            )
            long_result = general.solve(residual)
            selected |= long_result.solution.classifiers
            details["long_queries"] = long_.n
            details["long_incremental_cost"] = long_result.cost

        solution = Solution.from_instance(selected, instance)
        return solution, details
