"""Solution refinement: Algorithm 3 plus a remove-and-repair local search.

The WSC approximations occasionally keep a classifier whose queries
could be re-covered more cheaply by combinations that only make sense
*given the rest of the selection* — exactly the blind spot of greedy's
one-way selection.  The refinement pass tries, for every selected
classifier ``c``, to remove it and repair each query it was serving via
the exact single-query DP (all other selected classifiers priced at 0);
if the repair costs less than ``W(c)``, the move is kept.

This is an extension beyond the paper (its experiments stop at
Algorithm 3); it preserves feasibility by construction, never increases
cost, and inherits Algorithm 3's approximation guarantee trivially.

The refinement is a *global* post-pass — it must see the merged
selection including preprocessing's forced classifiers — so the solver
runs the engine-backed :class:`GeneralSolver` first and refines its
output, rather than refining per component.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.costs import OverlayCost
from repro.core.instance import MC3Instance
from repro.core.mincover import min_cover
from repro.core.properties import Classifier, Query, classifier_sort_key
from repro.core.solution import Solution
from repro.preprocess import ALL_STEPS
from repro.solvers.base import Solver
from repro.solvers.general import GeneralSolver


def refine_selection(
    instance: MC3Instance,
    selection: Set[Classifier],
    max_rounds: int = 5,
) -> Tuple[Set[Classifier], int]:
    """Remove-and-repair local search; returns (selection, moves made)."""
    selected = set(selection)
    moves = 0

    def queries_needing(clf: Classifier, current: Set[Classifier]) -> List[Query]:
        """Queries that lose coverage if ``clf`` is removed."""
        broken = []
        others = current - {clf}
        for q in instance.queries:
            if not clf <= q:
                continue
            remaining = set(q)
            # RPL101 suppressed below: set-difference accumulation commutes.
            for other in others:  # reprolint: ignore[RPL101]
                if other <= q:
                    remaining -= other
            if remaining:
                broken.append(q)
        return broken

    for _round in range(max_rounds):
        improved = False
        # Secondary canonical key: sorted() is stable, so without it
        # equal-weight classifiers would keep the set's hash order.
        for clf in sorted(
            selected, key=lambda c: (-instance.weight(c), classifier_sort_key(c))
        ):
            weight = instance.weight(clf)
            if weight <= 0:
                continue
            broken = queries_needing(clf, selected)
            # Repair each broken query with the cheapest residual cover,
            # pricing already-selected classifiers (minus clf) at 0.
            overlay = OverlayCost(instance.cost)
            # RPL101 suppressed below: overlay.select commutes.
            for other in selected:  # reprolint: ignore[RPL101]
                if other != clf:
                    overlay.select(other)
            repair: Set[Classifier] = set()
            repair_cost = 0.0
            feasible = True
            for q in broken:
                pairs = []
                for candidate in instance.candidates(q):
                    if candidate == clf:
                        continue
                    cost = overlay.cost(candidate)
                    if candidate in repair:
                        cost = 0.0
                    if math.isfinite(cost):
                        pairs.append((candidate, cost))
                cover = min_cover(q, pairs, required=False)
                if cover is None:
                    feasible = False
                    break
                for picked in cover.classifiers:
                    if picked not in repair and overlay.cost(picked) > 0:
                        repair.add(picked)
                # ``repair`` is a set: sum in canonical order so the
                # rounded total (and the >= weight cutoffs below) never
                # depend on the hash seed.
                repair_cost = sum(
                    instance.weight(c)
                    for c in sorted(repair, key=classifier_sort_key)
                )
                if repair_cost >= weight:
                    feasible = False
                    break
            if not feasible or repair_cost >= weight - 1e-12:
                continue
            selected.discard(clf)
            selected |= repair
            moves += 1
            improved = True
        if not improved:
            break
    return selected, moves


class RefinedSolver(Solver):
    """Algorithm 3 followed by remove-and-repair refinement.

    Exposes the same ``preprocess_steps`` / ``jobs`` / ``dispatch_k2``
    knobs as the engine-backed solvers (they parameterise the inner
    :class:`GeneralSolver`), so the Figure 3e/3f preprocessing ablation
    and the component-parallel sweeps cover this solver uniformly.
    """

    name = "mc3-refined"

    def __init__(
        self,
        max_rounds: int = 5,
        preprocess_steps: Sequence[int] = ALL_STEPS,
        dispatch_k2: bool = False,
        jobs: int = 1,
        verify: bool = True,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
        **general_kwargs,
    ):
        super().__init__(verify=verify, jobs=jobs, backend=backend, cache=cache)
        self.max_rounds = max_rounds
        self.preprocess_steps = tuple(preprocess_steps)
        self.dispatch_k2 = dispatch_k2
        # The refinement pass is a global post-pass over the merged
        # selection — only the inner per-component solve is cacheable.
        self._general = GeneralSolver(
            preprocess_steps=preprocess_steps,
            dispatch_k2=dispatch_k2,
            jobs=jobs,
            verify=False,
            backend=backend,
            cache=cache,
            **general_kwargs,
        )

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        base = self._general.solve(instance)
        refined, moves = refine_selection(
            instance, set(base.solution.classifiers), self.max_rounds
        )
        solution = Solution.from_instance(refined, instance)
        details = dict(base.details)
        details["refinement_moves"] = moves
        details["refinement_saving"] = base.cost - solution.cost
        return solution, details
