"""Common solver interface.

A :class:`Solver` takes an :class:`~repro.core.instance.MC3Instance` and
produces a :class:`~repro.core.solution.SolverResult`.  The base class
handles timing and (by default) independent feasibility verification of
every output, so a buggy solver fails loudly instead of reporting a
bogus cost.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Dict, Optional

from repro.core.instance import MC3Instance
from repro.core.solution import Solution, SolverResult


class Solver(ABC):
    """Base class for MC³ solvers."""

    #: Short identifier used by the registry and experiment reports.
    name: str = "solver"

    def __init__(self, verify: bool = True):
        self.verify = verify

    def solve(self, instance: MC3Instance) -> SolverResult:
        """Solve the instance; timed and (optionally) verified."""
        started = time.perf_counter()
        solution, details = self._solve(instance)
        elapsed = time.perf_counter() - started
        if self.verify:
            solution.verify(instance)
        return SolverResult(solution, self.name, elapsed, details)

    @abstractmethod
    def _solve(self, instance: MC3Instance) -> "tuple[Solution, Dict[str, object]]":
        """Produce a solution and a free-form details dict."""
