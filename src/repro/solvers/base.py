"""Common solver interfaces.

A :class:`Solver` takes an :class:`~repro.core.instance.MC3Instance` and
produces a :class:`~repro.core.solution.SolverResult`.  The base class
handles timing and (by default) independent feasibility verification of
every output, so a buggy solver fails loudly instead of reporting a
bogus cost.

:class:`ComponentSolver` narrows the contract further for solvers whose
pipeline is the paper's standard shape — preprocess, solve each
property-disjoint component, merge.  Such solvers implement only
``solve_component``; the shared :class:`~repro.engine.SolveEngine` owns
preprocessing, scheduling, (optionally parallel) dispatch, deterministic
merging, and per-stage telemetry.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.instance import MC3Instance
from repro.core.kernels.registry import use_backend
from repro.core.properties import Classifier
from repro.core.solution import Solution, SolverResult
from repro.engine.component import ComponentOutcome
from repro.engine.engine import SolveEngine
from repro.engine.resilience import ResiliencePolicy
from repro.engine.routing import Route
from repro.preprocess import ALL_STEPS


class Solver(ABC):
    """Base class for MC³ solvers.

    Parameters
    ----------
    verify:
        Run the independent coverage checker on every output (default).
    jobs:
        Advisory worker-process budget for per-component parallelism.
        Solvers built on the shared engine honour it; solvers without a
        component decomposition (the baselines) accept and ignore it, so
        harnesses can pass ``jobs=`` uniformly to any registered solver.
    backend:
        Kernel-backend choice for the mask kernels (a
        :mod:`repro.core.kernels.registry` choice string: a backend name
        or ``"auto"``).  ``None`` (the default) uses the active registry
        default.  The choice is installed around the whole ``_solve``
        call, so baselines and engine-based solvers honour it alike.
    cache:
        Component-solution cache spec (see :mod:`repro.engine.cache`): a
        choice string (``"off"``/``"memory"``/``"disk"``), a
        :class:`~repro.engine.cache.CacheConfig`, a live cache, or
        ``None`` for the process default (``REPRO_SOLUTION_CACHE``).
        Engine-based solvers thread it into the pipeline; solvers
        without a component decomposition accept and ignore it, so
        harnesses can pass ``cache=`` uniformly (same convention as
        ``jobs``).
    """

    #: Short identifier used by the registry and experiment reports.
    name: str = "solver"

    def __init__(
        self,
        verify: bool = True,
        jobs: int = 1,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
    ):
        self.verify = verify
        self.jobs = max(1, int(jobs))
        self.backend = backend
        self.cache = cache

    def cache_token(self) -> Optional[Tuple[object, ...]]:
        """Flat tuple of scalars naming every output-affecting knob, or
        ``None`` for "never cache my components".

        The base implementation returns ``None`` deliberately: a solver
        must *opt in* by enumerating its knobs, because a token that
        silently misses one would serve stale answers when that knob
        changes.  Stateless solvers whose only identity is their name
        can return ``(self.name,)``.
        """
        return None

    def solve(self, instance: MC3Instance) -> SolverResult:
        """Solve the instance; timed and (optionally) verified."""
        started = time.perf_counter()
        with use_backend(self.backend):
            solution, details = self._solve(instance)
        elapsed = time.perf_counter() - started
        if self.verify:
            solution.verify(instance)
        return SolverResult(solution, self.name, elapsed, details)

    @abstractmethod
    def _solve(self, instance: MC3Instance) -> "tuple[Solution, Dict[str, object]]":
        """Produce a solution and a free-form details dict."""


class ComponentSolver(Solver):
    """A solver that delegates its pipeline to the shared engine.

    Subclasses implement :meth:`solve_component` (the per-component
    algorithm) and may override :meth:`routes` (engine-level dispatch
    rules such as :func:`~repro.engine.routing.exact_k2_route`),
    :meth:`aggregate_details` (fold per-component details into the
    result's details dict), and :meth:`validate_instance` (domain checks
    that must run before preprocessing).

    ``resilience`` (a :class:`~repro.engine.ResiliencePolicy`, default
    ``None``) activates the engine's fault-tolerant execution layer —
    per-component budgets, fallback chains, and the ``on_error``
    behavior.  Runs that degrade or skip components return a
    :class:`~repro.engine.PartialSolution`, whose ``verify`` knows to
    exclude the recorded uncovered queries from the coverage check.
    """

    def __init__(
        self,
        preprocess_steps: Sequence[int] = ALL_STEPS,
        jobs: int = 1,
        verify: bool = True,
        resilience: Optional[ResiliencePolicy] = None,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
    ):
        super().__init__(verify=verify, jobs=jobs, backend=backend, cache=cache)
        self.preprocess_steps = tuple(preprocess_steps)
        self.resilience = resilience

    # -- the narrow contract -------------------------------------------

    @abstractmethod
    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        """Solve one property-disjoint component; return the selected
        classifiers and a per-component details dict."""

    # -- optional hooks ------------------------------------------------

    def routes(self) -> Tuple[Route, ...]:
        """Engine routing rules tried before :meth:`solve_component`."""
        return ()

    def aggregate_details(
        self, outcomes: List[ComponentOutcome]
    ) -> Dict[str, object]:
        """Fold per-component details into solver-level details."""
        return {}

    def validate_instance(self, instance: MC3Instance) -> None:
        """Reject instances outside the solver's domain (before any
        preprocessing work is spent)."""

    # -- pipeline ------------------------------------------------------

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        self.validate_instance(instance)
        engine = SolveEngine(
            preprocess_steps=self.preprocess_steps,
            jobs=self.jobs,
            routes=self.routes(),
            resilience=self.resilience,
            backend=self.backend,
            cache=self.cache,
        )
        return engine.run(instance, self)
