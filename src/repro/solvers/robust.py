"""Robust (r-redundant) classifier construction.

Trained classifiers can fail post-deployment — drift, a bad labelling
batch, a retired model.  The robust variant demands every (property,
query) element of the WSC reduction be covered by ``r`` *distinct*
classifiers.  The payoff is a clean guarantee: with element-level
redundancy ``r``, any ``r - 1`` classifiers can be removed and every
query remains covered (each lost classifier removes at most one of an
element's covers, and a query is covered whenever each of its elements
retains one).

The paper's related work points to Set MultiCover for exactly this kind
of model extension; the reduction of Section 5.2 carries over verbatim,
only the element demands change.  The preprocess/dispatch/merge
pipeline is the shared engine's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.bitspace import PropertySpace
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier
from repro.core.solution import Solution
from repro.engine.component import ComponentOutcome
from repro.engine.resilience import ResiliencePolicy
from repro.exceptions import SolverError, UncoverableQueryError
from repro.reductions import mc3_to_wsc
from repro.setcover.multicover import greedy_multicover
from repro.solvers.base import ComponentSolver


class RobustSolver(ComponentSolver):
    """Approximate r-redundant MC³ via greedy set multi-cover.

    Parameters
    ----------
    redundancy:
        Required distinct covers per element (1 = the standard problem).
    preprocess_steps:
        Algorithm 1 steps.  Note step 3 is *disabled by default* here:
        removing a dominated classifier shrinks the pool redundancy
        draws from, and forced selections count only once toward ``r``.
        Steps 1 and 2 (forced singletons, decomposition) remain safe.
    jobs:
        Worker processes for solving components in parallel.

    The engine's exact k ≤ 2 route is deliberately *not* offered here:
    the max-flow path solves the r = 1 problem and would silently drop
    the redundancy requirement on routed components.
    """

    name = "mc3-robust"

    def __init__(
        self,
        redundancy: int = 2,
        preprocess_steps: Sequence[int] = (2,),
        jobs: int = 1,
        verify: bool = True,
        resilience: Optional[ResiliencePolicy] = None,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
    ):
        super().__init__(
            preprocess_steps=preprocess_steps,
            jobs=jobs,
            verify=verify,
            resilience=resilience,
            backend=backend,
            cache=cache,
        )
        if redundancy < 1:
            raise SolverError("redundancy must be >= 1")
        self.redundancy = int(redundancy)

    def cache_token(self) -> Optional[Tuple[object, ...]]:
        return (self.name, self.redundancy)

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        space = PropertySpace.from_queries(component.queries)
        wsc = mc3_to_wsc(component, space=space)
        demands = []
        for element_id in range(wsc.universe_size):
            available = len(wsc.sets_containing(element_id))
            if available < self.redundancy:
                prop, query_index = wsc.element_label(element_id)
                raise UncoverableQueryError(
                    component.queries[query_index],
                    f"property {prop!r} of query "
                    f"{sorted(component.queries[query_index])!r} has only "
                    f"{available} candidate classifiers "
                    f"(< redundancy {self.redundancy})",
                )
            demands.append(self.redundancy)
        solution = greedy_multicover(wsc, demands)
        classifiers = {wsc.set_label(set_id) for set_id in solution.set_ids}
        bitspace = {
            "properties": space.size,
            "elements": wsc.universe_size,
            "sets": wsc.num_sets,
        }
        return classifiers, {"bitspace": bitspace}

    def aggregate_details(
        self, outcomes: List[ComponentOutcome]
    ) -> Dict[str, object]:
        return {"redundancy": self.redundancy}


def survives_failures(
    instance: MC3Instance, solution: Solution, failures: int
) -> bool:
    """Whether coverage survives the loss of any ``failures`` classifiers.

    Checks the sufficient element-level condition exhaustively for
    single failures and by the redundancy argument beyond — used by
    tests; exponential in ``failures`` otherwise, so it brute-forces
    only ``failures = 1``.
    """
    from itertools import combinations

    from repro.core.coverage import CoverageChecker

    checker = CoverageChecker(instance.queries)
    if failures <= 0:
        return checker.all_covered(solution.classifiers)
    if failures > 1:
        raise SolverError("survives_failures brute-forces single failures only")
    for lost in combinations(solution.classifiers, failures):
        remaining = set(solution.classifiers) - set(lost)
        if not checker.all_covered(remaining):
            return False
    return True
