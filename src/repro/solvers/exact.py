"""Exact MC³ solver (test oracle and small-instance tool).

Preprocessing (optimality-preserving) → per-component reduction to WSC →
exact branch-and-bound.  Exponential worst case — the general problem is
NP-hard (Theorem 5.1) — so a node limit guards against runaway searches.
The preprocess/dispatch/merge pipeline is the shared engine's; only the
per-component exact WSC solve lives here.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.bitspace import PropertySpace
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier
from repro.engine.resilience import ResiliencePolicy
from repro.exceptions import SolverError
from repro.preprocess import ALL_STEPS
from repro.reductions import mc3_to_wsc
from repro.setcover import DEFAULT_NODE_LIMIT, exact_wsc, exact_wsc_lp
from repro.solvers.base import ComponentSolver


class ExactSolver(ComponentSolver):
    """Optimal MC³ solutions via exact WSC branch-and-bound.

    ``engine="combinatorial"`` (default) uses the pure-Python search;
    ``engine="lp"`` uses the LP-bounded search, which proves optimality
    far faster on near-integral instances (hundreds of sets).  (The
    ``engine`` knob predates, and is unrelated to, the shared solving
    engine — it names the branch-and-bound variant.)
    """

    name = "exact"

    def __init__(
        self,
        preprocess_steps: Sequence[int] = ALL_STEPS,
        node_limit: int = DEFAULT_NODE_LIMIT,
        engine: str = "combinatorial",
        jobs: int = 1,
        verify: bool = True,
        resilience: Optional[ResiliencePolicy] = None,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
    ):
        super().__init__(
            preprocess_steps=preprocess_steps,
            jobs=jobs,
            verify=verify,
            resilience=resilience,
            backend=backend,
            cache=cache,
        )
        if engine not in ("combinatorial", "lp"):
            raise SolverError(f"unknown exact engine {engine!r}")
        self.node_limit = node_limit
        self.engine = engine

    def cache_token(self) -> Optional[Tuple[object, ...]]:
        # ``node_limit`` matters: a search that hits the limit raises,
        # so a cached entry proves the limit was generous enough — but a
        # *smaller* limit must not be served a bigger limit's answer, or
        # the limit stops being reproducible.
        return (self.name, self.engine, self.node_limit)

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        space = PropertySpace.from_queries(component.queries)
        wsc = mc3_to_wsc(component, space=space)
        if self.engine == "lp":
            wsc_solution = exact_wsc_lp(wsc)
        else:
            wsc_solution = exact_wsc(wsc, node_limit=self.node_limit)
        classifiers = {wsc.set_label(set_id) for set_id in wsc_solution.set_ids}
        bitspace = {
            "properties": space.size,
            "elements": wsc.universe_size,
            "sets": wsc.num_sets,
        }
        return classifiers, {"bitspace": bitspace}
