"""Exact MC³ solver (test oracle and small-instance tool).

Preprocessing (optimality-preserving) → per-component reduction to WSC →
exact branch-and-bound.  Exponential worst case — the general problem is
NP-hard (Theorem 5.1) — so a node limit guards against runaway searches.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

from repro.core.instance import MC3Instance
from repro.core.properties import Classifier
from repro.core.solution import Solution
from repro.exceptions import SolverError
from repro.preprocess import ALL_STEPS, preprocess
from repro.reductions import mc3_to_wsc
from repro.setcover import DEFAULT_NODE_LIMIT, exact_wsc, exact_wsc_lp
from repro.solvers.base import Solver


class ExactSolver(Solver):
    """Optimal MC³ solutions via exact WSC branch-and-bound.

    ``engine="combinatorial"`` (default) uses the pure-Python search;
    ``engine="lp"`` uses the LP-bounded search, which proves optimality
    far faster on near-integral instances (hundreds of sets).
    """

    name = "exact"

    def __init__(
        self,
        preprocess_steps: Sequence[int] = ALL_STEPS,
        node_limit: int = DEFAULT_NODE_LIMIT,
        engine: str = "combinatorial",
        verify: bool = True,
    ):
        super().__init__(verify=verify)
        if engine not in ("combinatorial", "lp"):
            raise SolverError(f"unknown exact engine {engine!r}")
        self.preprocess_steps = tuple(preprocess_steps)
        self.node_limit = node_limit
        self.engine = engine

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        prep = preprocess(instance, steps=self.preprocess_steps)
        selected: Set[Classifier] = set()
        for component in prep.components:
            wsc = mc3_to_wsc(component)
            if self.engine == "lp":
                wsc_solution = exact_wsc_lp(wsc)
            else:
                wsc_solution = exact_wsc(wsc, node_limit=self.node_limit)
            selected |= {wsc.set_label(set_id) for set_id in wsc_solution.set_ids}
        solution = prep.finalize(selected)
        details: Dict[str, object] = {
            "preprocess": prep.report.as_dict(),
            "components": len(prep.components),
        }
        return solution, details
