"""One-pass streaming MC³ solver (extension beyond the paper).

Processes the query load as a *stream*: each query is seen once, in
load order, and the solver either recognises it as already covered by
previously purchased classifiers or buys a minimum-cost cover for its
residual (still-uncovered) properties.  Working state is the purchased
classifier set plus a property-indexed lookup over it — independent of
how many queries have streamed past — so the solver pairs with lazily
materialised loads (:class:`~repro.datasets.scale.LazyQueryLoad`) where
holding the full query list is exactly what we refuse to do.

This is the MC³-level sibling of the element-stream WSC solver in
:mod:`repro.setcover.streaming`: same one-pass discipline, but items
are queries and purchases are classifiers.  Like any online rule it has
no sub-logarithmic guarantee — it can never beat the query-oriented
baseline by less than the sharing it happens to discover — but it is
deterministic (no RNG, no ``hash()`` iteration order: queries arrive in
load order and candidate enumeration is the instance's deterministic
``C_q`` order) and always feasible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.instance import MC3Instance
from repro.core.mincover import min_cover
from repro.core.properties import Classifier
from repro.core.solution import Solution
from repro.exceptions import UncoverableQueryError
from repro.solvers.base import Solver


class StreamingSolver(Solver):
    """Single-pass residual-cover streaming solver.

    For each streamed query ``q``: subtract the union of already-owned
    classifiers usable for ``q`` (``clf ⊆ q``); if properties remain,
    buy the minimum-cost exact cover of that residual sub-query.  The
    purchased pool is shared across all later queries, which is where
    the savings over the query-oriented baseline come from.
    """

    name = "mc3-streaming"

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        selected: Set[Classifier] = set()
        # Owned classifiers indexed by their lexicographically smallest
        # property: ``clf ⊆ q`` requires that property to be in ``q``,
        # so scanning the posting lists of q's properties sees every
        # usable owned classifier without a full pool scan per query.
        by_first_property: Dict[str, List[Classifier]] = {}
        streamed = 0
        already_covered = 0
        covers_bought = 0
        for q in instance.queries:
            streamed += 1
            remaining = set(q)
            for prop in q:
                for clf in by_first_property.get(prop, ()):
                    if clf <= q:
                        remaining -= clf
            if not remaining:
                already_covered += 1
                continue
            residual = frozenset(remaining)
            pairs = ((clf, instance.weight(clf)) for clf in instance.candidates(residual))
            cover = min_cover(residual, pairs, required=False)
            if cover is None:
                raise UncoverableQueryError(q)
            covers_bought += 1
            for clf in cover.classifiers:
                if clf not in selected:
                    selected.add(clf)
                    by_first_property.setdefault(min(clf), []).append(clf)
        details: Dict[str, object] = {
            "queries_streamed": streamed,
            "already_covered": already_covered,
            "covers_bought": covers_bought,
            "classifiers": len(selected),
        }
        return Solution.from_instance(selected, instance), details
