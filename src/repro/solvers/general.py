"""Algorithm 3: the approximation solver for the general MC³ problem.

Pipeline per the paper: preprocessing (Algorithm 1) → reduction to
Weighted Set Cover (Section 5.2) → run *both* the greedy
``(ln Δ + 1)``-approximation and an ``f``-approximation, keep the
cheaper output.  Combined guarantee:
``min{ln I + ln(k-1) + 1, 2^(k-1)}`` (Theorem 5.3).

The ``f``-approximation is LP rounding when the constraint matrix is
small enough for SciPy's HiGHS backend, and the primal–dual scheme
(identical guarantee, linear time) beyond that threshold.

Preprocessing, per-component dispatch (optionally across a process
pool), merging, and the exact k ≤ 2 component routing all live in the
shared engine — this module contributes only the per-component WSC
solve.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.bitspace import PropertySpace
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier
from repro.engine.component import ComponentOutcome
from repro.engine.resilience import ResiliencePolicy
from repro.engine.routing import EXACT_K2_ROUTE, Route, exact_k2_route
from repro.preprocess import ALL_STEPS
from repro.reductions import mc3_to_wsc
from repro.setcover import (
    DEFAULT_SIZE_LIMIT,
    greedy_wsc,
    lp_nonzeros,
    lp_rounding_wsc,
    primal_dual_wsc,
)
from repro.solvers.base import ComponentSolver


class GeneralSolver(ComponentSolver):
    """Approximation solver for arbitrary query lengths (``MC3[G]``).

    Parameters
    ----------
    wsc_method:
        ``"best_of"`` (paper's Algorithm 3: greedy + f-approximation,
        keep the cheaper), or ``"greedy"`` / ``"lp"`` / ``"primal_dual"``
        alone — the latter three power the WSC ablation bench.
    lp_size_limit:
        Constraint-matrix nonzero budget above which ``best_of``/
        ``lp`` fall back to primal–dual.  ``None`` removes the cap.
    preprocess_steps:
        Algorithm 1 steps to run first; empty disables preprocessing
        (Figures 3e/3f measure exactly this difference).
    prune:
        Apply the redundancy post-pass to the f-approximation output
        (extension beyond the paper; can only lower the cost).
    dispatch_k2:
        Enable the engine's :func:`~repro.engine.routing.exact_k2_route`:
        property-disjoint components whose queries all have length ≤ 2
        are solved with the *exact* max-flow path instead of the WSC
        approximation (extension beyond the paper).  Because components
        share no properties, composing per-component optima is exact
        (Observation 3.2), so this can only improve the output — it
        subsumes Short-First's idea at the component level without its
        cross-interaction loss.
    jobs:
        Worker processes for solving components in parallel; output is
        identical to ``jobs=1``, only wall-clock differs.
    """

    name = "mc3-general"

    def __init__(
        self,
        wsc_method: str = "best_of",
        lp_size_limit: Optional[int] = DEFAULT_SIZE_LIMIT,
        preprocess_steps: Sequence[int] = ALL_STEPS,
        prune: bool = False,
        dispatch_k2: bool = False,
        jobs: int = 1,
        verify: bool = True,
        resilience: Optional[ResiliencePolicy] = None,
        backend: Optional[str] = None,
        cache: Optional[object] = None,
    ):
        super().__init__(
            preprocess_steps=preprocess_steps,
            jobs=jobs,
            verify=verify,
            resilience=resilience,
            backend=backend,
            cache=cache,
        )
        self.wsc_method = wsc_method
        self.lp_size_limit = lp_size_limit
        self.prune = prune
        self.dispatch_k2 = dispatch_k2

    def cache_token(self) -> Optional[Tuple[object, ...]]:
        # ``dispatch_k2`` is deliberately absent: routed components carry
        # the route's own token, and unrouted ones solve identically
        # whether the route was offered or not.
        return (self.name, self.wsc_method, self.lp_size_limit, self.prune)

    def routes(self) -> Tuple[Route, ...]:
        return (exact_k2_route(),) if self.dispatch_k2 else ()

    def solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Dict[str, object]]:
        # One interning per component: the reduction and every WSC pass
        # below share the same mask space (the engine's component
        # boundary keeps it as narrow as the component's property count).
        space = PropertySpace.from_queries(component.queries)
        wsc = mc3_to_wsc(component, space=space)

        def f_approx() -> Tuple[object, str]:
            if self.lp_size_limit is not None and lp_nonzeros(wsc) > self.lp_size_limit:
                return primal_dual_wsc(wsc, prune=self.prune), "primal_dual"
            return lp_rounding_wsc(wsc, prune=self.prune), "lp"

        winner: Optional[str] = None
        f_mode: Optional[str] = None
        if self.wsc_method == "greedy":
            wsc_solution = greedy_wsc(wsc)
        elif self.wsc_method == "bucket_greedy":
            from repro.setcover import bucket_greedy_wsc

            wsc_solution = bucket_greedy_wsc(wsc)
        elif self.wsc_method == "lp":
            wsc_solution, f_mode = f_approx()
        elif self.wsc_method == "primal_dual":
            wsc_solution = primal_dual_wsc(wsc, prune=self.prune)
            f_mode = "primal_dual"
        else:  # "best_of" — Algorithm 3 lines 3-5
            greedy_solution = greedy_wsc(wsc)
            f_solution, f_mode = f_approx()
            if greedy_solution.cost <= f_solution.cost:
                wsc_solution, winner = greedy_solution, "greedy"
            else:
                wsc_solution, winner = f_solution, "f_approx"

        classifiers = {wsc.set_label(set_id) for set_id in wsc_solution.set_ids}
        details: Dict[str, object] = {
            "winner": winner,
            "f_mode": f_mode,
            "bitspace": {
                "properties": space.size,
                "elements": wsc.universe_size,
                "sets": wsc.num_sets,
            },
        }
        return classifiers, details

    def aggregate_details(
        self, outcomes: List[ComponentOutcome]
    ) -> Dict[str, object]:
        wins = {"greedy": 0, "f_approx": 0}
        f_mode_used = set()
        k2_dispatched = 0
        for outcome in outcomes:
            if outcome.route == EXACT_K2_ROUTE:
                k2_dispatched += 1
                continue
            winner = outcome.details.get("winner")
            if winner:
                wins[winner] += 1
            f_mode = outcome.details.get("f_mode")
            if f_mode:
                f_mode_used.add(f_mode)
        return {
            "wsc_method": self.wsc_method,
            "wins": wins,
            "f_approximation_modes": sorted(f_mode_used),
            "k2_dispatched": k2_dispatched,
        }
