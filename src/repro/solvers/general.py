"""Algorithm 3: the approximation solver for the general MC³ problem.

Pipeline per the paper: preprocessing (Algorithm 1) → reduction to
Weighted Set Cover (Section 5.2) → run *both* the greedy
``(ln Δ + 1)``-approximation and an ``f``-approximation, keep the
cheaper output.  Combined guarantee:
``min{ln I + ln(k-1) + 1, 2^(k-1)}`` (Theorem 5.3).

The ``f``-approximation is LP rounding when the constraint matrix is
small enough for SciPy's HiGHS backend, and the primal–dual scheme
(identical guarantee, linear time) beyond that threshold.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.instance import MC3Instance
from repro.core.properties import Classifier
from repro.core.solution import Solution
from repro.preprocess import ALL_STEPS, preprocess
from repro.reductions import mc3_to_wsc
from repro.setcover import (
    DEFAULT_SIZE_LIMIT,
    greedy_wsc,
    lp_nonzeros,
    lp_rounding_wsc,
    primal_dual_wsc,
)
from repro.solvers.base import Solver


class GeneralSolver(Solver):
    """Approximation solver for arbitrary query lengths (``MC3[G]``).

    Parameters
    ----------
    wsc_method:
        ``"best_of"`` (paper's Algorithm 3: greedy + f-approximation,
        keep the cheaper), or ``"greedy"`` / ``"lp"`` / ``"primal_dual"``
        alone — the latter three power the WSC ablation bench.
    lp_size_limit:
        Constraint-matrix nonzero budget above which ``best_of``/
        ``lp`` fall back to primal–dual.  ``None`` removes the cap.
    preprocess_steps:
        Algorithm 1 steps to run first; empty disables preprocessing
        (Figures 3e/3f measure exactly this difference).
    prune:
        Apply the redundancy post-pass to the f-approximation output
        (extension beyond the paper; can only lower the cost).
    dispatch_k2:
        Solve property-disjoint components whose queries all have length
        ≤ 2 with the *exact* max-flow path instead of the WSC
        approximation (extension beyond the paper).  Because components
        share no properties, composing per-component optima is exact
        (Observation 3.2), so this can only improve the output — it
        subsumes Short-First's idea at the component level without its
        cross-interaction loss.
    """

    name = "mc3-general"

    def __init__(
        self,
        wsc_method: str = "best_of",
        lp_size_limit: Optional[int] = DEFAULT_SIZE_LIMIT,
        preprocess_steps: Sequence[int] = ALL_STEPS,
        prune: bool = False,
        dispatch_k2: bool = False,
        verify: bool = True,
    ):
        super().__init__(verify=verify)
        self.wsc_method = wsc_method
        self.lp_size_limit = lp_size_limit
        self.preprocess_steps = tuple(preprocess_steps)
        self.prune = prune
        self.dispatch_k2 = dispatch_k2

    def _solve(self, instance: MC3Instance) -> Tuple[Solution, Dict[str, object]]:
        prep = preprocess(instance, steps=self.preprocess_steps)
        selected: Set[Classifier] = set()
        wins = {"greedy": 0, "f_approx": 0}
        f_mode_used = set()
        k2_dispatched = 0
        for component in prep.components:
            if self.dispatch_k2 and component.max_query_length <= 2:
                selected |= self._solve_component_k2(component)
                k2_dispatched += 1
                continue
            component_selection, winner, f_mode = self._solve_component(component)
            selected |= component_selection
            if winner:
                wins[winner] += 1
            if f_mode:
                f_mode_used.add(f_mode)
        solution = prep.finalize(selected)
        details: Dict[str, object] = {
            "preprocess": prep.report.as_dict(),
            "components": len(prep.components),
            "wsc_method": self.wsc_method,
            "wins": wins,
            "f_approximation_modes": sorted(f_mode_used),
            "k2_dispatched": k2_dispatched,
        }
        return solution, details

    def _solve_component_k2(self, component: MC3Instance) -> Set[Classifier]:
        """Exact per-component solve through the Theorem 4.1 reduction;
        local import avoids a circular dependency with the k2 module."""
        from repro.solvers.k2 import K2Solver

        solver = K2Solver(preprocess_steps=(), verify=False)
        return set(solver.solve(component).solution.classifiers)

    def _solve_component(
        self, component: MC3Instance
    ) -> Tuple[Set[Classifier], Optional[str], Optional[str]]:
        wsc = mc3_to_wsc(component)

        def f_approx() -> Tuple[object, str]:
            if self.lp_size_limit is not None and lp_nonzeros(wsc) > self.lp_size_limit:
                return primal_dual_wsc(wsc, prune=self.prune), "primal_dual"
            return lp_rounding_wsc(wsc, prune=self.prune), "lp"

        winner: Optional[str] = None
        f_mode: Optional[str] = None
        if self.wsc_method == "greedy":
            wsc_solution = greedy_wsc(wsc)
        elif self.wsc_method == "bucket_greedy":
            from repro.setcover import bucket_greedy_wsc

            wsc_solution = bucket_greedy_wsc(wsc)
        elif self.wsc_method == "lp":
            wsc_solution, f_mode = f_approx()
        elif self.wsc_method == "primal_dual":
            wsc_solution = primal_dual_wsc(wsc, prune=self.prune)
            f_mode = "primal_dual"
        else:  # "best_of" — Algorithm 3 lines 3-5
            greedy_solution = greedy_wsc(wsc)
            f_solution, f_mode = f_approx()
            if greedy_solution.cost <= f_solution.cost:
                wsc_solution, winner = greedy_solution, "greedy"
            else:
                wsc_solution, winner = f_solution, "f_approx"

        classifiers = {wsc.set_label(set_id) for set_id in wsc_solution.set_ids}
        return classifiers, winner, f_mode
