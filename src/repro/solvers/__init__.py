"""MC³ solvers: Algorithm 2 (exact, k ≤ 2), Algorithm 3 (general
approximation), Short-First, the paper's baselines, and an exact
branch-and-bound oracle."""

from repro.solvers.base import ComponentSolver, Solver
from repro.solvers.baselines import (
    LocalGreedySolver,
    MixedSolver,
    PropertyOrientedSolver,
    QueryOrientedSolver,
)
from repro.solvers.exact import ExactSolver
from repro.solvers.general import GeneralSolver
from repro.solvers.k2 import K2Solver
from repro.solvers.refined import RefinedSolver, refine_selection
from repro.solvers.registry import (
    available_solvers,
    make_solver,
    solver_parameters,
    supports_parameter,
)
from repro.solvers.robust import RobustSolver, survives_failures
from repro.solvers.short_first import ShortFirstSolver

__all__ = [
    "ComponentSolver",
    "ExactSolver",
    "RefinedSolver",
    "RobustSolver",
    "refine_selection",
    "survives_failures",
    "GeneralSolver",
    "K2Solver",
    "LocalGreedySolver",
    "MixedSolver",
    "PropertyOrientedSolver",
    "QueryOrientedSolver",
    "ShortFirstSolver",
    "Solver",
    "available_solvers",
    "make_solver",
    "solver_parameters",
    "supports_parameter",
]
