"""Solver registry: names → factories, as used by the experiment harness
and the CLI."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import SolverError
from repro.solvers.base import Solver
from repro.solvers.baselines import (
    LocalGreedySolver,
    MixedSolver,
    PropertyOrientedSolver,
    QueryOrientedSolver,
)
from repro.solvers.exact import ExactSolver
from repro.solvers.general import GeneralSolver
from repro.solvers.k2 import K2Solver
from repro.solvers.refined import RefinedSolver
from repro.solvers.robust import RobustSolver
from repro.solvers.short_first import ShortFirstSolver

_FACTORIES: Dict[str, Callable[[], Solver]] = {
    "mc3-k2": K2Solver,
    "mc3-general": GeneralSolver,
    "short-first": ShortFirstSolver,
    "property-oriented": PropertyOrientedSolver,
    "query-oriented": QueryOrientedSolver,
    "mixed": MixedSolver,
    "local-greedy": LocalGreedySolver,
    "exact": ExactSolver,
    "mc3-robust": RobustSolver,
    "mc3-refined": RefinedSolver,
}


def available_solvers() -> List[str]:
    """Registered solver names, sorted."""
    return sorted(_FACTORIES)


def make_solver(name: str, **kwargs) -> Solver:
    """Instantiate a solver by name; keyword arguments go to its
    constructor."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_solvers())
        raise SolverError(f"unknown solver {name!r} (known: {known})") from None
    return factory(**kwargs)
