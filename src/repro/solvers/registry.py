"""Solver registry: names → parameterized factories, as used by the
experiment harness and the CLI.

Every factory accepts the engine-level keywords (``jobs``, ``verify``,
and — where meaningful — ``preprocess_steps`` / ``dispatch_k2``) on top
of its solver-specific parameters, so harnesses can wire component
parallelism uniformly: ``make_solver(name, jobs=4)`` is valid for every
registered solver.  :func:`solver_parameters` exposes each factory's
signature for callers (e.g. the CLI) that need to know whether a flag
applies before constructing.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List

from repro.exceptions import SolverError
from repro.solvers.base import Solver
from repro.solvers.baselines import (
    LocalGreedySolver,
    MixedSolver,
    PropertyOrientedSolver,
    QueryOrientedSolver,
)
from repro.solvers.exact import ExactSolver
from repro.solvers.general import GeneralSolver
from repro.solvers.k2 import K2Solver
from repro.solvers.refined import RefinedSolver
from repro.solvers.robust import RobustSolver
from repro.solvers.sampled import SampledSolver
from repro.solvers.short_first import ShortFirstSolver
from repro.solvers.streaming import StreamingSolver

_FACTORIES: Dict[str, Callable[..., Solver]] = {
    "mc3-k2": K2Solver,
    "mc3-general": GeneralSolver,
    "mc3-sampled": SampledSolver,
    "mc3-streaming": StreamingSolver,
    "short-first": ShortFirstSolver,
    "property-oriented": PropertyOrientedSolver,
    "query-oriented": QueryOrientedSolver,
    "mixed": MixedSolver,
    "local-greedy": LocalGreedySolver,
    "exact": ExactSolver,
    "mc3-robust": RobustSolver,
    "mc3-refined": RefinedSolver,
}


def available_solvers() -> List[str]:
    """Registered solver names, sorted."""
    return sorted(_FACTORIES)


def _factory(name: str) -> Callable[..., Solver]:
    try:
        return _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_solvers())
        raise SolverError(f"unknown solver {name!r} (known: {known})") from None


def solver_parameters(name: str) -> List[str]:
    """Constructor parameter names accepted by a registered solver.

    Factories with a ``**kwargs`` passthrough (e.g. ``mc3-refined``
    forwarding to the general solver) report the passthrough target's
    parameters too, so callers see the effective surface.
    """
    factory = _factory(name)
    signature = inspect.signature(factory)
    params: List[str] = []
    passthrough = False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            passthrough = True
            continue
        params.append(parameter.name)
    if passthrough and factory is RefinedSolver:
        for extra in inspect.signature(GeneralSolver).parameters:
            if extra not in params:
                params.append(extra)
    return params


def supports_parameter(name: str, parameter: str) -> bool:
    """Whether ``make_solver(name, parameter=...)`` is accepted."""
    factory = _factory(name)
    signature = inspect.signature(factory)
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in signature.parameters.values()
    ):
        return parameter in solver_parameters(name)
    return parameter in signature.parameters


def make_solver(name: str, **kwargs) -> Solver:
    """Instantiate a solver by name; keyword arguments go to its
    constructor.  Unknown keywords raise :class:`SolverError` naming the
    supported parameters instead of a bare ``TypeError``."""
    factory = _factory(name)
    unsupported = [key for key in kwargs if not supports_parameter(name, key)]
    if unsupported:
        supported = ", ".join(solver_parameters(name))
        raise SolverError(
            f"solver {name!r} does not accept {sorted(unsupported)!r} "
            f"(supported parameters: {supported})"
        )
    return factory(**kwargs)
