"""Free-text query translation: the intro's first pipeline stage.

The paper's motivating flow starts with free-text searches ("white
adidas juventus shirt") that the application translates into conjunctive
property queries before any classifier planning happens.  This module
implements that translation layer over a property vocabulary:

* tokenisation with basic normalisation (case, punctuation);
* synonym expansion ("sneaker" → "sneakers", "juve" → "juventus");
* multi-word property detection ("long sleeve" → "long-sleeve") via
  greedy longest-match;
* policies for unknown tokens (ignore / keep / reject).

The output is exactly the :class:`~repro.core.properties.Query` objects
the MC³ machinery consumes, so a raw search log can be piped straight
into a planner (see :meth:`QueryParser.parse_log`).
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.properties import Query
from repro.exceptions import DatasetError

_TOKEN_PATTERN = re.compile(r"[a-z0-9][a-z0-9\-&+']*")

#: What to do with tokens that match no known property.
UNKNOWN_POLICIES = ("ignore", "keep", "reject")


class ParseReport:
    """Statistics from parsing a query log."""

    def __init__(self) -> None:
        self.total = 0
        self.parsed = 0
        self.empty = 0
        self.rejected = 0
        self.unknown_tokens: Counter = Counter()

    @property
    def coverage(self) -> float:
        """Share of raw queries that produced a usable property query."""
        if self.total == 0:
            return 1.0
        return self.parsed / self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ParseReport {self.parsed}/{self.total} parsed, "
            f"{self.empty} empty, {self.rejected} rejected>"
        )


class QueryParser:
    """Translates free-text searches into conjunctive property queries.

    Parameters
    ----------
    vocabulary:
        The known properties.  Multi-word properties use ``-`` as the
        internal separator ("long-sleeve") and are matched against
        consecutive tokens.
    synonyms:
        Token(s) → property mapping applied before matching; keys may be
        multi-word strings ("football boots").
    unknown:
        ``"ignore"`` drops unmatched tokens (default — matches how real
        pipelines handle stop words and noise), ``"keep"`` turns them
        into properties verbatim, ``"reject"`` makes the whole query
        unparseable.
    """

    def __init__(
        self,
        vocabulary: Iterable[str],
        synonyms: Optional[Mapping[str, str]] = None,
        unknown: str = "ignore",
    ):
        if unknown not in UNKNOWN_POLICIES:
            raise DatasetError(
                f"unknown-token policy must be one of {UNKNOWN_POLICIES}, got {unknown!r}"
            )
        self.unknown = unknown
        self._properties = {str(p).lower() for p in vocabulary}
        if not self._properties:
            raise DatasetError("parser needs a non-empty vocabulary")
        self._synonyms: Dict[Tuple[str, ...], str] = {}
        for key, target in (synonyms or {}).items():
            target = str(target).lower()
            if target not in self._properties:
                raise DatasetError(
                    f"synonym target {target!r} is not in the vocabulary"
                )
            self._synonyms[tuple(self._tokenize(str(key)))] = target
        # Multi-word properties, as token tuples, longest first.
        self._compound: List[Tuple[Tuple[str, ...], str]] = []
        for prop in self._properties:
            parts = tuple(prop.split("-"))
            if len(parts) > 1:
                self._compound.append((parts, prop))
        self._compound.sort(key=lambda item: -len(item[0]))
        self._max_phrase = max(
            [len(parts) for parts, _p in self._compound]
            + [len(key) for key in self._synonyms]
            + [1]
        )

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        return _TOKEN_PATTERN.findall(text.lower())

    def parse(self, text: str) -> Optional[Query]:
        """One free-text query → a property query (or ``None``).

        ``None`` means no usable property was found, or (under the
        ``reject`` policy) an unknown token appeared.
        """
        tokens = self._tokenize(text)
        found: List[str] = []
        index = 0
        while index < len(tokens):
            matched = False
            # Longest phrase first: synonyms, compounds, single tokens.
            for span in range(min(self._max_phrase, len(tokens) - index), 0, -1):
                phrase = tuple(tokens[index : index + span])
                if phrase in self._synonyms:
                    found.append(self._synonyms[phrase])
                elif "-".join(phrase) in self._properties:
                    found.append("-".join(phrase))
                elif span == 1 and phrase[0] in self._properties:
                    found.append(phrase[0])
                else:
                    continue
                index += span
                matched = True
                break
            if matched:
                continue
            token = tokens[index]
            if self.unknown == "reject":
                return None
            if self.unknown == "keep":
                found.append(token)
            index += 1
        if not found:
            return None
        return frozenset(found)

    def parse_log(
        self, texts: Iterable[str]
    ) -> Tuple[List[Query], ParseReport]:
        """A raw search log → distinct property queries + statistics."""
        report = ParseReport()
        queries: List[Query] = []
        seen = set()
        for text in texts:
            report.total += 1
            tokens = self._tokenize(text)
            result = self.parse(text)
            if result is None:
                if self.unknown == "reject" and tokens:
                    report.rejected += 1
                else:
                    report.empty += 1
                for token in tokens:
                    if token not in self._properties:
                        report.unknown_tokens[token] += 1
                continue
            report.parsed += 1
            for token in tokens:
                if token not in self._properties and not any(
                    token in parts for parts, _p in self._compound
                ):
                    report.unknown_tokens[token] += 1
            if result not in seen:
                seen.add(result)
                queries.append(result)
        return queries, report
