"""Conjunctive search over observed annotations.

The engine answers a query with the items whose *observed* properties
include all the query's properties — exactly what a production search
backend can do.  Items that satisfy the query only latently are missed;
:class:`SearchQualityReport` quantifies the gap, which classifier-based
completion closes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.catalog.items import Catalog, Item
from repro.core.properties import Query


class SearchQualityReport:
    """Recall of observed search against latent ground truth."""

    def __init__(self, per_query: Dict[Query, float]):
        self.per_query = per_query

    @property
    def mean_recall(self) -> float:
        if not self.per_query:
            return 1.0
        return sum(self.per_query.values()) / len(self.per_query)

    @property
    def fully_answered(self) -> int:
        """Queries with recall 1.0."""
        return sum(1 for recall in self.per_query.values() if recall == 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SearchQualityReport mean_recall={self.mean_recall:.3f} "
            f"full={self.fully_answered}/{len(self.per_query)}>"
        )


class SearchEngine:
    """Inverted-index conjunctive search over a catalog's observed
    annotations.  The index is rebuilt on demand after completion runs."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._index: Dict[str, List[str]] = {}
        self._stale = True

    def refresh(self) -> None:
        """Rebuild the property → item-ids index from observed data."""
        index: Dict[str, List[str]] = {}
        for item in self.catalog:
            for prop in item.observed:
                index.setdefault(prop, []).append(item.item_id)
        self._index = index
        self._stale = False

    def invalidate(self) -> None:
        """Mark the index stale (after annotations changed)."""
        self._stale = True

    def search(self, query: Query) -> List[str]:
        """Item ids whose observed properties include all of ``query``,
        sorted for determinism."""
        if self._stale:
            self.refresh()
        posting_lists = sorted(
            (self._index.get(prop, []) for prop in query), key=len
        )
        if not posting_lists:
            return []
        result = set(posting_lists[0])
        for postings in posting_lists[1:]:
            result.intersection_update(postings)
            if not result:
                break
        return sorted(result)

    def recall(self, query: Query) -> float:
        """|observed matches ∩ true matches| / |true matches| (1.0 when
        nothing truly matches)."""
        truth = {item.item_id for item in self.catalog.items_with_latent(query)}
        if not truth:
            return 1.0
        found = set(self.search(query)) & truth
        return len(found) / len(truth)

    def quality(self, queries: Iterable[Query]) -> SearchQualityReport:
        """Recall per query over a query load."""
        return SearchQualityReport({q: self.recall(q) for q in queries})
