"""The motivating application substrate: a product catalog with latent
properties, simulated classifier training/inference, offline attribute
completion, conjunctive search, and the end-to-end planner."""

from repro.catalog.classifiers import ClassifierSuite, TrainedClassifier
from repro.catalog.items import Catalog, Item
from repro.catalog.parser import ParseReport, QueryParser
from repro.catalog.planner import ClassifierPlanner, PlanOutcome
from repro.catalog.search import SearchEngine, SearchQualityReport
from repro.catalog.simulate import catalog_for_load

__all__ = [
    "Catalog",
    "ClassifierPlanner",
    "ClassifierSuite",
    "Item",
    "ParseReport",
    "PlanOutcome",
    "QueryParser",
    "SearchEngine",
    "SearchQualityReport",
    "TrainedClassifier",
    "catalog_for_load",
]
