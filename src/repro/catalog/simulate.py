"""Catalog simulation: build an item store that realises a query load.

Experiments that measure *search quality* (rather than just construction
cost) need items behind the queries.  :func:`catalog_for_load` generates
a catalog in which every query of an MC³ instance has matching items
whose latent properties include the query (plus noise), a share of
observed annotations (sellers fill in some structured fields), and
distractor items matching nothing — the Figure 1 world, at scale.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.catalog.items import Catalog, Item
from repro.core.instance import MC3Instance
from repro.core.properties import Query
from repro.exceptions import DatasetError


def catalog_for_load(
    instance: MC3Instance,
    items_per_query: int = 3,
    observe_rate: float = 0.4,
    distractors: int = 0,
    extra_latent: int = 1,
    seed: int = 0,
) -> Catalog:
    """Generate a catalog realising ``instance``'s query load.

    Parameters
    ----------
    items_per_query:
        Matching items created per query (each satisfies the query's
        full conjunction latently).
    observe_rate:
        Probability that a latent property is also observed (structured)
        at upload time.  The gap ``1 - observe_rate`` is what classifier
        completion closes.
    distractors:
        Items whose latent properties are random draws — realistic
        negatives for classifier audits.
    extra_latent:
        Noise properties added to each matching item beyond the query.
    seed:
        Determinism; the same (instance, parameters, seed) always yields
        the same catalog.
    """
    if items_per_query < 1:
        raise DatasetError("items_per_query must be >= 1")
    if not 0.0 <= observe_rate <= 1.0:
        raise DatasetError(f"observe_rate must be in [0, 1], got {observe_rate}")
    rng = random.Random(f"catalog-{seed}")
    pool = sorted(instance.properties)
    catalog = Catalog()
    serial = 0
    for query_index, q in enumerate(instance.queries):
        for copy in range(items_per_query):
            latent = set(q)
            for _ in range(extra_latent):
                latent.add(rng.choice(pool))
            observed = {prop for prop in latent if rng.random() < observe_rate}
            catalog.add(
                Item(
                    item_id=f"item{serial:06d}",
                    title=" ".join(sorted(q)) + f" #{copy}",
                    latent=latent,
                    observed=observed,
                )
            )
            serial += 1
    for _ in range(distractors):
        size = rng.randint(1, min(4, len(pool)))
        latent = set(rng.sample(pool, size))
        observed = {prop for prop in latent if rng.random() < observe_rate}
        catalog.add(
            Item(
                item_id=f"item{serial:06d}",
                title="distractor",
                latent=latent,
                observed=observed,
            )
        )
        serial += 1
    return catalog
