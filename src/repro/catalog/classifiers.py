"""Simulated binary classifiers and their offline application.

A :class:`TrainedClassifier` stands in for an ML model trained on
labelled examples: it answers, for an item, whether the conjunction of
its properties holds.  In this simulation the answer comes from the
item's latent truth, optionally corrupted by a (seeded) error rate so
robustness scenarios can be exercised.

:class:`ClassifierSuite` applies a set of trained classifiers to a
catalog — the offline completion step of Section 2.1: a positive
conjunction yields a positive annotation per individual property; a
negative yields no annotation (null), per the paper's footnote 2.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.catalog.items import Catalog, Item
from repro.core.costs import CostModel
from repro.core.properties import Classifier, PropertySet, canonical_label
from repro.exceptions import DatasetError


class TrainedClassifier:
    """A (simulated) binary classifier for a conjunction of properties."""

    __slots__ = ("properties", "training_cost", "error_rate", "seed")

    def __init__(
        self,
        properties: PropertySet,
        training_cost: float,
        error_rate: float = 0.0,
        seed: int = 0,
    ):
        if not properties:
            raise DatasetError("a classifier must test at least one property")
        if not 0.0 <= error_rate < 1.0:
            raise DatasetError(f"error_rate must be in [0, 1), got {error_rate}")
        self.properties = frozenset(properties)
        self.training_cost = float(training_cost)
        self.error_rate = float(error_rate)
        self.seed = int(seed)

    @property
    def label(self) -> str:
        return canonical_label(self.properties)

    def predict(self, item: Item) -> bool:
        """True iff the item satisfies the conjunction (modulo noise)."""
        truth = item.satisfies(self.properties)
        if self.error_rate > 0.0 and self._flips(item):
            return not truth
        return truth

    def _flips(self, item: Item) -> bool:
        digest = hashlib.blake2b(
            f"{self.label}|{item.item_id}".encode(),
            digest_size=8,
            salt=self.seed.to_bytes(8, "little", signed=False),
        ).digest()
        unit = int.from_bytes(digest, "little") / float(1 << 64)
        return unit < self.error_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrainedClassifier {self.label} cost={self.training_cost}>"


class ClassifierSuite:
    """A set of trained classifiers plus bookkeeping."""

    def __init__(self, classifiers: Iterable[TrainedClassifier] = ()):
        self._by_label: Dict[str, TrainedClassifier] = {}
        for clf in classifiers:
            self.add(clf)

    @classmethod
    def train(
        cls,
        classifiers: Iterable[Classifier],
        cost: CostModel,
        error_rate: float = 0.0,
        seed: int = 0,
    ) -> "ClassifierSuite":
        """"Train" the given classifiers, paying their model cost."""
        return cls(
            TrainedClassifier(props, cost.cost(props), error_rate, seed)
            for props in classifiers
        )

    def add(self, clf: TrainedClassifier) -> None:
        if clf.label in self._by_label:
            raise DatasetError(f"duplicate classifier {clf.label!r}")
        self._by_label[clf.label] = clf

    def __len__(self) -> int:
        return len(self._by_label)

    def __iter__(self) -> Iterator[TrainedClassifier]:
        return iter(self._by_label.values())

    @property
    def total_training_cost(self) -> float:
        return sum(clf.training_cost for clf in self)

    def property_sets(self) -> List[Classifier]:
        return [clf.properties for clf in self]

    def complete_catalog(self, catalog: Catalog) -> int:
        """Apply every classifier to every item (the offline completion
        step).  Positive predictions annotate each individual property
        (footnote 2); negatives add nothing.  Returns the number of new
        (item, property) annotations.

        With a non-zero error rate, false positives that would contradict
        the latent truth are *not* written (they would poison the store);
        the simulation counts them via :meth:`audit` instead.
        """
        added = 0
        for item in catalog:
            for clf in self:
                if clf.predict(item) and clf.properties <= item.latent:
                    before = len(item.observed)
                    item.annotate(clf.properties)
                    added += len(item.observed) - before
        return added

    def audit(self, catalog: Catalog) -> Dict[str, int]:
        """Prediction quality counts over the catalog (per item-classifier
        pair): true/false positives/negatives."""
        counts = {"tp": 0, "fp": 0, "tn": 0, "fn": 0}
        for item in catalog:
            for clf in self:
                predicted = clf.predict(item)
                actual = item.satisfies(clf.properties)
                if predicted and actual:
                    counts["tp"] += 1
                elif predicted and not actual:
                    counts["fp"] += 1
                elif not predicted and not actual:
                    counts["tn"] += 1
                else:
                    counts["fn"] += 1
        return counts
