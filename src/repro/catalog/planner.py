"""End-to-end classifier planning: query log → MC³ → trained classifiers
→ completed catalog → complete search answers.

This is the workflow the paper motivates: given the queries users run
and cost estimates for training classifiers, pick the cheapest classifier
set that covers the load (the MC³ optimisation), train it, run the
offline completion, and measure the search-quality gain.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.catalog.classifiers import ClassifierSuite
from repro.catalog.items import Catalog
from repro.catalog.search import SearchEngine, SearchQualityReport
from repro.core.costs import CostModel
from repro.core.instance import MC3Instance
from repro.core.properties import Query
from repro.core.solution import SolverResult
from repro.solvers import make_solver


class PlanOutcome:
    """Everything the planner produced, for reporting."""

    def __init__(
        self,
        solver_result: SolverResult,
        suite: ClassifierSuite,
        before: SearchQualityReport,
        after: SearchQualityReport,
        annotations_added: int,
    ):
        self.solver_result = solver_result
        self.suite = suite
        self.before = before
        self.after = after
        self.annotations_added = annotations_added

    @property
    def training_cost(self) -> float:
        return self.solver_result.cost

    def summary(self) -> str:
        return (
            f"trained {len(self.suite)} classifiers at cost "
            f"{self.training_cost:g}; mean recall "
            f"{self.before.mean_recall:.3f} -> {self.after.mean_recall:.3f} "
            f"({self.annotations_added} annotations added)"
        )


class ClassifierPlanner:
    """Plans, trains and applies a covering classifier set."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel,
        solver_name: str = "mc3-general",
        solver_kwargs: Optional[Dict[str, object]] = None,
    ):
        self.catalog = catalog
        self.cost_model = cost_model
        self.solver_name = solver_name
        self.solver_kwargs = dict(solver_kwargs or {})

    def build_instance(self, query_log: Sequence[Query], name: str = "catalog") -> MC3Instance:
        """The MC³ instance for a query load against this cost model."""
        return MC3Instance(query_log, self.cost_model, name=name)

    def plan_and_apply(self, query_log: Sequence[Query]) -> PlanOutcome:
        """Run the full workflow and report the before/after search
        quality on the planned query load."""
        engine = SearchEngine(self.catalog)
        before = engine.quality(query_log)

        instance = self.build_instance(query_log)
        solver = make_solver(self.solver_name, **self.solver_kwargs)
        result = solver.solve(instance)

        suite = ClassifierSuite.train(result.solution.classifiers, self.cost_model)
        added = suite.complete_catalog(self.catalog)
        engine.invalidate()
        after = engine.quality(query_log)
        return PlanOutcome(result, suite, before, after, added)
