"""The item store: products with latent and observed properties.

This models the paper's motivating setting (Figure 1): a catalog whose
rows have *latent* properties ("this really is a white Adidas Juventus
shirt") only partially *observed* in structured columns — the rest is
hidden in titles, descriptions and images.  Search runs over observed
annotations only, so items with missing annotations silently drop out of
results until classifiers complete them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set

from repro.core.properties import PropertySet, property_set
from repro.exceptions import DatasetError


class Item:
    """A catalog item.

    ``latent`` is the ground truth set of properties the item satisfies
    (in production this is unknowable without inspection; in this
    simulation it drives classifier outputs).  ``observed`` is the
    seller-provided/derived subset the search engine can actually see.
    """

    __slots__ = ("item_id", "title", "latent", "observed")

    def __init__(
        self,
        item_id: str,
        title: str,
        latent: Iterable[str],
        observed: Iterable[str] = (),
    ):
        self.item_id = str(item_id)
        self.title = str(title)
        self.latent: PropertySet = property_set(latent)
        observed_set = property_set(observed)
        if not observed_set <= self.latent:
            extra = sorted(observed_set - self.latent)
            raise DatasetError(
                f"item {item_id!r}: observed properties {extra} not in latent truth"
            )
        self.observed: Set[str] = set(observed_set)

    def satisfies(self, props: PropertySet) -> bool:
        """Ground truth: does the item satisfy all the properties?"""
        return props <= self.latent

    def annotate(self, props: Iterable[str]) -> None:
        """Record properties as observed-true (classifier output,
        footnote 2: a positive conjunction yields a positive annotation
        for each individual condition)."""
        for prop in props:
            if prop not in self.latent:
                raise DatasetError(
                    f"item {self.item_id!r}: annotation {prop!r} contradicts latent truth"
                )
            self.observed.add(prop)

    def missing(self) -> PropertySet:
        """Latent properties not yet observed."""
        return frozenset(self.latent - self.observed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Item {self.item_id}: {self.title!r}, {len(self.observed)}/{len(self.latent)} observed>"


class Catalog:
    """An in-memory item store with a property → items index."""

    def __init__(self) -> None:
        self._items: Dict[str, Item] = {}

    def add(self, item: Item) -> None:
        if item.item_id in self._items:
            raise DatasetError(f"duplicate item id {item.item_id!r}")
        self._items[item.item_id] = item

    def add_all(self, items: Iterable[Item]) -> None:
        for item in items:
            self.add(item)

    def get(self, item_id: str) -> Item:
        try:
            return self._items[item_id]
        except KeyError:
            raise DatasetError(f"unknown item id {item_id!r}") from None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items.values())

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._items

    def items_with_latent(self, props: PropertySet) -> List[Item]:
        """Ground-truth matches (the ideal search result)."""
        return [item for item in self if item.satisfies(props)]

    def observed_completeness(self) -> float:
        """Fraction of latent (item, property) pairs already observed."""
        total = sum(len(item.latent) for item in self)
        if total == 0:
            return 1.0
        observed = sum(len(item.observed) for item in self)
        return observed / total
