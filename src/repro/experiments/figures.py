"""Definitions of every figure panel in the paper's evaluation
(Section 6.2, Figure 3a–3f).

Each ``figure_3x`` function regenerates the corresponding panel as a
:class:`~repro.experiments.report.FigureResult` — same series, same
axes.  Default sizes are scaled down from the paper's 32-core server
runs to single-process laptop budgets; pass ``full=True`` (or explicit
``sizes``) for paper-scale sweeps.  EXPERIMENTS.md records the scale
used for the checked-in results.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets import (
    bestbuy_like,
    private_like,
    private_like_category,
    private_like_short,
    synthetic,
    synthetic_k2,
)
from repro.experiments.report import FigureResult, Series, cache_hit_table
from repro.experiments.runner import SolverSpec, SweepResult, subset_order, sweep
from repro.solvers import make_solver

#: Classifier-length bound used for the general-problem synthetic runs
#: (the bounded-classifiers regime of Section 5.3, k' = 3); documented in
#: EXPERIMENTS.md.
SYNTHETIC_KPRIME = 3


def _sizes(default: Sequence[int], sizes: Optional[Sequence[int]]) -> List[int]:
    return list(sizes) if sizes is not None else list(default)


def _cache_notes(result: SweepResult, labels: Sequence[str], extra: str = "") -> str:
    """Figure notes with the per-run cache hit-rate table appended.

    Empty (or just ``extra``) when the sweep ran without a solution
    cache, so figure output is unchanged for uncached runs.
    """
    table = cache_hit_table(
        "#queries", [Series(label, result.cache_hit_points(label)) for label in labels]
    )
    return "\n".join(part for part in (extra, table) if part)


# ----------------------------------------------------------------------
# Figure 3a — BB dataset, uniform costs: cost vs #queries.
# ----------------------------------------------------------------------

def figure_3a(
    n: int = 1000, sizes: Optional[Sequence[int]] = None, seed: int = 0
) -> FigureResult:
    """BB: MC3[S] and Mixed are optimal (overlapping lines), then
    Query-Oriented, then Property-Oriented.

    The short-query algorithms operate on BB's length ≤ 2 slice (95% of
    the load) — the two problem settings are evaluated separately per
    Section 6.1.
    """
    instance = bestbuy_like(n, seed=seed).restricted_to(
        lambda q: len(q) <= 2, name=f"BB-short(n={n},seed={seed})"
    )
    solvers: List[SolverSpec] = [
        ("MC3[S]", "mc3-k2", {}),
        ("Mixed", "mixed", {}),
        ("Query-Oriented", "query-oriented", {}),
        ("Property-Oriented", "property-oriented", {}),
    ]
    default_sizes = [max(1, round(n * fraction / 10)) for fraction in range(1, 11)]
    result = sweep(instance, solvers, _sizes(default_sizes, sizes), seed=seed)
    return FigureResult(
        "Figure 3a",
        "BB dataset (uniform costs): classifier construction cost",
        "#queries",
        "construction cost",
        [Series(label, result.cost_points(label)) for label, _n, _k in solvers],
        notes=_cache_notes(result, [label for label, _n, _k in solvers]),
    )


# ----------------------------------------------------------------------
# Figure 3b — P dataset restricted to short queries: cost vs #queries.
# ----------------------------------------------------------------------

def figure_3b(
    n: int = 10_000, sizes: Optional[Sequence[int]] = None, seed: int = 0
) -> FigureResult:
    """P (short queries, ~80% of the load): MC3[S] optimal, ~30% below
    the Query-/Property-Oriented baselines."""
    instance = private_like_short(n, seed=seed)
    solvers: List[SolverSpec] = [
        ("MC3[S]", "mc3-k2", {}),
        ("Query-Oriented", "query-oriented", {}),
        ("Property-Oriented", "property-oriented", {}),
    ]
    default_sizes = [
        max(1, round(instance.n * fraction)) for fraction in (0.125, 0.25, 0.5, 0.75, 1.0)
    ]
    result = sweep(instance, solvers, _sizes(default_sizes, sizes), seed=seed)
    return FigureResult(
        "Figure 3b",
        "P dataset, short queries (varying costs): construction cost",
        "#queries",
        "construction cost",
        [Series(label, result.cost_points(label)) for label, _n, _k in solvers],
        notes=_cache_notes(result, [label for label, _n, _k in solvers]),
    )


# ----------------------------------------------------------------------
# Figure 3c — synthetic k <= 2: runtime with/without preprocessing.
# ----------------------------------------------------------------------

def figure_3c(
    sizes: Optional[Sequence[int]] = None, seed: int = 0, full: bool = False
) -> FigureResult:
    """Synthetic, k ≤ 2: MC3[S] runtime, preprocessing on vs off.  The
    paper reports preprocessing saving ~85% of the runtime."""
    default_sizes = (
        [1000, 5000, 10_000, 50_000, 100_000] if full else [1000, 2000, 5000, 10_000, 20_000]
    )
    chosen = _sizes(default_sizes, sizes)
    with_prep: List[Tuple[float, float]] = []
    without_prep: List[Tuple[float, float]] = []
    for n in chosen:
        instance = synthetic_k2(n, seed=seed)
        result = make_solver("mc3-k2").solve(instance)
        with_prep.append((n, result.elapsed_seconds))
        result = make_solver("mc3-k2", preprocess_steps=()).solve(instance)
        without_prep.append((n, result.elapsed_seconds))
    return FigureResult(
        "Figure 3c",
        "Synthetic, k<=2: MC3[S] runtime and the preprocessing effect",
        "#queries",
        "runtime (seconds)",
        [
            Series("MC3[S] + preprocessing", with_prep),
            Series("MC3[S] w/o preprocessing", without_prep),
        ],
    )


# ----------------------------------------------------------------------
# Figure 3d — P dataset, general case: cost vs #queries, 5 algorithms.
# ----------------------------------------------------------------------

def figure_3d(
    n: int = 4000,
    sizes: Optional[Sequence[int]] = None,
    seed: int = 0,
    fashion_point: bool = True,
) -> FigureResult:
    """P (general): MC3[G] best overall; Short-First best on the
    1000-query *fashion* slice (96% short queries), which per the paper
    replaces the random 1000-query subset."""
    instance = private_like(n, seed=seed)
    solvers: List[SolverSpec] = [
        ("MC3[G]", "mc3-general", {}),
        ("Short-First", "short-first", {}),
        ("Local-Greedy", "local-greedy", {}),
        ("Query-Oriented", "query-oriented", {}),
        ("Property-Oriented", "property-oriented", {}),
    ]
    default_sizes = sorted({max(2, n // 4), max(2, n // 2), n})
    chosen = [size for size in _sizes(default_sizes, sizes) if size > 1000 or not fashion_point]
    result = sweep(instance, solvers, chosen, seed=seed)

    series_points: Dict[str, List[Tuple[float, float]]] = {
        label: result.cost_points(label) for label, _n, _k in solvers
    }
    if fashion_point:
        fashion = private_like_category("fashion", 1000, seed=seed)
        for label, name, kwargs in solvers:
            solver_result = make_solver(name, **kwargs).solve(fashion)
            series_points[label] = [(1000, solver_result.cost)] + series_points[label]
    return FigureResult(
        "Figure 3d",
        "P dataset, general case: construction cost (x=1000 is the fashion slice)",
        "#queries",
        "construction cost",
        [Series(label, series_points[label]) for label, _n, _k in solvers],
        notes=_cache_notes(
            result,
            [label for label, _n, _k in solvers],
            extra="x=1000 uses the fashion-category slice (96% short), per Section 6.2.",
        ),
    )


# ----------------------------------------------------------------------
# Figures 3e/3f — synthetic, general case: preprocessing effect on cost
# and runtime.
# ----------------------------------------------------------------------

def _general_prep_sweep(
    sizes: Sequence[int], seed: int
) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]], List[Tuple[float, float]], List[Tuple[float, float]]]:
    """MC3[G] with/without preprocessing in the *scalable* configuration:
    ``lp_size_limit=0`` forces the greedy + primal–dual pair that any
    paper-scale (100k-query) run must use — the LP's constraint matrix is
    out of budget there — so scaled-down panels exercise the same code
    path whose cost/runtime the paper reports."""
    cost_with: List[Tuple[float, float]] = []
    cost_without: List[Tuple[float, float]] = []
    time_with: List[Tuple[float, float]] = []
    time_without: List[Tuple[float, float]] = []
    for n in sizes:
        instance = synthetic(
            n, seed=seed, max_classifier_length=SYNTHETIC_KPRIME
        )
        result = make_solver("mc3-general", lp_size_limit=0).solve(instance)
        cost_with.append((n, result.cost))
        time_with.append((n, result.elapsed_seconds))
        result = make_solver(
            "mc3-general", lp_size_limit=0, preprocess_steps=()
        ).solve(instance)
        cost_without.append((n, result.cost))
        time_without.append((n, result.elapsed_seconds))
    return cost_with, cost_without, time_with, time_without


def figure_3e(
    sizes: Optional[Sequence[int]] = None, seed: int = 0, full: bool = False
) -> FigureResult:
    """Synthetic, general case: construction cost with/without
    preprocessing (paper: ~35% saved)."""
    default_sizes = [1000, 5000, 10_000, 50_000, 100_000] if full else [1000, 2000, 5000]
    chosen = _sizes(default_sizes, sizes)
    cost_with, cost_without, _tw, _to = _general_prep_sweep(chosen, seed)
    return FigureResult(
        "Figure 3e",
        "Synthetic, general case: preprocessing effect on construction cost",
        "#queries",
        "construction cost",
        [
            Series("MC3[G] + preprocessing", cost_with),
            Series("MC3[G] w/o preprocessing", cost_without),
        ],
        notes=f"classifiers bounded at k'={SYNTHETIC_KPRIME} (Section 5.3).",
    )


def figure_3f(
    sizes: Optional[Sequence[int]] = None, seed: int = 0, full: bool = False
) -> FigureResult:
    """Synthetic, general case: runtime with/without preprocessing
    (paper: ~50% saved)."""
    default_sizes = [1000, 5000, 10_000, 50_000, 100_000] if full else [1000, 2000, 5000]
    chosen = _sizes(default_sizes, sizes)
    _cw, _co, time_with, time_without = _general_prep_sweep(chosen, seed)
    return FigureResult(
        "Figure 3f",
        "Synthetic, general case: preprocessing effect on runtime",
        "#queries",
        "runtime (seconds)",
        [
            Series("MC3[G] + preprocessing", time_with),
            Series("MC3[G] w/o preprocessing", time_without),
        ],
        notes=f"classifiers bounded at k'={SYNTHETIC_KPRIME} (Section 5.3).",
    )
