"""Classifier-noise experiment: accuracy vs end-to-end search quality.

The paper fixes classifier accuracy at an implicit threshold and prices
training accordingly (Section 2.1 footnote; Section 8 names the
cost/accuracy trade-off as future work).  This experiment measures what
that threshold buys: train the planned classifiers at varying error
rates, complete the catalog, and watch recall and prediction quality
degrade.

Completion is conservative (a false positive would poison the store, so
contradicting annotations are never written — the simulation counts
them via the audit instead); the recall loss therefore comes from false
*negatives*: items a noisy classifier fails to annotate.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.catalog import ClassifierSuite, SearchEngine
from repro.catalog.simulate import catalog_for_load
from repro.datasets import private_like
from repro.experiments.report import FigureResult, Series
from repro.solvers import make_solver


def noise_quality_curve(
    n: int = 200,
    error_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    seed: int = 0,
    observe_rate: float = 0.3,
) -> FigureResult:
    """Mean recall and audit precision/miss rate vs classifier error rate."""
    load = private_like(n, seed=seed)
    plan = make_solver("mc3-general").solve(load)

    recall_points: List[Tuple[float, float]] = []
    miss_points: List[Tuple[float, float]] = []
    for error_rate in error_rates:
        catalog = catalog_for_load(
            load, observe_rate=observe_rate, distractors=n, seed=seed
        )
        suite = ClassifierSuite.train(
            plan.solution.classifiers, load.cost, error_rate=error_rate, seed=seed
        )
        suite.complete_catalog(catalog)
        engine = SearchEngine(catalog)
        report = engine.quality(load.queries)
        audit = suite.audit(catalog)
        positives = audit["tp"] + audit["fn"]
        miss_rate = audit["fn"] / positives if positives else 0.0
        recall_points.append((error_rate, report.mean_recall))
        miss_points.append((error_rate, miss_rate))

    return FigureResult(
        "Noise",
        f"Classifier error rate vs search quality (P-like n={load.n})",
        "classifier error rate",
        "mean recall / classifier miss rate",
        [
            Series("mean search recall", recall_points),
            Series("classifier miss rate (fn / positives)", miss_points),
        ],
        notes=(
            "completion never writes contradicting annotations, so noise "
            "costs recall through false negatives only."
        ),
    )
