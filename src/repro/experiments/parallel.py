"""Parallel experiment execution.

The paper ran on 32 cores, and its preprocessing explicitly enables
solving property-disjoint components in parallel (Section 3, step 2).
This module parallelises at the *experiment* level — each (solver,
subset size) cell of a sweep is an independent task.  Since the shared
solving engine landed, a second level is available *inside* each cell:
passing ``jobs > 1`` fans the property-disjoint components of a single
solve over worker processes too (see :mod:`repro.engine`).  The two
levels compose — up to ``processes × jobs`` workers may be live — so
size them together against the machine's core count.

Instances must be picklable: every shipped cost model is, but
:class:`~repro.core.costs.CallableCost` around a lambda is not (use a
module-level function instead).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.instance import MC3Instance
from repro.exceptions import SolverError
from repro.experiments.runner import (
    SolverSpec,
    SweepResult,
    cache_hit_rate,
    subset_order,
    with_cache,
    with_jobs,
)
from repro.solvers import make_solver


def _solve_cell(
    payload: Tuple[MC3Instance, str, str, Dict[str, object], int]
) -> Tuple[str, int, Optional[float], Optional[float], Optional[str], Optional[float]]:
    """Worker: solve one (solver, size) cell.  Returns
    (label, size, cost, seconds, error, cache hit rate)."""
    sub, label, solver_name, kwargs, size = payload
    try:
        result = make_solver(solver_name, **kwargs).solve(sub)
    except SolverError as exc:
        return label, size, None, None, str(exc), None
    return (
        label,
        size,
        result.cost,
        result.elapsed_seconds,
        None,
        cache_hit_rate(result.details),
    )


def parallel_sweep(
    instance: MC3Instance,
    solvers: Sequence[SolverSpec],
    sizes: Sequence[int],
    seed: int = 0,
    processes: Optional[int] = None,
    allow_failures: bool = False,
    jobs: int = 1,
    cache: object = None,
) -> SweepResult:
    """Like :func:`repro.experiments.runner.sweep`, fanned out over a
    process pool.  Deterministic: results are identical to the
    sequential sweep (same subset order, same solvers), only wall-clock
    differs.  ``jobs > 1`` additionally parallelises each solve over its
    components (engine level); the worker count multiplies to at most
    ``processes × jobs``.  ``cache`` must be a picklable *spec* (choice
    string or :class:`~repro.engine.cache.CacheConfig`, not a live
    cache); each worker process resolves its own store, so hits accrue
    within a worker (or across workers through a shared disk
    directory)."""
    clamped: List[int] = []
    for size in sizes:
        value = min(int(size), instance.n)
        if value >= 1 and value not in clamped:
            clamped.append(value)
    order = subset_order(instance.n, seed)
    result = SweepResult(instance.name, clamped)

    tasks = []
    for size in clamped:
        sub = instance.subset(size, order=order)
        for label, name, kwargs in solvers:
            tasks.append(
                (sub, label, name, with_cache(with_jobs(kwargs, jobs), cache), size)
            )

    with ProcessPoolExecutor(max_workers=processes) as pool:
        for label, size, cost, seconds, error, hit_rate in pool.map(
            _solve_cell, tasks
        ):
            if error is not None:
                if not allow_failures:
                    raise SolverError(error)
                result.record_failure(label, size, error)
                continue
            result.costs.setdefault(label, {})[size] = cost
            result.times.setdefault(label, {})[size] = seconds
            if hit_rate is not None:
                result.cache_hit_rates.setdefault(label, {})[size] = hit_rate
    return result
