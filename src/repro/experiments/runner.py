"""Experiment runner: subset sweeps of a dataset across solvers.

Section 6.1: "for each inspected dataset, along with running the
experiments on its entire query load, we also randomly select subsets of
this query set of different cardinalities and run the algorithms over
these corresponding sub-instances."  The runner fixes one random
permutation per (dataset, seed) and takes prefixes, so sweeps are nested
(a 2000-query subset contains the 1000-query one) and deterministic.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.instance import MC3Instance
from repro.core.solution import SolverResult
from repro.exceptions import SolverError
from repro.solvers import Solver, make_solver


def subset_order(n: int, seed: int) -> List[int]:
    """A deterministic random permutation of query indices."""
    order = list(range(n))
    random.Random(f"subset-order-{seed}").shuffle(order)
    return order


class SweepResult:
    """Costs and runtimes per (solver, subset size)."""

    def __init__(self, dataset_name: str, sizes: Sequence[int]):
        self.dataset_name = dataset_name
        self.sizes = list(sizes)
        self.costs: Dict[str, Dict[int, float]] = {}
        self.times: Dict[str, Dict[int, float]] = {}
        self.failures: Dict[str, Dict[int, str]] = {}
        # Component-cache hit rate per cell (only cells whose solver ran
        # with a cache record one) — sweeps over nested subset prefixes
        # re-solve shared components, so this shows how much the sweep
        # amortized.
        self.cache_hit_rates: Dict[str, Dict[int, float]] = {}

    def record(self, solver_label: str, size: int, result: SolverResult) -> None:
        self.costs.setdefault(solver_label, {})[size] = result.cost
        self.times.setdefault(solver_label, {})[size] = result.elapsed_seconds
        hit_rate = cache_hit_rate(result.details)
        if hit_rate is not None:
            self.cache_hit_rates.setdefault(solver_label, {})[size] = hit_rate

    def record_failure(self, solver_label: str, size: int, message: str) -> None:
        self.failures.setdefault(solver_label, {})[size] = message

    def cost_points(self, solver_label: str) -> List[Tuple[float, float]]:
        data = self.costs.get(solver_label, {})
        return [(size, data[size]) for size in self.sizes if size in data]

    def time_points(self, solver_label: str) -> List[Tuple[float, float]]:
        data = self.times.get(solver_label, {})
        return [(size, data[size]) for size in self.sizes if size in data]

    def cache_hit_points(self, solver_label: str) -> List[Tuple[float, float]]:
        data = self.cache_hit_rates.get(solver_label, {})
        return [(size, data[size]) for size in self.sizes if size in data]


def cache_hit_rate(details: Dict[str, object]) -> Optional[float]:
    """The engine's cache hit rate from a result's details, if any."""
    engine = details.get("engine")
    if not isinstance(engine, dict):
        return None
    cache = engine.get("cache")
    if not isinstance(cache, dict):
        return None
    rate = cache.get("hit_rate")
    return float(rate) if isinstance(rate, (int, float)) else None


SolverSpec = Tuple[str, str, Dict[str, object]]
"""(display label, registry name, constructor kwargs)."""


def with_jobs(kwargs: Dict[str, object], jobs: int) -> Dict[str, object]:
    """Inject a per-solve component-parallelism budget into a spec's
    constructor kwargs.  An explicit ``jobs`` in the spec wins, so a
    sweep can pin individual solvers while defaulting the rest."""
    if jobs == 1 or "jobs" in kwargs:
        return dict(kwargs)
    merged = dict(kwargs)
    merged["jobs"] = jobs
    return merged


def with_cache(kwargs: Dict[str, object], cache: object) -> Dict[str, object]:
    """Inject a component-cache spec into a spec's constructor kwargs
    (same precedence convention as :func:`with_jobs`: an explicit
    ``cache`` in the spec wins)."""
    if cache is None or "cache" in kwargs:
        return dict(kwargs)
    merged = dict(kwargs)
    merged["cache"] = cache
    return merged


def sweep(
    instance: MC3Instance,
    solvers: Sequence[SolverSpec],
    sizes: Sequence[int],
    seed: int = 0,
    allow_failures: bool = False,
    jobs: int = 1,
    cache: object = None,
) -> SweepResult:
    """Run each solver over random prefixes of the query load.

    Sizes exceeding the load are clamped to the full load (and
    deduplicated).  ``allow_failures=True`` records solver errors (e.g.
    Mixed on non-uniform costs) instead of propagating them.  ``jobs``
    is handed to every solver for engine-level component parallelism —
    solutions are unchanged, only wall-clock differs.  ``cache`` (a
    :mod:`repro.engine.cache` spec) is handed to every solver that
    accepts it; nested prefixes share components, so later subset sizes
    hit the earlier sizes' cached solutions.
    """
    clamped: List[int] = []
    for size in sizes:
        value = min(int(size), instance.n)
        if value >= 1 and value not in clamped:
            clamped.append(value)
    order = subset_order(instance.n, seed)
    result = SweepResult(instance.name, clamped)
    for size in clamped:
        sub = instance.subset(size, order=order)
        for label, name, kwargs in solvers:
            solver = make_solver(name, **with_cache(with_jobs(kwargs, jobs), cache))
            try:
                result.record(label, size, solver.solve(sub))
            except SolverError as exc:
                if not allow_failures:
                    raise
                result.record_failure(label, size, str(exc))
    return result


def time_solver(
    factory: Callable[[], Solver], instance: MC3Instance
) -> SolverResult:
    """Build and run a solver once (pre-construction outside the clock is
    unnecessary — constructors are trivial — but the helper keeps the
    call sites uniform)."""
    return factory().solve(instance)
