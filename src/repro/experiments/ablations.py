"""Ablation experiments for the design choices DESIGN.md calls out.

Not figures from the paper, but measurements backing its in-text claims
and our implementation decisions:

* :func:`maxflow_comparison` — Section 6.1 reports testing bipartite
  max-flow algorithms and settling on Dinic; we compare all four
  kernels on the WVC networks produced by the k = 2 reduction.
* :func:`preprocessing_steps` — per-step contribution of Algorithm 1
  (the paper reports only aggregate savings).
* :func:`wsc_methods` — greedy vs LP rounding vs primal–dual vs the
  paper's best-of inside Algorithm 3.
* :func:`short_first_threshold` — where Short-First overtakes plain
  MC3[G] as the share of short queries grows.
* :func:`sublinear_solvers` — sampled and streaming backends vs the
  materializing MC3[G] pipeline (cost and runtime on one load).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.instance import MC3Instance
from repro.datasets import private_like, synthetic, synthetic_k2  # noqa: F401
from repro.experiments.report import FigureResult, Series
from repro.flow import ALGORITHMS
from repro.preprocess import ALL_STEPS
from repro.solvers import make_solver


def maxflow_comparison(
    sizes: Optional[Sequence[int]] = None, seed: int = 0
) -> FigureResult:
    """MC3[S] runtime per max-flow kernel on synthetic k ≤ 2 loads."""
    chosen = list(sizes) if sizes is not None else [1000, 5000, 10_000]
    series: Dict[str, List[Tuple[float, float]]] = {name: [] for name in sorted(ALGORITHMS)}
    for n in chosen:
        instance = synthetic_k2(n, seed=seed)
        for name in sorted(ALGORITHMS):
            result = make_solver("mc3-k2", flow_algorithm=name).solve(instance)
            series[name].append((n, result.elapsed_seconds))
    return FigureResult(
        "Ablation A1",
        "Max-flow kernel comparison inside MC3[S] (synthetic, k<=2)",
        "#queries",
        "runtime (seconds)",
        [Series(name, points) for name, points in series.items()],
    )


def preprocessing_steps(
    n: int = 2000, seed: int = 0
) -> FigureResult:
    """Cost and runtime of MC3[G] as Algorithm 1 steps are enabled
    cumulatively (∅, {1}, {1,2}, {1,2,3}, {1,2,3,4})."""
    instance = synthetic(n, seed=seed, max_classifier_length=3)
    cumulative: List[Tuple[str, Tuple[int, ...]]] = [
        ("none", ()),
        ("step1", (1,)),
        ("steps1-2", (1, 2)),
        ("steps1-3", (1, 2, 3)),
        ("steps1-4", ALL_STEPS),
    ]
    cost_points: List[Tuple[float, float]] = []
    time_points: List[Tuple[float, float]] = []
    for index, (label, steps) in enumerate(cumulative):
        # lp_size_limit=0 selects the scalable greedy/primal-dual pair —
        # the same configuration as Figures 3e/3f (at paper scale the LP
        # is out of budget, and the LP arm happens to be insensitive to
        # pruning at small scales, masking the effect being measured).
        result = make_solver(
            "mc3-general", lp_size_limit=0, preprocess_steps=steps
        ).solve(instance)
        cost_points.append((index, result.cost))
        time_points.append((index, result.elapsed_seconds))
    labels = ", ".join(f"{i}={label}" for i, (label, _s) in enumerate(cumulative))
    return FigureResult(
        "Ablation A2",
        f"Per-step preprocessing contribution on MC3[G] (synthetic n={n})",
        "steps enabled",
        "cost / seconds",
        [Series("cost", cost_points), Series("runtime", time_points)],
        notes=f"x axis: {labels}",
    )


def wsc_methods(
    n: int = 2000, seed: int = 0
) -> FigureResult:
    """Algorithm 3's inner WSC algorithm: greedy vs LP vs primal–dual vs
    best-of (the paper runs greedy + LP and keeps the cheaper)."""
    instance = private_like(n, seed=seed)
    methods = ["greedy", "bucket_greedy", "lp", "primal_dual", "best_of"]
    cost_points: List[Tuple[float, float]] = []
    time_points: List[Tuple[float, float]] = []
    for index, method in enumerate(methods):
        result = make_solver("mc3-general", wsc_method=method).solve(instance)
        cost_points.append((index, result.cost))
        time_points.append((index, result.elapsed_seconds))
    labels = ", ".join(f"{i}={m}" for i, m in enumerate(methods))
    return FigureResult(
        "Ablation A3",
        f"WSC method inside MC3[G] (P-like n={n})",
        "method",
        "cost / seconds",
        [Series("cost", cost_points), Series("runtime", time_points)],
        notes=f"x axis: {labels}",
    )


def redundancy_cost(
    n: int = 1500, seed: int = 0, redundancies: Sequence[int] = (1, 2)
) -> FigureResult:
    """Price of robustness: r-redundant coverage vs the plain optimum.

    Runs on the load's multi-property queries (singleton queries have a
    single candidate classifier and cannot be made redundant)."""
    base = private_like(n, seed=seed)
    instance = base.restricted_to(lambda q: len(q) >= 2, name=f"{base.name}|multi")
    points: List[Tuple[float, float]] = []
    for r in redundancies:
        result = make_solver("mc3-robust", redundancy=r).solve(instance)
        points.append((r, result.cost))
    plain = make_solver("mc3-general").solve(instance)
    return FigureResult(
        "Ablation A5",
        f"Cost of r-redundant coverage (P-like multi-property queries, n={instance.n})",
        "redundancy r",
        "construction cost",
        [
            Series("robust greedy", points),
            Series("plain MC3[G] (r=1 reference)", [(1, plain.cost)]),
        ],
    )


def short_first_threshold(
    n: int = 2000, seed: int = 0, shares: Sequence[float] = (0.5, 0.7, 0.85, 0.95)
) -> FigureResult:
    """Short-First vs MC3[G] as the short-query share grows.

    Mixes the short and long parts of a P-like load at controlled
    ratios; the paper observes Short-First winning at 96% short (the
    fashion slice)."""
    base = private_like(max(n * 2, 2000), seed=seed)
    short_queries = [q for q in base.queries if len(q) <= 2]
    long_queries = [q for q in base.queries if len(q) > 2]
    sf_points: List[Tuple[float, float]] = []
    general_points: List[Tuple[float, float]] = []
    for share in shares:
        want_short = round(n * share)
        want_long = n - want_short
        if want_short > len(short_queries) or want_long > len(long_queries):
            continue
        mixed = short_queries[:want_short] + long_queries[:want_long]
        instance = MC3Instance(mixed, base.cost, name=f"mix-{share:.2f}")
        sf = make_solver("short-first").solve(instance)
        general = make_solver("mc3-general").solve(instance)
        sf_points.append((share, sf.cost))
        general_points.append((share, general.cost))
    return FigureResult(
        "Ablation A4",
        f"Short-First vs MC3[G] by short-query share (P-like, n={n})",
        "short share",
        "construction cost",
        [Series("Short-First", sf_points), Series("MC3[G]", general_points)],
    )


def sublinear_solvers(
    n: int = 2000, seed: int = 0
) -> FigureResult:
    """Sub-linear backends vs Algorithm 3: cost and runtime of the
    sampling-based greedy and the one-pass streaming solver against the
    materializing MC3[G] pipeline on the same synthetic load."""
    instance = synthetic(n, seed=seed)
    solvers = ["mc3-general", "mc3-sampled", "mc3-streaming"]
    cost_points: List[Tuple[float, float]] = []
    time_points: List[Tuple[float, float]] = []
    for index, name in enumerate(solvers):
        kwargs = {"seed": seed} if name == "mc3-sampled" else {}
        result = make_solver(name, **kwargs).solve(instance)
        cost_points.append((index, result.cost))
        time_points.append((index, result.elapsed_seconds))
    labels = ", ".join(f"{i}={s}" for i, s in enumerate(solvers))
    return FigureResult(
        "Ablation A6",
        f"Sub-linear solvers vs MC3[G] (synthetic n={n})",
        "solver",
        "cost / seconds",
        [Series("cost", cost_points), Series("runtime", time_points)],
        notes=f"x axis: {labels}",
    )
