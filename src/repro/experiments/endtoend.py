"""End-to-end experiment: classifier budget vs search recall.

The paper's economics in one curve: spend more on classifiers → cover
more of the query load → users see more of the items they searched for.
The pipeline is the full motivating stack — generated query load →
simulated catalog with missing annotations → budgeted classifier plan
(the partial-cover extension) → simulated training → offline completion
→ recall measurement against latent ground truth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog import ClassifierSuite, SearchEngine
from repro.catalog.simulate import catalog_for_load
from repro.core.instance import MC3Instance
from repro.datasets import private_like
from repro.experiments.report import FigureResult, Series
from repro.extensions import greedy_partial_cover


def budget_recall_curve(
    n: int = 300,
    budget_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed: int = 0,
    items_per_query: int = 3,
    observe_rate: float = 0.35,
) -> FigureResult:
    """Mean search recall as a function of the classifier budget.

    The budget axis is the fraction of the full-coverage cost; the
    planner is the bundle greedy from the partial-cover extension with
    query weights proportional to (simulated) popularity.
    """
    load = private_like(n, seed=seed)
    # Popularity: head queries (short) matter more, as in real logs.
    weights = {q: (3.0 if len(q) <= 2 else 1.0) for q in load.queries}
    full_cost = greedy_partial_cover(load, weights, budget=float("inf")).cost

    recall_points: List[Tuple[float, float]] = []
    covered_points: List[Tuple[float, float]] = []
    total_weight = sum(weights.values())
    for fraction in budget_fractions:
        budget = full_cost * fraction
        plan = greedy_partial_cover(load, weights, budget=budget)
        # Fresh catalog per budget: completion mutates the store.
        catalog = catalog_for_load(
            load,
            items_per_query=items_per_query,
            observe_rate=observe_rate,
            distractors=n,
            seed=seed,
        )
        suite = ClassifierSuite.train(plan.classifiers, load.cost)
        suite.complete_catalog(catalog)
        engine = SearchEngine(catalog)
        report = engine.quality(load.queries)
        recall_points.append((fraction, report.mean_recall))
        covered_points.append((fraction, plan.covered_weight / total_weight))

    return FigureResult(
        "End-to-end",
        f"Classifier budget vs search recall (P-like n={load.n}, "
        f"observe_rate={observe_rate})",
        "budget (fraction of full-coverage cost)",
        "mean recall / covered weight share",
        [
            Series("mean search recall", recall_points),
            Series("covered query-weight share", covered_points),
        ],
        notes=(
            "recall at budget 0 reflects seller-provided annotations alone; "
            "budget 1.0 gives full coverage and recall 1.0 on covered queries."
        ),
    )
