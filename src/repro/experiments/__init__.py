"""Experiment harness: regenerates every table and figure of the paper's
evaluation (Section 6), plus the ablations DESIGN.md calls out."""

from repro.experiments.ablations import (
    maxflow_comparison,
    preprocessing_steps,
    redundancy_cost,
    short_first_threshold,
    sublinear_solvers,
    wsc_methods,
)
from repro.experiments.categories import category_comparison
from repro.experiments.endtoend import budget_recall_curve
from repro.experiments.figures import (
    figure_3a,
    figure_3b,
    figure_3c,
    figure_3d,
    figure_3e,
    figure_3f,
)
from repro.experiments.noise import noise_quality_curve
from repro.experiments.parallel import parallel_sweep
from repro.experiments.report import FigureResult, Series, average_figures, render_table
from repro.experiments.runner import SweepResult, subset_order, sweep
from repro.experiments.tables import TableResult, table_1

__all__ = [
    "FigureResult",
    "Series",
    "SweepResult",
    "TableResult",
    "average_figures",
    "budget_recall_curve",
    "category_comparison",
    "figure_3a",
    "figure_3b",
    "figure_3c",
    "figure_3d",
    "figure_3e",
    "figure_3f",
    "maxflow_comparison",
    "noise_quality_curve",
    "parallel_sweep",
    "preprocessing_steps",
    "redundancy_cost",
    "render_table",
    "short_first_threshold",
    "sublinear_solvers",
    "subset_order",
    "sweep",
    "table_1",
    "wsc_methods",
]
