"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig3a
    python -m repro.experiments fig3c --full        # paper-scale sizes
    python -m repro.experiments all --seed 7
    python -m repro.experiments ablation-maxflow
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.core.kernels.registry import backend_choices, set_default_backend
from repro.engine.cache import (
    CACHE_ENV_VAR,
    CacheConfig,
    cache_choices,
    resolve_cache,
    set_default_cache,
)
from repro.experiments.ablations import (
    maxflow_comparison,
    preprocessing_steps,
    redundancy_cost,
    short_first_threshold,
    sublinear_solvers,
    wsc_methods,
)
from repro.experiments.categories import category_comparison
from repro.experiments.endtoend import budget_recall_curve
from repro.experiments.noise import noise_quality_curve
from repro.experiments.figures import (
    figure_3a,
    figure_3b,
    figure_3c,
    figure_3d,
    figure_3e,
    figure_3f,
)
from repro.experiments.tables import table_1


def _run_table1(seed: int, full: bool):
    if full:
        return table_1(seed=seed)
    # Scaled-down sizes keep the smoke run quick; Table 1 numbers then
    # show the requested n per dataset rather than the paper's.
    return table_1(bb_n=1000, p_n=2000, s_n=10_000, seed=seed)


EXPERIMENTS: Dict[str, Callable[[int, bool], object]] = {
    "table1": _run_table1,
    "fig3a": lambda seed, full: figure_3a(seed=seed),
    "fig3b": lambda seed, full: figure_3b(n=10_000 if full else 3000, seed=seed),
    "fig3c": lambda seed, full: figure_3c(seed=seed, full=full),
    "fig3d": lambda seed, full: figure_3d(n=10_000 if full else 4000, seed=seed),
    "fig3e": lambda seed, full: figure_3e(seed=seed, full=full),
    "fig3f": lambda seed, full: figure_3f(seed=seed, full=full),
    "ablation-maxflow": lambda seed, full: maxflow_comparison(seed=seed),
    "ablation-preprocess": lambda seed, full: preprocessing_steps(seed=seed),
    "ablation-wsc": lambda seed, full: wsc_methods(seed=seed),
    "ablation-shortfirst": lambda seed, full: short_first_threshold(seed=seed),
    "ablation-robust": lambda seed, full: redundancy_cost(seed=seed),
    "ablation-sublinear": lambda seed, full: sublinear_solvers(
        n=5000 if full else 2000, seed=seed
    ),
    "endtoend": lambda seed, full: budget_recall_curve(
        n=1000 if full else 300, seed=seed
    ),
    "categories": lambda seed, full: category_comparison(
        n=1000 if full else 400, seed=seed
    ),
    "noise": lambda seed, full: noise_quality_curve(
        n=600 if full else 200, seed=seed
    ),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures (Section 6).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed (default 0)")
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale sizes (slow); default is a scaled-down sweep",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also append the rendered results to this file (markdown-friendly)",
    )
    parser.add_argument(
        "--backend",
        choices=backend_choices(),
        default=None,
        help="kernel backend for the mask hot paths (process-wide default "
        "for every solver the experiments construct); output is "
        "bit-identical across backends",
    )
    parser.add_argument(
        "--cache",
        choices=cache_choices(),
        default=None,
        help="component-solution cache (process-wide default for every "
        "solver the experiments construct): off, memory, or disk. "
        f"Default: the {CACHE_ENV_VAR} environment variable, else off. "
        "Results are bit-identical with and without the cache",
    )
    parser.add_argument(
        "--cache-dir",
        dest="cache_dir",
        default=None,
        metavar="DIR",
        help="directory for the disk cache (implies --cache disk)",
    )
    parser.add_argument(
        "--cache-max-mb",
        dest="cache_max_mb",
        type=float,
        default=None,
        metavar="MB",
        help="cache size budget in megabytes (default 64)",
    )
    args = parser.parse_args(argv)

    if args.backend is not None:
        set_default_backend(args.backend)

    cache_enabled = (
        args.cache is not None
        or args.cache_dir is not None
        or args.cache_max_mb is not None
    )
    if cache_enabled:
        set_default_cache(
            CacheConfig(
                backend=args.cache
                or ("disk" if args.cache_dir is not None else "memory"),
                directory=args.cache_dir,
                max_mb=args.cache_max_mb,
            )
        )

    handle = open(args.output, "a", encoding="utf-8") if args.output else None

    def emit(text: str) -> None:
        print(text)
        if handle is not None:
            handle.write(text + "\n")

    try:
        names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for name in names:
            started = time.perf_counter()
            result = EXPERIMENTS[name](args.seed, args.full)
            elapsed = time.perf_counter() - started
            emit(result.render())
            emit(f"[{name} completed in {elapsed:.1f}s]")
            if cache_enabled:
                store = resolve_cache(None)
                if store is not None:
                    stats = store.stats()
                    lookups = stats["hits"] + stats["misses"]
                    rate = stats["hits"] / lookups if lookups else 0.0
                    emit(
                        f"[cache: {stats['kind']} — {stats['hits']} hit(s) / "
                        f"{lookups} lookup(s) ({rate:.0%}), "
                        f"{stats['entries']} entr(ies), {stats['bytes']} bytes]"
                    )
            emit("")
    finally:
        if handle is not None:
            handle.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
