"""Per-category breakdown of the Private-like dataset.

Section 6.1 notes that P "is in fact a union of several sub-datasets
pertaining to different categories of products (Electronics, Fashion,
Home & Garden)" and runs separate experiments on the fashion slice.
This experiment solves each category slice with the main algorithm and
the baselines, exposing how workload structure (short-query share,
property sharing) moves the winners' margins.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.stats import InstanceStats
from repro.datasets import private_like_category
from repro.datasets.private import CATEGORY_MIX
from repro.experiments.tables import TableResult
from repro.solvers import make_solver

SOLVERS = (
    ("MC3[G]", "mc3-general"),
    ("Short-First", "short-first"),
    ("Query-Oriented", "query-oriented"),
    ("Property-Oriented", "property-oriented"),
)


def category_comparison(n: int = 1000, seed: int = 0) -> TableResult:
    """One row per category: load shape + per-algorithm construction cost."""
    rows: List[Sequence[object]] = []
    for category in sorted(CATEGORY_MIX):
        instance = private_like_category(category, n=n, seed=seed)
        stats = InstanceStats(instance, sample_costs=100)
        row: List[object] = [
            category,
            instance.n,
            f"{stats.short_fraction:.0%}",
        ]
        for _label, solver_name in SOLVERS:
            result = make_solver(solver_name).solve(instance)
            row.append(result.cost)
        rows.append(row)
    headers = ["category", "queries", "short"] + [label for label, _n in SOLVERS]
    return TableResult(
        f"Per-category comparison (P-like slices, n={n} each)",
        headers,
        rows,
    )
