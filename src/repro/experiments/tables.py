"""Table 1: the dataset summary (Section 6.1).

| Dataset       | # of queries | Max cost | Max length |
|---------------|--------------|----------|------------|
| BestBuy (BB)  | 1000         | 1        | 4          |
| Private (P)   | 10,000       | 63       | 5*         |
| Synthetic (S) | 100,000      | 50       | 10         |

\\* the printed table says 5 while the text describes lengths 1–6; we
follow the text (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.stats import InstanceStats
from repro.datasets import bestbuy_like, private_like, synthetic
from repro.experiments.report import render_table


class TableResult:
    """Rendered table plus the raw rows for programmatic checks."""

    def __init__(self, title: str, headers: Sequence[str], rows: List[Sequence[object]]):
        self.title = title
        self.headers = list(headers)
        self.rows = rows

    def render(self) -> str:
        return f"== {self.title} ==\n" + render_table(self.headers, self.rows)


def table_1(
    bb_n: int = 1000,
    p_n: int = 10_000,
    s_n: int = 100_000,
    seed: int = 0,
    cost_sample: int = 500,
) -> TableResult:
    """Regenerate Table 1 from the three dataset generators.

    ``cost_sample`` bounds how many queries the max-cost scan inspects
    (the lazily priced synthetic universe cannot be scanned exhaustively).
    """
    rows: List[Sequence[object]] = []
    for stats in (
        InstanceStats(bestbuy_like(bb_n, seed=seed), sample_costs=cost_sample),
        InstanceStats(private_like(p_n, seed=seed), sample_costs=cost_sample),
        InstanceStats(synthetic(s_n, seed=seed), sample_costs=cost_sample),
    ):
        row = stats.as_row()
        rows.append(
            [row["dataset"], row["queries"], row["max_cost"], row["max_length"]]
        )
    return TableResult(
        "Table 1: datasets used in the experiments",
        ["Dataset", "# of queries", "Max cost", "Max length"],
        rows,
    )
