"""Plain-text rendering of experiment results (tables and series).

The paper's figures are line charts (cost or runtime vs query-load
cardinality); we render the same data as aligned text series so the
harness works anywhere and diffs cleanly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A simple aligned ASCII table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            columns[index].append(_fmt(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip([str(h) for h in headers], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row_index in range(len(rows)):
        lines.append(
            "  ".join(
                columns[col][row_index + 1].rjust(widths[col])
                for col in range(len(headers))
            )
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:,.0f}"
        return f"{value:.3g}"
    if value is None:
        return "-"
    return str(value)


class Series:
    """One line of a figure: a name and (x, y) points."""

    def __init__(self, name: str, points: Sequence[Tuple[float, float]]):
        self.name = name
        self.points = list(points)

    def ys(self) -> List[float]:
        return [y for _x, y in self.points]

    def xs(self) -> List[float]:
        return [x for x, _y in self.points]


def cache_hit_table(x_label: str, series: Sequence["Series"]) -> str:
    """Per-run solution-cache hit rates as an extra aligned table.

    Returns the empty string when no run reported cache telemetry (the
    sweep ran uncached), so callers can attach the result to a figure's
    ``notes`` unconditionally.
    """
    populated = [s for s in series if s.points]
    if not populated:
        return ""
    xs = sorted({x for s in populated for x, _ in s.points})
    value_of: Dict[str, Dict[float, float]] = {
        s.name: dict(s.points) for s in populated
    }
    rows: List[List[object]] = []
    for x in xs:
        row: List[object] = [int(x) if float(x).is_integer() else x]
        for s in populated:
            rate = value_of[s.name].get(x)
            row.append("-" if rate is None else f"{rate:.0%}")
        rows.append(row)
    headers = [x_label] + [s.name for s in populated]
    return "cache hit rate per run:\n" + render_table(headers, rows)


class FigureResult:
    """A reproduced figure panel: shared x axis, one series per line."""

    def __init__(
        self,
        figure_id: str,
        title: str,
        x_label: str,
        y_label: str,
        series: Sequence[Series],
        notes: str = "",
    ):
        self.figure_id = figure_id
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.series = list(series)
        self.notes = notes

    def series_by_name(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)

    def render(self) -> str:
        """Aligned text: one row per x value, one column per series."""
        xs = sorted({x for s in self.series for x, _ in s.points})
        headers = [self.x_label] + [s.name for s in self.series]
        value_of: Dict[str, Dict[float, float]] = {
            s.name: dict(s.points) for s in self.series
        }
        rows = []
        for x in xs:
            row: List[object] = [int(x) if float(x).is_integer() else x]
            for s in self.series:
                row.append(value_of[s.name].get(x))
            rows.append(row)
        out = [f"== {self.figure_id}: {self.title} ==", f"(y = {self.y_label})"]
        out.append(render_table(headers, rows))
        if self.notes:
            out.append(self.notes)
        return "\n".join(out)


def average_figures(figures: Sequence[FigureResult]) -> FigureResult:
    """Average same-shaped figures over seeds.

    The paper regenerates the synthetic dataset "for each separate
    experiment"; averaging several seeded runs reports the stable shape
    rather than a single draw.  Series are matched by name and points by
    x; a point must be present in every run to appear in the average.
    """
    if not figures:
        raise ValueError("need at least one figure to average")
    first = figures[0]
    names = [s.name for s in first.series]
    for other in figures[1:]:
        if [s.name for s in other.series] != names:
            raise ValueError("figures have mismatched series")
    averaged: List[Series] = []
    for name in names:
        maps = [dict(f.series_by_name(name).points) for f in figures]
        common = set(maps[0])
        for m in maps[1:]:
            common &= set(m)
        points = [
            (x, sum(m[x] for m in maps) / len(maps)) for x in sorted(common)
        ]
        averaged.append(Series(name, points))
    return FigureResult(
        first.figure_id,
        f"{first.title} (mean of {len(figures)} seeds)",
        first.x_label,
        first.y_label,
        averaged,
        notes=first.notes,
    )
