"""Problem reductions: MC³(k=2) → bipartite WVC → max-flow (Theorem 4.1 /
Theorem 2.3), MC³ → WSC (Section 5.2), and the SC → MC³ hardness
constructions (Theorems 5.1, 5.2) used as test oracles."""

from repro.reductions.mc3_to_wsc import mc3_to_wsc, wsc_solution_to_mc3
from repro.reductions.mc3_to_wvc import BipartiteWVC, mc3_to_bipartite_wvc
from repro.reductions.sc_to_mc3 import (
    ANCHOR_PROPERTY,
    mc3_solution_to_sc_theorem51,
    sc_to_mc3_theorem51,
    sc_to_mc3_theorem52,
)
from repro.reductions.wvc_to_flow import solve_bipartite_wvc, wvc_to_flow_network

__all__ = [
    "ANCHOR_PROPERTY",
    "BipartiteWVC",
    "mc3_solution_to_sc_theorem51",
    "mc3_to_bipartite_wvc",
    "mc3_to_wsc",
    "sc_to_mc3_theorem51",
    "sc_to_mc3_theorem52",
    "solve_bipartite_wvc",
    "wsc_solution_to_mc3",
    "wvc_to_flow_network",
]
