"""The hardness reductions of Theorems 5.1 and 5.2: Set Cover → MC³.

These constructions drive the paper's inapproximability results; here
they serve as *test oracles*: a set-cover instance and its MC³ image
must have equal optimal costs, and approximate solutions must translate
back at equal cost.  They also make handy generators of structured hard
instances for stress tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.costs import TableCost
from repro.core.instance import MC3Instance
from repro.core.properties import Classifier
from repro.core.solution import Solution
from repro.exceptions import ReductionError

#: The shared extra property added to every query in the Theorem 5.1
#: construction.
ANCHOR_PROPERTY = "__e__"


def sc_to_mc3_theorem51(
    sets: Sequence[Iterable[str]],
    universe: Sequence[str],
    set_names: Sequence[str] = (),
) -> Tuple[MC3Instance, Dict[str, int]]:
    """Theorem 5.1 construction.

    Every set becomes a *set-property*; every element becomes a query
    containing the properties of the sets it belongs to plus the shared
    anchor property ``e``.  Length-2 classifiers over two set-properties
    cost 0; length-2 classifiers pairing ``e`` with a set-property cost
    1; nothing else is available.  A minimum MC³ cover then picks, per
    cost unit, one ``(set, e)`` classifier — i.e. one set — such that the
    chosen sets cover all elements.

    Returns the instance and a mapping ``set-property name -> set index``
    for translating solutions back.

    Elements belonging to exactly the same sets must be merged by the
    caller (the paper assumes distinct queries); duplicates raise.
    """
    names = list(set_names) if set_names else [f"s{i}" for i in range(len(sets))]
    if len(names) != len(sets):
        raise ReductionError("set_names must match sets in length")
    membership: Dict[str, List[int]] = {element: [] for element in universe}
    for set_index, members in enumerate(sets):
        for element in members:
            if element not in membership:
                raise ReductionError(f"set {set_index} contains unknown element {element!r}")
            membership[element].append(set_index)

    queries: List[FrozenSet[str]] = []
    seen: Set[FrozenSet[str]] = set()
    for element in universe:
        owners = membership[element]
        if not owners:
            raise ReductionError(f"element {element!r} belongs to no set (uncoverable)")
        if len(owners) < 2:
            # Theorem 5.1 assumes f > 1; an element in a single set would
            # produce a query of length 2 whose only cover is forced.
            # Allowed, but then the query is (set, e) with cost 1 forced.
            pass
        q = frozenset([names[i] for i in owners] + [ANCHOR_PROPERTY])
        if q in seen:
            raise ReductionError(
                f"element {element!r} duplicates another element's set membership; "
                "merge identical elements first"
            )
        seen.add(q)
        queries.append(q)

    costs: Dict[FrozenSet[str], float] = {}
    for q in queries:
        set_props = sorted(q - {ANCHOR_PROPERTY})
        for i, a in enumerate(set_props):
            costs[frozenset((a, ANCHOR_PROPERTY))] = 1.0
            for b in set_props[i + 1 :]:
                costs[frozenset((a, b))] = 0.0

    instance = MC3Instance(queries, TableCost(costs), name="theorem5.1")
    name_to_index = {name: index for index, name in enumerate(names)}
    return instance, name_to_index


def mc3_solution_to_sc_theorem51(
    solution: Solution, name_to_index: Dict[str, int]
) -> Set[int]:
    """Translate an MC³ solution of a Theorem 5.1 instance back to set
    indices: every selected ``(set-property, e)`` classifier contributes
    its set."""
    chosen: Set[int] = set()
    for clf in solution.classifiers:
        if ANCHOR_PROPERTY in clf and len(clf) == 2:
            (prop,) = clf - {ANCHOR_PROPERTY}
            chosen.add(name_to_index[prop])
    return chosen


def sc_to_mc3_theorem52(
    sets: Sequence[Iterable[str]],
    universe: Sequence[str],
) -> Tuple[MC3Instance, List[Classifier]]:
    """Theorem 5.2 construction: one query containing a property per
    element; one unit-cost classifier per set.

    Returns the instance and the classifier list (index-aligned with
    ``sets``) for translating solutions back.  The MC³ optimum equals
    the (unweighted) set-cover optimum.
    """
    universe_set = set(universe)
    if not universe_set:
        raise ReductionError("empty universe")
    classifiers: List[Classifier] = []
    costs: Dict[FrozenSet[str], float] = {}
    for index, members in enumerate(sets):
        clf = frozenset(members)
        if not clf:
            raise ReductionError(f"set {index} is empty")
        if not clf <= universe_set:
            raise ReductionError(f"set {index} contains unknown elements")
        classifiers.append(clf)
        costs[clf] = 1.0
    instance = MC3Instance([frozenset(universe_set)], TableCost(costs), name="theorem5.2")
    return instance, classifiers
