"""Theorem 4.1: MC³ with k ≤ 2 → Weighted Vertex Cover on a bipartite graph.

The graph has a left node per singleton classifier and a right node per
length-2 classifier; each query ``xy`` contributes the two edges
``(X, XY)`` and ``(Y, XY)``.  A vertex cover must, per edge, pick the
singleton or the pair — exactly the choice of how to cover that property
of the query — and the minimum-weight cover corresponds to the optimal
classifier selection.

Singleton queries must have been eliminated first (preprocessing step 1);
the builder enforces this.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.costs import CostModel
from repro.core.properties import Classifier, Query, classifier_sort_key
from repro.exceptions import ReductionError, UncoverableQueryError


class BipartiteWVC:
    """A weighted vertex cover instance over a bipartite graph.

    ``left``/``right`` map node labels (classifiers) to weights;
    ``edges`` are (left label, right label) pairs.  Weights may be
    ``math.inf`` — such nodes exist but can never enter a finite cover.
    """

    def __init__(self) -> None:
        self.left: Dict[Classifier, float] = {}
        self.right: Dict[Classifier, float] = {}
        self.edges: List[Tuple[Classifier, Classifier]] = []

    def add_left(self, label: Classifier, weight: float) -> None:
        self.left.setdefault(label, weight)

    def add_right(self, label: Classifier, weight: float) -> None:
        self.right.setdefault(label, weight)

    def add_edge(self, left_label: Classifier, right_label: Classifier) -> None:
        if left_label not in self.left or right_label not in self.right:
            raise ReductionError("edge endpoints must be added before the edge")
        self.edges.append((left_label, right_label))

    @property
    def num_nodes(self) -> int:
        return len(self.left) + len(self.right)

    def cover_weight(self, cover: Set[Classifier]) -> float:
        total = 0.0
        # Canonical accumulation order: float addition over a hash-
        # ordered set would tie the reported weight to the hash seed.
        for label in sorted(cover, key=classifier_sort_key):
            if label in self.left:
                total += self.left[label]
            elif label in self.right:
                total += self.right[label]
            else:
                raise ReductionError(f"cover contains unknown node {label!r}")
        return total

    def is_cover(self, cover: Set[Classifier]) -> bool:
        return all(u in cover or v in cover for u, v in self.edges)


def mc3_to_bipartite_wvc(queries: Sequence[Query], cost: CostModel) -> BipartiteWVC:
    """Build the bipartite WVC instance for a k = 2 query load.

    Raises :class:`ReductionError` on queries of other lengths and
    :class:`UncoverableQueryError` when a query has no finite-cost cover
    (neither the pair classifier nor both singletons are available).
    """
    graph = BipartiteWVC()
    for q in queries:
        if len(q) != 2:
            raise ReductionError(
                f"the k=2 reduction requires length-2 queries, got {sorted(q)!r}"
            )
        x, y = sorted(q)
        singleton_x = frozenset((x,))
        singleton_y = frozenset((y,))
        pair = frozenset(q)
        weight_x = cost.cost(singleton_x)
        weight_y = cost.cost(singleton_y)
        weight_pair = cost.cost(pair)
        if not (
            math.isfinite(weight_pair)
            or (math.isfinite(weight_x) and math.isfinite(weight_y))
        ):
            raise UncoverableQueryError(q)
        graph.add_left(singleton_x, weight_x)
        graph.add_left(singleton_y, weight_y)
        graph.add_right(pair, weight_pair)
        graph.add_edge(singleton_x, pair)
        graph.add_edge(singleton_y, pair)
    return graph
