"""Section 5.2: the reduction from MC³ to Weighted Set Cover.

For every query ``q`` and property ``p ∈ q`` the universe gets a distinct
element ``(p, q)``.  Every finite-weight classifier ``S`` becomes a set
containing element ``(x, q)`` iff ``x ∈ S`` and ``S ⊆ q`` — i.e. the
classifier covers its properties *in every query it fits inside*.  Set
costs are classifier weights; solutions translate back one-to-one and
cost-for-cost (the instances are "completely analogous", Figure 2).

The builder runs on interned bitmasks: queries and candidate
classifiers are masks in a per-call (or caller-supplied)
:class:`~repro.core.bitspace.PropertySpace`, each distinct classifier's
weight is looked up once per mask instead of once per ``(query,
classifier)`` occurrence, and set members are accumulated as dense
element ids — skipping the label round-trips of the original reduction
while producing an identical :class:`~repro.setcover.instance.WSCInstance`
(same element ids, set ids, labels, and costs; see
:mod:`repro.core.reference`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.bitspace import PropertySpace, popcount
from repro.core.instance import MC3Instance
from repro.core.solution import Solution
from repro.exceptions import UncoverableQueryError
from repro.setcover import WSCInstance, WSCSolution


def mc3_to_wsc(
    instance: MC3Instance, space: Optional[PropertySpace] = None
) -> WSCInstance:
    """Build the WSC instance of Section 5.2 for an MC³ instance.

    Elements are ``(property, query_index)`` pairs; set labels are the
    classifiers themselves.  ``space`` lets component solvers reuse an
    existing interning (it must cover the instance's properties); when
    omitted one is built for this call.  Raises
    :class:`UncoverableQueryError` if a query's elements cannot all be
    covered (equivalently, the query has no finite-cost cover).
    """
    if space is None:
        space = PropertySpace.from_queries(instance.queries)
    prop_names = space.properties
    max_length = instance.max_classifier_length

    wsc = WSCInstance()
    # Register all elements first so uncoverable ones are detectable.
    # Element ids ascend per query in sorted-property (= ascending bit)
    # order, matching the original sorted(q) registration.
    query_bits: List[tuple] = []
    element_of: List[Dict[int, int]] = []  # per query: bit -> element id
    for query_index, q in enumerate(instance.queries):
        bits = space.bits_of(space.mask_of(q))
        ids = {
            bit: wsc.add_element((prop_names[bit], query_index)) for bit in bits
        }
        query_bits.append(bits)
        element_of.append(ids)

    weight_of: Dict[int, float] = {}  # classifier mask -> weight, once each
    members: Dict[int, List[int]] = {}  # classifier mask -> element ids
    for query_index, bits in enumerate(query_bits):
        qmask = 0
        for bit in bits:
            qmask |= 1 << bit
        ids = element_of[query_index]
        for mask in space.iter_subset_masks(qmask, max_length):
            weight = weight_of.get(mask)
            if weight is None:
                weight = instance.weight(space.set_of(mask))
                weight_of[mask] = weight
            if not math.isfinite(weight):
                continue
            bucket = members.setdefault(mask, [])
            sub = mask
            while sub:
                low = sub & -sub
                bucket.append(ids[low.bit_length() - 1])
                sub ^= low

    # (popcount, ascending bits) reproduces the original (length, sorted
    # label) set ordering — bit order is lexicographic property order.
    for mask in sorted(members, key=lambda m: (popcount(m), space.bits_of(m))):
        wsc.add_set_ids(space.set_of(mask), members[mask], weight_of[mask])

    try:
        wsc.validate_coverable()
    except UncoverableQueryError as exc:
        # Re-raise with the offending *query* rather than the WSC element.
        prop, query_index = next(iter(exc.query))
        raise UncoverableQueryError(instance.queries[query_index]) from exc
    return wsc


def wsc_solution_to_mc3(wsc: WSCInstance, solution: WSCSolution, instance: MC3Instance) -> Solution:
    """Translate a WSC solution back to classifiers (set labels) and price
    it against the MC³ instance; costs agree by construction."""
    classifiers = [wsc.set_label(set_id) for set_id in solution.set_ids]
    return Solution.from_instance(classifiers, instance)
