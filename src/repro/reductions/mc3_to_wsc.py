"""Section 5.2: the reduction from MC³ to Weighted Set Cover.

For every query ``q`` and property ``p ∈ q`` the universe gets a distinct
element ``(p, q)``.  Every finite-weight classifier ``S`` becomes a set
containing element ``(x, q)`` iff ``x ∈ S`` and ``S ⊆ q`` — i.e. the
classifier covers its properties *in every query it fits inside*.  Set
costs are classifier weights; solutions translate back one-to-one and
cost-for-cost (the instances are "completely analogous", Figure 2).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.core.instance import MC3Instance
from repro.core.properties import Classifier
from repro.core.solution import Solution
from repro.exceptions import UncoverableQueryError
from repro.setcover import WSCInstance, WSCSolution


def mc3_to_wsc(instance: MC3Instance) -> WSCInstance:
    """Build the WSC instance of Section 5.2 for an MC³ instance.

    Elements are ``(property, query_index)`` pairs; set labels are the
    classifiers themselves.  Raises :class:`UncoverableQueryError` if a
    query's elements cannot all be covered (equivalently, the query has
    no finite-cost cover).
    """
    wsc = WSCInstance()
    # Register all elements first so uncoverable ones are detectable.
    for query_index, q in enumerate(instance.queries):
        for prop in sorted(q):
            wsc.add_element((prop, query_index))

    members: Dict[Classifier, List[Tuple[str, int]]] = {}
    for query_index, q in enumerate(instance.queries):
        for clf in instance.candidates(q):
            bucket = members.setdefault(clf, [])
            for prop in clf:
                bucket.append((prop, query_index))

    for clf in sorted(members, key=lambda c: (len(c), tuple(sorted(c)))):
        weight = instance.weight(clf)
        if math.isfinite(weight):
            wsc.add_set(clf, members[clf], weight)

    try:
        wsc.validate_coverable()
    except UncoverableQueryError as exc:
        # Re-raise with the offending *query* rather than the WSC element.
        prop, query_index = next(iter(exc.query))
        raise UncoverableQueryError(instance.queries[query_index]) from exc
    return wsc


def wsc_solution_to_mc3(wsc: WSCInstance, solution: WSCSolution, instance: MC3Instance) -> Solution:
    """Translate a WSC solution back to classifiers (set labels) and price
    it against the MC³ instance; costs agree by construction."""
    classifiers = [wsc.set_label(set_id) for set_id in solution.set_ids]
    return Solution.from_instance(classifiers, instance)
