"""Theorem 2.3: bipartite Weighted Vertex Cover → Max-Flow / Min-Cut.

Construction (folklore, described in [Baïou & Barahona 2016]): source
``s`` connects to every left node with capacity equal to its weight,
every right node connects to sink ``t`` with capacity equal to its
weight, and every WVC edge becomes an infinite-capacity middle edge.
A minimum s-t cut cannot cross a middle edge, so for every WVC edge it
must cut the source edge of its left endpoint or the sink edge of its
right endpoint — i.e. choose that endpoint into the cover.  Min cut
value = min cover weight.

Cover extraction from the residual network after max flow:
left nodes *not* reachable from ``s`` (their source edge is cut) plus
right nodes reachable from ``s`` (their sink edge is cut).
"""

from __future__ import annotations

import math
from typing import Set, Tuple

from repro.core.properties import Classifier
from repro.flow import FlowNetwork, max_flow
from repro.reductions.mc3_to_wvc import BipartiteWVC

SOURCE = ("__flow__", "source")
SINK = ("__flow__", "sink")


def wvc_to_flow_network(graph: BipartiteWVC) -> FlowNetwork:
    """Build the flow network for a bipartite WVC instance."""
    network = FlowNetwork()
    network.add_node(SOURCE)
    network.add_node(SINK)
    for label, weight in graph.left.items():
        network.add_edge(SOURCE, ("L", label), weight)
    for label, weight in graph.right.items():
        network.add_edge(("R", label), SINK, weight)
    for left_label, right_label in graph.edges:
        network.add_edge(("L", left_label), ("R", right_label), math.inf)
    return network


def solve_bipartite_wvc(
    graph: BipartiteWVC, algorithm: str = "dinic"
) -> Tuple[Set[Classifier], float]:
    """Minimum-weight vertex cover of a bipartite graph via max flow.

    Returns ``(cover, weight)``.  Nodes of infinite weight never enter
    the cover (their edges are covered from the other side, which the
    reduction guarantees is possible for feasible instances).
    """
    if not graph.edges:
        return set(), 0.0
    network = wvc_to_flow_network(graph)
    result = max_flow(network, SOURCE, SINK, algorithm=algorithm)
    reachable = network.residual_reachable(SOURCE)

    cover: Set[Classifier] = set()
    for label in graph.left:
        if not reachable[network.node_id(("L", label))]:
            cover.add(label)
    for label in graph.right:
        if reachable[network.node_id(("R", label))]:
            cover.add(label)
    return cover, result.value
