"""repro — reproduction of "Minimization of Classifier Construction Cost
for Search Queries" (Gershtein, Milo, Morami, Novgorodov; SIGMOD 2020).

The package implements the MC³ problem end to end:

* :mod:`repro.core` — queries, classifiers, cost models, instances,
  coverage semantics;
* :mod:`repro.preprocess` — the four-step pruning pipeline (Algorithm 1);
* :mod:`repro.engine` — the shared component-solving engine
  (preprocess → schedule → dispatch → merge, sequential or
  process-parallel, with per-stage telemetry);
* :mod:`repro.flow`, :mod:`repro.matching`, :mod:`repro.setcover`,
  :mod:`repro.graph` — the algorithmic substrates built from scratch;
* :mod:`repro.reductions` — MC³ ↔ WVC / max-flow / WSC reductions;
* :mod:`repro.solvers` — Algorithm 2 (exact, k ≤ 2), Algorithm 3
  (general), Short-First, baselines, exact oracle;
* :mod:`repro.extensions` — bounded and multi-valued classifiers;
* :mod:`repro.datasets` — the three evaluation datasets (generated);
* :mod:`repro.catalog` — the motivating e-commerce application;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of Section 6.

Quickstart::

    from repro import MC3Instance, make_solver

    instance = MC3Instance(
        queries=["juventus white adidas", "chelsea adidas"],
        cost={
            "chelsea": 5, "adidas": 5, "juventus": 5, "white": 1,
            ("adidas", "chelsea"): 3, ("adidas", "white"): 5,
            ("adidas", "juventus"): 3, ("juventus", "white"): 4,
            ("adidas", "juventus", "white"): 5,
        },
    )
    result = make_solver("mc3-general").solve(instance)
    print(result.cost, result.solution.sorted_labels())
"""

from repro.analysis import OptimalityReport, optimality_report
from repro.core import (
    CostModel,
    HashCost,
    MC3Instance,
    Solution,
    SolverResult,
    TableCost,
    UniformCost,
    load_instance,
    query,
    save_instance,
)
from repro.exceptions import (
    DatasetError,
    InfeasibleSolutionError,
    InvalidInstanceError,
    ReductionError,
    ReproError,
    SolverError,
    UncoverableQueryError,
)
from repro.engine import SolveEngine
from repro.preprocess import PreprocessResult, preprocess
from repro.solvers import (
    ComponentSolver,
    ExactSolver,
    GeneralSolver,
    K2Solver,
    LocalGreedySolver,
    MixedSolver,
    PropertyOrientedSolver,
    QueryOrientedSolver,
    ShortFirstSolver,
    available_solvers,
    make_solver,
)

__version__ = "1.0.0"

__all__ = [
    "ComponentSolver",
    "CostModel",
    "DatasetError",
    "ExactSolver",
    "GeneralSolver",
    "HashCost",
    "InfeasibleSolutionError",
    "InvalidInstanceError",
    "K2Solver",
    "LocalGreedySolver",
    "MC3Instance",
    "MixedSolver",
    "OptimalityReport",
    "PreprocessResult",
    "PropertyOrientedSolver",
    "QueryOrientedSolver",
    "ReductionError",
    "ReproError",
    "ShortFirstSolver",
    "SolveEngine",
    "Solution",
    "SolverError",
    "SolverResult",
    "TableCost",
    "UniformCost",
    "UncoverableQueryError",
    "available_solvers",
    "load_instance",
    "make_solver",
    "optimality_report",
    "preprocess",
    "query",
    "save_instance",
    "__version__",
]
