"""Coverage semantics of MC³ (Section 2.1).

A query ``q`` is covered by a set ``S`` of classifiers iff some
``T ⊆ S`` has ``P(T) = q``.  Because every classifier in such a ``T``
must be a subset of ``q`` (otherwise the union would spill outside
``q``), this is equivalent to the simpler test used here:

    the union of all classifiers in ``S`` that are subsets of ``q``
    equals ``q``.

This module is the *independent* feasibility oracle: solvers never use it
to construct solutions, only tests and the verification layer do, so a
bug in a solver cannot hide behind a matching bug in its own coverage
logic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.core.properties import Classifier, PropertySet, Query
from repro.exceptions import InfeasibleSolutionError


def is_covered(q: Query, selected: Iterable[Classifier]) -> bool:
    """Whether query ``q`` is covered by the classifiers in ``selected``."""
    remaining: Set[str] = set(q)
    for clf in selected:
        if clf <= q:
            remaining -= clf
            if not remaining:
                return True
    return not remaining


def covering_subset(q: Query, selected: Iterable[Classifier]) -> List[Classifier]:
    """The witnesses: all selected classifiers usable for ``q`` (subsets of
    ``q``).  Their union equals ``q`` iff ``q`` is covered."""
    return [clf for clf in selected if clf <= q]


class CoverageChecker:
    """Indexed coverage checking for a fixed query load.

    Builds a property → queries inverted index once, then answers
    "which queries does classifier ``c`` help" and "is the whole load
    covered" without re-scanning the query list per classifier.
    """

    def __init__(self, queries: Iterable[Query]):
        self.queries: List[Query] = list(queries)
        self._by_property: Dict[str, List[int]] = {}
        for index, q in enumerate(self.queries):
            for prop in q:
                self._by_property.setdefault(prop, []).append(index)

    def queries_with_property(self, prop: str) -> List[int]:
        """Indices of queries containing ``prop``."""
        return self._by_property.get(prop, [])

    def applicable_queries(self, clf: Classifier) -> List[int]:
        """Indices of queries that ``clf`` can help cover (``clf ⊆ q``).

        Intersects the per-property posting lists, shortest first.
        """
        posting_lists = sorted(
            (self._by_property.get(prop, []) for prop in clf), key=len
        )
        if not posting_lists:
            return []
        result = set(posting_lists[0])
        for postings in posting_lists[1:]:
            result.intersection_update(postings)
            if not result:
                break
        return sorted(result)

    def uncovered_queries(self, selected: Iterable[Classifier]) -> List[Query]:
        """The queries not covered by ``selected``."""
        remaining: List[Set[str]] = [set(q) for q in self.queries]
        for clf in selected:
            for index in self.applicable_queries(clf):
                remaining[index] -= clf
        return [self.queries[i] for i, rem in enumerate(remaining) if rem]

    def all_covered(self, selected: Iterable[Classifier]) -> bool:
        """Whether every query in the load is covered by ``selected``."""
        return not self.uncovered_queries(selected)


def verify_cover(queries: Iterable[Query], selected: Iterable[Classifier]) -> None:
    """Raise :class:`InfeasibleSolutionError` unless ``selected`` covers
    every query.  Used as the final check on every solver output."""
    selected = list(selected)
    missing = CoverageChecker(queries).uncovered_queries(selected)
    if missing:
        sample = ", ".join("+".join(sorted(q)) for q in missing[:5])
        raise InfeasibleSolutionError(
            f"{len(missing)} quer{'y is' if len(missing) == 1 else 'ies are'} "
            f"not covered (e.g. {sample})"
        )
