"""Pre-bitset reference implementations of the rewritten hot paths.

The bitset property-space rewrite (:mod:`repro.core.bitspace`) promises
*bit-identical* outputs: same removals, same forced selections, same WSC
set ids, same solution costs.  That promise is only worth something if
it stays executable, so this module keeps the original frozenset-based
implementations — dominated pruning, the single-query min-cover DP,
the MC³ → WSC reduction, and both greedy set-cover variants — verbatim.

They serve two callers:

* ``tests/test_bitspace.py`` asserts, under hypothesis, that every
  rewritten path agrees with its reference here, and that every
  registered solver returns the identical solution with the reference
  kernels patched in (:func:`patch_reference_kernels`);
* ``benchmarks/bench_bitspace.py`` times reference vs. rewritten paths
  and records the speedup in ``BENCH_core.json``.

Nothing in the package proper imports this module — it is an oracle,
not a fallback.
"""

from __future__ import annotations

import math
from contextlib import ExitStack, contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.costs import OverlayCost
from repro.core.instance import MC3Instance
from repro.core.mincover import QueryCover
from repro.core.properties import (
    Classifier,
    PropertySet,
    Query,
    iter_nonempty_subsets,
    iter_two_covers,
    iter_two_partitions,
)
from repro.exceptions import SolverError, UncoverableQueryError
from repro.preprocess.dominated import (
    FORCED_COVER_MAX_CANDIDATES,
    FORCED_COVER_MAX_LENGTH,
    FORCED_COVER_NODE_BUDGET,
    FULL_ENUMERATION_MAX_LENGTH,
)
from repro.setcover.instance import WSCInstance, WSCSolution

# ----------------------------------------------------------------------
# Single-query min cover (pre-change core of repro.core.mincover)
# ----------------------------------------------------------------------


def reference_min_cover(
    q: Query,
    candidates: Iterable[Tuple[Classifier, float]],
    required: bool = True,
) -> Optional[QueryCover]:
    """Original frozenset-marshalling min-cover DP."""
    props = sorted(q)
    index = {prop: i for i, prop in enumerate(props)}
    full = (1 << len(props)) - 1

    usable: List[Tuple[int, float, Classifier]] = []
    for clf, weight in candidates:
        if not clf or not clf <= q or not math.isfinite(weight):
            continue
        mask = 0
        for prop in clf:
            mask |= 1 << index[prop]
        usable.append((mask, weight, clf))

    INF = math.inf
    size = full + 1
    dp_cost = [INF] * size
    dp_count = [0] * size
    back: List[Optional[Tuple[int, int]]] = [None] * size
    dp_cost[0] = 0.0

    for mask in range(size):
        cost_here = dp_cost[mask]
        if cost_here is INF:
            continue
        count_here = dp_count[mask]
        for idx, (clf_mask, weight, _clf) in enumerate(usable):
            nxt = mask | clf_mask
            if nxt == mask:
                continue
            new_cost = cost_here + weight
            if new_cost < dp_cost[nxt] or (
                new_cost == dp_cost[nxt] and count_here + 1 < dp_count[nxt]
            ):
                dp_cost[nxt] = new_cost
                dp_count[nxt] = count_here + 1
                back[nxt] = (mask, idx)

    if dp_cost[full] is INF:
        if required:
            raise UncoverableQueryError(q)
        return None

    chosen: List[Classifier] = []
    mask = full
    while mask:
        prev_mask, idx = back[mask]  # type: ignore[misc]
        chosen.append(usable[idx][2])
        mask = prev_mask
    chosen.reverse()
    return QueryCover(q, tuple(chosen), dp_cost[full])


def reference_enumerate_covers(
    q: Query,
    candidates: Sequence[Tuple[Classifier, float]],
    limit: Optional[int] = None,
    node_budget: Optional[int] = None,
) -> List[QueryCover]:
    """Original irredundant-cover enumeration (sentinel semantics kept)."""
    props = sorted(q)
    index = {prop: i for i, prop in enumerate(props)}
    full = (1 << len(props)) - 1
    usable = []
    for clf, weight in candidates:
        if clf and clf <= q and math.isfinite(weight):
            mask = 0
            for prop in clf:
                mask |= 1 << index[prop]
            usable.append((mask, weight, clf))

    results: List[QueryCover] = []
    nodes = [0]
    exhausted = [False]

    def is_irredundant(indices: List[int]) -> bool:
        for skip in range(len(indices)):
            mask = 0
            for pos, idx in enumerate(indices):
                if pos != skip:
                    mask |= usable[idx][0]
            if mask == full:
                return False
        return True

    def done() -> bool:
        if limit is not None and len(results) >= limit:
            return True
        if node_budget is not None and nodes[0] > node_budget:
            exhausted[0] = True
            return True
        return False

    def recurse(start: int, mask: int, picked: List[int]) -> None:
        nodes[0] += 1
        if done():
            return
        if mask == full:
            if is_irredundant(picked):
                clfs = tuple(usable[i][2] for i in picked)
                cost = sum(usable[i][1] for i in picked)
                results.append(QueryCover(q, clfs, cost))
            return
        for idx in range(start, len(usable)):
            if done():
                return
            clf_mask = usable[idx][0]
            if clf_mask | mask == mask:
                continue
            picked.append(idx)
            recurse(idx + 1, mask | clf_mask, picked)
            picked.pop()

    recurse(0, 0, [])
    if exhausted[0] and results:
        results.append(results[-1])
    return results


# ----------------------------------------------------------------------
# Dominated pruning (pre-change repro.preprocess.dominated)
# ----------------------------------------------------------------------


class ReferenceDominatedPruner:
    """Original frozenset step-3 pass; drop-in for
    :class:`~repro.preprocess.dominated.DominatedPruner`."""

    def __init__(
        self,
        queries: Sequence[Query],
        overlay: OverlayCost,
        max_classifier_length: Optional[int] = None,
    ):
        self.queries = list(queries)
        self.overlay = overlay
        self.max_classifier_length = max_classifier_length
        self._effective: Dict[PropertySet, float] = {}
        self.removed: Set[Classifier] = set()
        self.forced: List[Classifier] = []
        self._universe_cache: Optional[List[Classifier]] = None
        self._decomposition_cache: Dict[
            Classifier, Tuple[Tuple[Classifier, Classifier], ...]
        ] = {}

    def _universe(self) -> List[Classifier]:
        if self._universe_cache is None:
            seen: Set[Classifier] = set()
            ordered: List[Classifier] = []
            for q in self.queries:
                for clf in iter_nonempty_subsets(q, self.max_classifier_length):
                    if clf not in seen:
                        seen.add(clf)
                        ordered.append(clf)
            ordered.sort(key=len)
            self._universe_cache = ordered
        return self._universe_cache

    def effective_weight(self, clf: Classifier) -> float:
        memo = self._effective.get(clf)
        direct = self.overlay.cost(clf)
        if memo is None:
            return direct
        return min(memo, direct)

    def _decompositions(self, clf: Classifier):
        cached = self._decomposition_cache.get(clf)
        if cached is not None:
            return cached
        if len(clf) == 2:
            x, y = clf
            pairs: Tuple[Tuple[Classifier, Classifier], ...] = (
                (frozenset((x,)), frozenset((y,))),
            )
        elif len(clf) <= FULL_ENUMERATION_MAX_LENGTH:
            pairs = tuple(iter_two_covers(clf))
        else:
            pairs = tuple(iter_two_partitions(clf))
        self._decomposition_cache[clf] = pairs
        return pairs

    def _cheapest_decomposition(self, clf: Classifier) -> float:
        best = math.inf
        memo = self._effective
        overlay_cost = self.overlay.cost
        for part_a, part_b in self._decompositions(clf):
            weight = overlay_cost(part_a)
            cached = memo.get(part_a)
            if cached is not None and cached < weight:
                weight = cached
            direct_b = overlay_cost(part_b)
            cached_b = memo.get(part_b)
            if cached_b is not None and cached_b < direct_b:
                direct_b = cached_b
            weight += direct_b
            if weight < best:
                best = weight
        return best

    def _pass_remove(self, targets: Optional[Iterable[Classifier]] = None) -> int:
        if targets is None:
            universe = self._universe()
        else:
            universe = sorted(set(targets), key=len)
        removed_count = 0
        overlay_cost = self.overlay.cost
        effective = self._effective
        for clf in universe:
            if len(clf) < 2 or clf in self.removed:
                continue
            if len(clf) == 2:
                x, y = clf
                decomposition_cost = overlay_cost(frozenset((x,))) + overlay_cost(
                    frozenset((y,))
                )
            else:
                decomposition_cost = self._cheapest_decomposition(clf)
            direct = overlay_cost(clf)
            effective[clf] = min(direct, decomposition_cost)
            if math.isfinite(direct) and decomposition_cost <= direct:
                self.overlay.remove(clf)
                self.removed.add(clf)
                removed_count += 1
        return removed_count

    def _available_candidates(self, q: Query) -> List[Tuple[Classifier, float]]:
        pairs = []
        for clf in iter_nonempty_subsets(q, self.max_classifier_length):
            weight = self.overlay.cost(clf)
            if math.isfinite(weight):
                pairs.append((clf, weight))
        return pairs

    def _detect_forced_covers(self, uncovered: Sequence[Query]) -> List[Classifier]:
        newly_forced: List[Classifier] = []
        for q in uncovered:
            if len(q) > FORCED_COVER_MAX_LENGTH:
                continue
            if len(q) == 2:
                unique = self._unique_cover_k2(q)
            else:
                candidates = self._available_candidates(q)
                if len(candidates) > FORCED_COVER_MAX_CANDIDATES:
                    continue
                covers = reference_enumerate_covers(
                    q, candidates, limit=2, node_budget=FORCED_COVER_NODE_BUDGET
                )
                unique = covers[0].classifiers if len(covers) == 1 else None
            if unique is not None:
                for clf in unique:
                    if self.overlay.cost(clf) > 0:
                        self.overlay.select(clf)
                        newly_forced.append(clf)
        return newly_forced

    def _unique_cover_k2(self, q: Query) -> Optional[Tuple[Classifier, ...]]:
        x, y = sorted(q)
        singleton_x = frozenset((x,))
        singleton_y = frozenset((y,))
        pair = frozenset(q)
        pair_ok = math.isfinite(self.overlay.cost(pair))
        singles_ok = math.isfinite(self.overlay.cost(singleton_x)) and math.isfinite(
            self.overlay.cost(singleton_y)
        )
        if pair_ok and not singles_ok:
            return (pair,)
        if singles_ok and not pair_ok:
            return (singleton_x, singleton_y)
        return None

    def run(self, uncovered: Sequence[Query]) -> Tuple[int, List[Classifier]]:
        queries_by_property: Dict[str, List[Query]] = {}
        for q in uncovered:
            for prop in q:
                queries_by_property.setdefault(prop, []).append(q)
        alive: Dict[Query, None] = dict.fromkeys(uncovered)

        total_removed = self._pass_remove()
        pending: Sequence[Query] = list(alive)
        while True:
            forced_now = self._detect_forced_covers(pending)
            if not forced_now:
                break
            self.forced.extend(forced_now)
            affected_props = set().union(*forced_now)
            affected: List[Query] = []
            seen_affected = set()
            for prop in affected_props:
                for q in queries_by_property.get(prop, ()):
                    if q in alive and q not in seen_affected:
                        seen_affected.add(q)
                        affected.append(q)
            still_uncovered: List[Query] = []
            for q in affected:
                if self._covered_by_selected(q):
                    del alive[q]
                else:
                    still_uncovered.append(q)
            touched = set()
            for q in still_uncovered:
                for clf in iter_nonempty_subsets(q, self.max_classifier_length):
                    if clf & affected_props and clf not in self.removed:
                        touched.add(clf)
                        self._effective.pop(clf, None)
            total_removed += self._pass_remove(touched)
            pending = still_uncovered
        return total_removed, self.forced

    def _covered_by_selected(self, q: Query) -> bool:
        remaining = set(q)
        for clf in iter_nonempty_subsets(q, self.max_classifier_length):
            if self.overlay.cost(clf) == 0:
                remaining -= clf
                if not remaining:
                    return True
        return False


# ----------------------------------------------------------------------
# MC³ → WSC reduction (pre-change repro.reductions.mc3_to_wsc)
# ----------------------------------------------------------------------


def reference_mc3_to_wsc(instance: MC3Instance, space=None) -> WSCInstance:
    """Original label-marshalling reduction.

    ``space`` is accepted (and ignored) so this stays a drop-in for the
    rewritten reduction when patched under solvers that pass one.
    """
    wsc = WSCInstance()
    for query_index, q in enumerate(instance.queries):
        for prop in sorted(q):
            wsc.add_element((prop, query_index))

    members: Dict[Classifier, List[Tuple[str, int]]] = {}
    for query_index, q in enumerate(instance.queries):
        for clf in instance.candidates(q):
            bucket = members.setdefault(clf, [])
            for prop in clf:
                bucket.append((prop, query_index))

    for clf in sorted(members, key=lambda c: (len(c), tuple(sorted(c)))):
        weight = instance.weight(clf)
        if math.isfinite(weight):
            wsc.add_set(clf, members[clf], weight)

    try:
        wsc.validate_coverable()
    except UncoverableQueryError as exc:
        prop, query_index = next(iter(exc.query))
        raise UncoverableQueryError(instance.queries[query_index]) from exc
    return wsc


# ----------------------------------------------------------------------
# Greedy WSC (pre-change repro.setcover.greedy / bucket_greedy)
# ----------------------------------------------------------------------


def reference_greedy_wsc(instance: WSCInstance) -> WSCSolution:
    """Original per-element-scan Chvátal greedy."""
    import heapq

    instance.validate_coverable()

    universe_size = instance.universe_size
    covered = [False] * universe_size
    num_covered = 0
    selected: List[int] = []
    total_cost = 0.0

    heap: List = []
    for set_id in range(instance.num_sets):
        size = len(instance.set_members(set_id))
        cost = instance.set_cost(set_id)
        ratio = cost / size
        heapq.heappush(heap, (ratio, set_id, size))

    while num_covered < universe_size:
        if not heap:
            raise SolverError("greedy ran out of sets before covering the universe")
        ratio, set_id, recorded = heapq.heappop(heap)
        fresh = sum(1 for e in instance.set_members(set_id) if not covered[e])
        if fresh == 0:
            continue
        if fresh != recorded:
            cost = instance.set_cost(set_id)
            heapq.heappush(heap, (cost / fresh, set_id, fresh))
            continue
        selected.append(set_id)
        total_cost += instance.set_cost(set_id)
        for element_id in instance.set_members(set_id):
            if not covered[element_id]:
                covered[element_id] = True
                num_covered += 1

    return WSCSolution(selected, total_cost)


def reference_bucket_greedy_wsc(
    instance: WSCInstance, epsilon: float = 0.1
) -> WSCSolution:
    """Original per-element-scan bucketed greedy [CKW'10]."""
    from repro.exceptions import InvalidInstanceError

    if epsilon <= 0:
        raise InvalidInstanceError(f"epsilon must be > 0, got {epsilon}")
    instance.validate_coverable()
    base = 1.0 + epsilon
    log_base = math.log(base)

    def bucket_of(ratio: float) -> int:
        if ratio <= 0:
            return -(10**9)
        return math.floor(math.log(ratio) / log_base)

    universe_size = instance.universe_size
    covered = [False] * universe_size
    num_covered = 0
    selected: List[int] = []
    total_cost = 0.0

    buckets: Dict[int, List[int]] = {}

    def push(set_id: int, ratio: float) -> None:
        key = bucket_of(ratio)
        if key not in buckets:
            buckets[key] = []
        buckets[key].append(set_id)

    for set_id in range(instance.num_sets):
        size = len(instance.set_members(set_id))
        push(set_id, instance.set_cost(set_id) / size)

    while num_covered < universe_size:
        if not buckets:
            raise SolverError("bucket greedy ran out of sets")
        current_key = min(buckets)
        queue = buckets.pop(current_key)
        for set_id in queue:
            fresh = sum(1 for e in instance.set_members(set_id) if not covered[e])
            if fresh == 0:
                continue
            ratio = instance.set_cost(set_id) / fresh
            if bucket_of(ratio) > current_key:
                push(set_id, ratio)
                continue
            selected.append(set_id)
            total_cost += instance.set_cost(set_id)
            for element_id in instance.set_members(set_id):
                if not covered[element_id]:
                    covered[element_id] = True
                    num_covered += 1
            if num_covered == universe_size:
                break

    solution = WSCSolution(selected, total_cost)
    instance.verify_solution(solution)
    return solution


# ----------------------------------------------------------------------
# Whole-pipeline patching
# ----------------------------------------------------------------------


@contextmanager
def patch_reference_kernels():
    """Swap every rewritten kernel for its reference, package-wide.

    Within the context, registered solvers run on the pre-bitset code:
    dominated pruning, the MC³ → WSC reduction, both greedies, and the
    min-cover DP used by the baselines and the refinement pass.  Solving
    the same instance inside and outside the context must produce
    identical solutions — that is the rewrite's contract, and the
    equivalence tests/benchmarks enforce it through this switch.

    Only in-process solves are covered (``jobs=1``); process-pool
    workers import the real modules.
    """
    import importlib
    from unittest import mock

    # importlib.import_module rather than ``import a.b.c as c``: package
    # __init__ files re-export same-named callables (``repro.preprocess``
    # the module vs. ``preprocess`` the function), which break the
    # attribute walk the ``as`` form performs.
    multivalued = importlib.import_module("repro.extensions.multivalued")
    partial_cover = importlib.import_module("repro.extensions.partial_cover")
    pipeline = importlib.import_module("repro.preprocess.pipeline")
    setcover = importlib.import_module("repro.setcover")
    baselines = importlib.import_module("repro.solvers.baselines")
    exact = importlib.import_module("repro.solvers.exact")
    general = importlib.import_module("repro.solvers.general")
    refined = importlib.import_module("repro.solvers.refined")
    robust = importlib.import_module("repro.solvers.robust")

    targets = [
        (pipeline, "DominatedPruner", ReferenceDominatedPruner),
        (general, "mc3_to_wsc", reference_mc3_to_wsc),
        (general, "greedy_wsc", reference_greedy_wsc),
        (exact, "mc3_to_wsc", reference_mc3_to_wsc),
        (robust, "mc3_to_wsc", reference_mc3_to_wsc),
        (multivalued, "mc3_to_wsc", reference_mc3_to_wsc),
        (setcover, "greedy_wsc", reference_greedy_wsc),
        (setcover, "bucket_greedy_wsc", reference_bucket_greedy_wsc),
        (baselines, "min_cover", reference_min_cover),
        (refined, "min_cover", reference_min_cover),
        (partial_cover, "min_cover", reference_min_cover),
    ]
    with ExitStack() as stack:
        for module, attribute, replacement in targets:
            stack.enter_context(mock.patch.object(module, attribute, replacement))
        yield
