"""(De)serialisation of MC³ instances and solutions.

The on-disk format is JSON:

.. code-block:: json

    {
      "name": "example",
      "queries": [["adidas", "juventus", "white"], ["adidas", "chelsea"]],
      "costs": {"adidas": 5, "adidas+juventus": 3},
      "default_cost": null,
      "max_classifier_length": null
    }

Classifier keys in ``costs`` use the canonical ``+``-joined label (sorted
properties).  ``default_cost: null`` means unlisted classifiers are
unavailable (weight ``∞``); a number prices every unlisted classifier
uniformly.  Only :class:`~repro.core.costs.TableCost`-style models can be
round-tripped — lazy models (hash costs) are reconstructed from their
generator parameters instead, see :mod:`repro.datasets`.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Union

from repro.core.costs import TableCost
from repro.core.instance import MC3Instance
from repro.core.properties import canonical_label
from repro.core.solution import Solution
from repro.exceptions import DatasetError

PathLike = Union[str, Path]


def instance_to_dict(instance: MC3Instance) -> Dict[str, object]:
    """Serialise an instance whose cost model is a :class:`TableCost`."""
    cost = instance.cost
    if not isinstance(cost, TableCost):
        raise DatasetError(
            "only TableCost-backed instances serialise to JSON; lazy cost "
            "models should be persisted via their generator parameters"
        )
    costs = {canonical_label(clf): weight for clf, weight in cost.items()}
    default = cost.default if math.isfinite(cost.default) else None
    return {
        "name": instance.name,
        "queries": [sorted(q) for q in instance.queries],
        "costs": costs,
        "default_cost": default,
        "max_classifier_length": instance.max_classifier_length,
    }


def instance_from_dict(payload: Dict[str, object]) -> MC3Instance:
    """Inverse of :func:`instance_to_dict`."""
    try:
        raw_queries = payload["queries"]
        raw_costs = payload.get("costs", {})
    except (TypeError, KeyError) as exc:
        raise DatasetError(f"malformed instance payload: missing {exc}") from exc
    table = {}
    for label, weight in dict(raw_costs).items():
        table[frozenset(str(label).split("+"))] = weight
    default = payload.get("default_cost")
    cost = TableCost(table, default=math.inf if default is None else float(default))
    return MC3Instance(
        raw_queries,
        cost,
        max_classifier_length=payload.get("max_classifier_length"),
        name=str(payload.get("name", "")),
    )


def materialize_cost(instance: MC3Instance, max_entries: int = 1_000_000) -> MC3Instance:
    """Replace a lazy cost model with an explicit :class:`TableCost` over
    the instance's finite-weight candidate classifiers.

    This is the paper's literal input representation (a list associating
    a cost with every considered classifier) and makes any instance
    serialisable.  Raises :class:`DatasetError` when the candidate
    universe exceeds ``max_entries`` — at that point the instance should
    be persisted as generator parameters instead.
    """
    table: Dict[frozenset, float] = {}
    for q in instance.queries:
        for clf in instance.candidates(q):
            if clf not in table:
                table[clf] = instance.weight(clf)
                if len(table) > max_entries:
                    raise DatasetError(
                        f"classifier universe exceeds {max_entries} entries; "
                        "persist the generator parameters instead"
                    )
    return MC3Instance(
        instance.queries,
        TableCost(table),
        max_classifier_length=instance.max_classifier_length,
        name=instance.name,
    )


def save_instance(instance: MC3Instance, path: PathLike) -> None:
    """Write an instance to a JSON file."""
    payload = instance_to_dict(instance)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_instance(path: PathLike) -> MC3Instance:
    """Read an instance from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"{path}: invalid JSON ({exc})") from exc
    return instance_from_dict(payload)


def solution_to_dict(solution: Solution) -> Dict[str, object]:
    """Serialise a solution."""
    return {
        "cost": solution.cost,
        "classifiers": solution.sorted_labels(),
    }


def solution_from_dict(payload: Dict[str, object]) -> Solution:
    """Inverse of :func:`solution_to_dict`."""
    try:
        labels = payload["classifiers"]
        cost = float(payload["cost"])  # type: ignore[arg-type]
    except (TypeError, KeyError, ValueError) as exc:
        raise DatasetError(f"malformed solution payload: {exc}") from exc
    classifiers = [frozenset(str(label).split("+")) for label in labels]
    return Solution(classifiers, cost)


def save_solution(solution: Solution, path: PathLike) -> None:
    """Write a solution to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(solution_to_dict(solution), handle, indent=2, sort_keys=True)


def load_solution(path: PathLike) -> Solution:
    """Read a solution from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"{path}: invalid JSON ({exc})") from exc
    return solution_from_dict(payload)
