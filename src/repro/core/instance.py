"""The MC³ problem instance: a query load plus a classifier cost model.

An :class:`MC3Instance` bundles the paper's input ``⟨Q, W⟩`` (Section 2.1)
with the derived quantities the algorithms need: the property universe,
the maximal query length ``k``, per-query candidate classifiers, and the
incidence parameter ``I`` used by the approximation bounds.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.costs import CostModel, TableCost
from repro.core.properties import (
    Classifier,
    PropertySet,
    Query,
    iter_nonempty_subsets,
    query as make_query,
    union_of,
)
from repro.exceptions import InvalidInstanceError, UncoverableQueryError

CostSpec = Union[CostModel, Mapping[object, float]]


class MC3Instance:
    """An instance ``⟨Q, W⟩`` of the MC³ problem.

    Parameters
    ----------
    queries:
        The query load.  Each query may be given as an iterable of
        property names or a whitespace-separated string.  Duplicates are
        removed (the paper's ``Q`` is a set of *distinct* queries).
    cost:
        Either a :class:`~repro.core.costs.CostModel` or a plain mapping
        ``classifier -> weight`` (wrapped in a
        :class:`~repro.core.costs.TableCost` with missing entries priced
        at ``∞``).
    max_classifier_length:
        Optional bound ``k'`` on classifier length (Section 5.3, *bounded
        classifiers*).  Candidate enumeration skips longer classifiers;
        this composes with, and is cheaper than, pricing them at ``∞``.
    name:
        Optional label used in reports.
    """

    def __init__(
        self,
        queries: Iterable[object],
        cost: CostSpec,
        max_classifier_length: Optional[int] = None,
        name: str = "",
    ):
        canonical: List[Query] = []
        seen = set()
        for spec in queries:
            q = make_query(spec)
            if q not in seen:
                seen.add(q)
                canonical.append(q)
        if not canonical:
            raise InvalidInstanceError("an MC3 instance needs at least one query")
        self._queries: Tuple[Query, ...] = tuple(canonical)

        if isinstance(cost, CostModel):
            self._cost = cost
        else:
            self._cost = TableCost(cost)

        if max_classifier_length is not None and max_classifier_length < 1:
            raise InvalidInstanceError("max_classifier_length must be >= 1")
        self.max_classifier_length = max_classifier_length
        self.name = name

        self._properties: Optional[PropertySet] = None
        self._max_query_length: Optional[int] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def queries(self) -> Tuple[Query, ...]:
        """The distinct queries, in input order."""
        return self._queries

    @property
    def cost(self) -> CostModel:
        """The weighting function ``W``."""
        return self._cost

    @property
    def n(self) -> int:
        """Number of queries (the paper's ``n``)."""
        return len(self._queries)

    @property
    def properties(self) -> PropertySet:
        """The property universe ``P`` (only properties used by queries)."""
        if self._properties is None:
            self._properties = union_of(self._queries)
        return self._properties

    @property
    def max_query_length(self) -> int:
        """The paper's ``k``: length of the longest query."""
        if self._max_query_length is None:
            self._max_query_length = max(len(q) for q in self._queries)
        return self._max_query_length

    def weight(self, clf: Classifier) -> float:
        """``W(clf)``, honouring the instance-level length bound."""
        if self.max_classifier_length is not None and len(clf) > self.max_classifier_length:
            return math.inf
        return self._cost.cost(clf)

    def cost_content_token(self):
        """Canonical digest of this instance's pricing content, or ``None``.

        Combines the cost model's :meth:`~repro.core.costs.CostModel.content_token`
        with the instance-level length cap (which :meth:`weight` applies
        on top of the model) — everything :func:`~repro.core.bitspace.component_fingerprint`
        needs to skip pricing candidates one by one.  ``None`` when the
        model is opaque (e.g. :class:`~repro.core.costs.CallableCost`).
        """
        token = self._cost.content_token()
        if token is None:
            return None
        return token + str(self.max_classifier_length).encode("utf-8")

    def total_weight(self, classifiers: Iterable[Classifier]) -> float:
        """``W(S)`` — the sum of individual classifier weights."""
        return sum(self.weight(clf) for clf in classifiers)

    # ------------------------------------------------------------------
    # Candidate classifiers
    # ------------------------------------------------------------------

    def candidates(self, q: Query) -> Iterator[Classifier]:
        """Finite-weight classifiers usable for query ``q``.

        Enumerates the paper's ``C_q`` (all non-empty subsets of ``q``),
        filtered to finite weight and the optional length bound, by
        increasing length.
        """
        for clf in iter_nonempty_subsets(q, self.max_classifier_length):
            if math.isfinite(self.weight(clf)):
                yield clf

    def classifier_universe(self) -> List[Classifier]:
        """Materialise ``C_Q = ⋃_q C_q`` restricted to finite weights.

        Deterministic order: by first query that contributes the
        classifier, then the per-query enumeration order.  Beware: the
        size is ``O(n · 2^(k-1))``; intended for small/medium instances
        and tests, not the 100k-query synthetic load.
        """
        seen = set()
        ordered: List[Classifier] = []
        for q in self._queries:
            for clf in self.candidates(q):
                if clf not in seen:
                    seen.add(clf)
                    ordered.append(clf)
        return ordered

    # ------------------------------------------------------------------
    # Incidence (Section 5) and validation
    # ------------------------------------------------------------------

    def queries_containing(self, props: PropertySet) -> List[Query]:
        """``Q_S``: the queries that include all properties in ``props``."""
        return [q for q in self._queries if props <= q]

    def incidence_of(self, clf: Classifier) -> int:
        """``I(S)``: number of queries containing ``S`` (0 if ``W(S) = ∞``)."""
        if not math.isfinite(self.weight(clf)):
            return 0
        return sum(1 for q in self._queries if clf <= q)

    def incidence(self) -> int:
        """The instance incidence ``I = max_S I(S)``.

        The maximum is always attained by a singleton classifier of finite
        weight when one exists (supersets can only appear in fewer
        queries), but zero-/infinite-weight patterns mean we check every
        candidate singleton and, if none is finite, fall back to scanning
        the full universe.
        """
        best = 0
        finite_singleton = False
        counts: Dict[str, int] = {}
        for q in self._queries:
            for prop in q:
                counts[prop] = counts.get(prop, 0) + 1
        for prop, count in counts.items():
            if math.isfinite(self.weight(frozenset((prop,)))):
                finite_singleton = True
                best = max(best, count)
        if finite_singleton:
            return best
        for clf in self.classifier_universe():
            best = max(best, self.incidence_of(clf))
        return best

    def validate_coverable(self) -> None:
        """Raise :class:`UncoverableQueryError` if some query has no
        finite-weight cover (the union of its finite candidates must equal
        the query)."""
        for q in self._queries:
            reachable = union_of(self.candidates(q))
            if reachable != q:
                raise UncoverableQueryError(q)

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------

    def subset(self, size: int, order: Optional[Sequence[int]] = None, name: str = "") -> "MC3Instance":
        """Instance over the first ``size`` queries of ``order`` (or input
        order).  Used by the experiment sweeps over query-load cardinality
        (Section 6.1, "we also randomly select subsets of this query set
        of different cardinalities")."""
        if not 1 <= size <= self.n:
            raise InvalidInstanceError(f"subset size must be in [1, {self.n}], got {size}")
        if order is None:
            picked = self._queries[:size]
        else:
            picked = tuple(self._queries[i] for i in order[:size])
        return MC3Instance(
            picked,
            self._cost,
            max_classifier_length=self.max_classifier_length,
            name=name or f"{self.name}[{size}]",
        )

    def restricted_to(self, predicate, name: str = "") -> "MC3Instance":
        """Instance over the queries satisfying ``predicate`` (e.g. the
        short-query slice of the Private dataset)."""
        picked = [q for q in self._queries if predicate(q)]
        if not picked:
            raise InvalidInstanceError("restriction leaves no queries")
        return MC3Instance(
            picked,
            self._cost,
            max_classifier_length=self.max_classifier_length,
            name=name or f"{self.name}|restricted",
        )

    def split_by_length(self, threshold: int = 2) -> Tuple[Optional["MC3Instance"], Optional["MC3Instance"]]:
        """Split into (length ``<= threshold``, length ``> threshold``)
        sub-instances; either side may be ``None``.  This is the partition
        used by the Short-First strategy (Section 4, *Almost k = 2*)."""
        short = [q for q in self._queries if len(q) <= threshold]
        long_ = [q for q in self._queries if len(q) > threshold]
        short_inst = (
            MC3Instance(short, self._cost, self.max_classifier_length, f"{self.name}|short")
            if short
            else None
        )
        long_inst = (
            MC3Instance(long_, self._cost, self.max_classifier_length, f"{self.name}|long")
            if long_
            else None
        )
        return short_inst, long_inst

    def with_cost(self, cost: CostSpec, name: str = "") -> "MC3Instance":
        """Same queries, different weighting function."""
        return MC3Instance(
            self._queries,
            cost,
            max_classifier_length=self.max_classifier_length,
            name=name or self.name,
        )

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "MC3Instance"
        return f"<{label}: n={self.n}, |P|={len(self.properties)}, k={self.max_query_length}>"
