"""Solution objects shared by every solver."""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.coverage import verify_cover
from repro.core.properties import Classifier, canonical_label
from repro.exceptions import InfeasibleSolutionError


class Solution:
    """A set of classifiers selected to cover a query load.

    The total cost is fixed at construction time (costs are evaluated
    against the instance the solution was produced for), so a Solution is
    a self-contained record even if the cost model is later mutated.
    """

    __slots__ = ("classifiers", "cost")

    def __init__(self, classifiers: Iterable[Classifier], cost: float):
        self.classifiers: FrozenSet[Classifier] = frozenset(classifiers)
        if math.isnan(cost) or cost < 0:
            raise InfeasibleSolutionError(f"solution cost must be in [0, inf), got {cost}")
        self.cost = float(cost)

    @classmethod
    def from_instance(cls, classifiers: Iterable[Classifier], instance) -> "Solution":
        """Build a solution pricing the classifiers with ``instance``."""
        selected = frozenset(classifiers)
        return cls(selected, instance.total_weight(selected))

    def verify(self, instance) -> "Solution":
        """Assert feasibility against the independent coverage checker and
        that the recorded cost matches the instance's pricing.  Returns
        ``self`` so calls chain."""
        verify_cover(instance.queries, self.classifiers)
        expected = instance.total_weight(self.classifiers)
        if not math.isclose(expected, self.cost, rel_tol=1e-9, abs_tol=1e-9):
            raise InfeasibleSolutionError(
                f"recorded cost {self.cost} != instance pricing {expected}"
            )
        return self

    def union(self, other: "Solution") -> "Solution":
        """Combine two solutions (e.g. per-component partial solutions).

        Shared classifiers are paid once, matching the model: the combined
        cost is the cost of the union set, computed as the sum of the two
        costs minus nothing only when the parts are disjoint.  For safety
        we require callers to re-price overlapping unions via
        :meth:`from_instance`; disjoint unions are combined directly.
        """
        overlap = self.classifiers & other.classifiers
        if overlap:
            raise InfeasibleSolutionError(
                "cannot cheaply union overlapping solutions; re-price via from_instance"
            )
        return Solution(self.classifiers | other.classifiers, self.cost + other.cost)

    def sorted_labels(self) -> List[str]:
        """Deterministic human-readable classifier labels."""
        return sorted(canonical_label(c) for c in self.classifiers)

    def __len__(self) -> int:
        return len(self.classifiers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Solution):
            return NotImplemented
        return self.classifiers == other.classifiers

    def __hash__(self) -> int:
        return hash(self.classifiers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Solution cost={self.cost} classifiers={len(self.classifiers)}>"


class SolverResult:
    """A solution plus provenance: which solver, how long, and details.

    ``details`` is a free-form dict for solver-specific diagnostics
    (e.g. which WSC sub-algorithm won inside Algorithm 3, preprocessing
    savings, flow value of the cut).
    """

    __slots__ = ("solution", "solver_name", "elapsed_seconds", "details")

    def __init__(
        self,
        solution: Solution,
        solver_name: str,
        elapsed_seconds: float = 0.0,
        details: Optional[Dict[str, object]] = None,
    ):
        self.solution = solution
        self.solver_name = solver_name
        self.elapsed_seconds = elapsed_seconds
        self.details = details or {}

    @property
    def cost(self) -> float:
        return self.solution.cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SolverResult {self.solver_name}: cost={self.cost} "
            f"({len(self.solution)} classifiers, {self.elapsed_seconds:.3f}s)>"
        )
