"""Properties, queries and classifiers as canonical frozensets.

Following the paper's formalism (Section 2.1), a *property* is an opaque
atom, a *query* ``q ⊆ P`` is a set of properties, and a *classifier* is a
non-empty subset of some query's properties.  We represent properties as
(non-empty) strings and both queries and classifiers as
``frozenset[str]``.  Using the same immutable, hashable representation
for queries and classifiers mirrors the paper, where a classifier *is* a
set of properties and a query of length ``l`` has ``2^l - 1`` relevant
classifiers.

This module provides canonical constructors, validation and the subset
enumeration helpers used throughout the solvers.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import InvalidInstanceError

# Type aliases shared across the package.  A ``PropertySet`` is the common
# currency: queries and classifiers are both property sets.
PropertySet = FrozenSet[str]
Query = PropertySet
Classifier = PropertySet


def validate_property(prop: object) -> str:
    """Return ``prop`` if it is a valid property, else raise.

    A valid property is a non-empty string with no surrounding whitespace.
    """
    if not isinstance(prop, str):
        raise InvalidInstanceError(f"property must be a string, got {type(prop).__name__}")
    if not prop or prop != prop.strip():
        raise InvalidInstanceError(f"property must be a non-empty trimmed string, got {prop!r}")
    return prop


def property_set(properties: Iterable[object]) -> PropertySet:
    """Build a validated ``PropertySet`` from an iterable of properties."""
    return frozenset(validate_property(p) for p in properties)


def query(spec: object) -> Query:
    """Build a query from a flexible specification.

    Accepts either an iterable of property names or a single
    whitespace-separated string, so ``query("white adidas juventus")`` and
    ``query(["white", "adidas", "juventus"])`` are equivalent.

    Raises :class:`InvalidInstanceError` for empty queries — the model has
    no notion of a query testing zero properties.
    """
    if isinstance(spec, str):
        parts: Sequence[object] = spec.split()
    else:
        parts = list(spec)
    result = property_set(parts)
    if not result:
        raise InvalidInstanceError("a query must test at least one property")
    return result


def classifier(spec: object) -> Classifier:
    """Build a classifier from a flexible specification (same rules as queries).

    A classifier tests the conjunction of its properties; an empty
    classifier is meaningless and rejected.
    """
    result = query(spec)
    return result


def queries(specs: Iterable[object]) -> List[Query]:
    """Build a list of queries; convenience plural of :func:`query`."""
    return [query(spec) for spec in specs]


def canonical_label(props: PropertySet) -> str:
    """A deterministic human-readable label for a property set.

    Properties are sorted so that the label is stable across runs; the
    paper's ``XYZ`` notation corresponds to ``canonical_label({x, y, z})``.
    """
    return "+".join(sorted(props))


def classifier_sort_key(props: PropertySet) -> Tuple[int, Tuple[str, ...]]:
    """Canonical total order for classifiers: length, then lexicographic.

    This is the tie-break order the kernels and reductions use whenever
    a set of classifiers must be walked deterministically (e.g. summing
    float weights, where accumulation order changes the rounded total).
    """
    return (len(props), tuple(sorted(props)))


def iter_nonempty_subsets(
    props: PropertySet, max_length: int | None = None
) -> Iterator[Classifier]:
    """Yield all non-empty subsets of ``props`` of length ``<= max_length``.

    With ``max_length=None`` this enumerates ``C_q = 2^q \\ {∅}``, the
    paper's universe of classifiers relevant to query ``q``.  Subsets are
    yielded by increasing length, then lexicographically, so iteration
    order is deterministic.
    """
    ordered = sorted(props)
    limit = len(ordered) if max_length is None else min(max_length, len(ordered))
    for size in range(1, limit + 1):
        for combo in combinations(ordered, size):
            yield frozenset(combo)


def count_nonempty_subsets(length: int, max_length: int | None = None) -> int:
    """Number of classifiers relevant to a query of the given length.

    Equals ``2^length - 1`` when unbounded; with a bound ``k'`` it is the
    partial binomial sum ``sum_{i=1..k'} C(length, i)``.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if max_length is None or max_length >= length:
        return (1 << length) - 1
    total = 0
    from math import comb

    for size in range(1, max_length + 1):
        total += comb(length, size)
    return total


def iter_two_partitions(props: PropertySet) -> Iterator[Tuple[Classifier, Classifier]]:
    """Yield unordered pairs ``(a, b)`` of non-empty sets with ``a | b == props``.

    This is the *disjoint* restriction of the decompositions considered by
    preprocessing step 3 (Algorithm 1, line 8).  Restricting to disjoint
    pairs is a conservative choice: pruning decisions based on a subset of
    the decompositions can only retain extra classifiers, never remove a
    needed one.  :func:`iter_two_covers` enumerates the full (possibly
    overlapping) family at ``O(3^|S|)`` cost.

    Each unordered pair is yielded exactly once (the member containing the
    lexicographically smallest property comes first).
    """
    ordered = sorted(props)
    if len(ordered) < 2:
        return
    anchor = ordered[0]
    rest = ordered[1:]
    # Assign every non-anchor property to side a or side b; anchor stays in
    # a to avoid yielding mirrored duplicates.  Skip the assignment that
    # leaves b empty.
    for pattern in range(1, 1 << len(rest)):
        side_a = [anchor]
        side_b = []
        for index, prop in enumerate(rest):
            if pattern & (1 << index):
                side_b.append(prop)
            else:
                side_a.append(prop)
        yield frozenset(side_a), frozenset(side_b)


def iter_two_covers(props: PropertySet) -> Iterator[Tuple[Classifier, Classifier]]:
    """Yield unordered pairs ``(a, b)`` of non-empty *proper* subsets with
    ``a | b == props``, including overlapping pairs.

    This is the full family from Algorithm 1, line 8 ("all combinations of
    two classifiers whose union is S").  The enumeration assigns every
    property to side a only, side b only, or both — ``3^|props|`` cases —
    and keeps those where both sides are proper subsets.  To yield each
    unordered pair once, the lexicographically smallest property never goes
    to "side b only".
    """
    ordered = sorted(props)
    if len(ordered) < 2:
        return
    anchor, rest = ordered[0], ordered[1:]
    full = frozenset(ordered)
    # Each property in ``rest`` takes one of three assignments; the anchor
    # takes one of two (a-only or both), halving the mirrored duplicates.
    for anchor_in_b in (False, True):
        for pattern in range(3 ** len(rest)):
            side_a = [anchor]
            side_b = [anchor] if anchor_in_b else []
            code = pattern
            for prop in rest:
                code, assignment = divmod(code, 3)
                if assignment == 0:
                    side_a.append(prop)
                elif assignment == 1:
                    side_b.append(prop)
                else:
                    side_a.append(prop)
                    side_b.append(prop)
            a, b = frozenset(side_a), frozenset(side_b)
            if not b or a == full or b == full:
                continue
            if a | b != full:
                continue
            if anchor_in_b and tuple(sorted(a)) > tuple(sorted(b)):
                # When the anchor is on both sides, (a, b) and (b, a) both
                # appear; keep the lexicographically ordered orientation.
                continue
            yield a, b


def union_of(sets: Iterable[PropertySet]) -> PropertySet:
    """Union of property sets; the paper's ``P(S)`` operator."""
    result: set = set()
    for member in sets:
        result |= member
    return frozenset(result)
