"""Bitset property space: interned integer-bitmask hot paths.

The frozenset representation of :mod:`repro.core.properties` is the
package's public currency, but inside one property-disjoint component
every hot loop — dominated pruning's decomposition search, the
single-query min-cover DP, the MC³ → WSC reduction and the greedy set
cover — repeats the same subset/union/intersection tests on tiny sets
of strings, paying string hashing and a set-object allocation per test.

A :class:`PropertySpace` interns a component's properties to bit
positions (sorted order, so bit ``i`` is the ``i``-th property
lexicographically) and represents every query and classifier as a plain
``int`` mask.  Subset testing becomes ``a & ~b == 0``, union ``a | b``,
"freshly covered" a popcount — single machine-word operations for the
component sizes preprocessing produces (the same dense-id trick
:class:`~repro.setcover.instance.WSCInstance` uses for elements).

Interning is scoped to one component: each ``solve_component`` (and
each :class:`~repro.preprocess.dominated.DominatedPruner`) builds its
own space, so masks stay as wide as the *component's* property count,
not the instance's.  Because bit order mirrors lexicographic property
order, mask enumeration helpers reproduce the deterministic orders of
their frozenset counterparts exactly, keeping outputs bit-identical.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.costs import CostModel, OverlayCost
from repro.core.properties import Classifier, PropertySet, Query

INFINITY = math.inf


def popcount(mask: int) -> int:
    """Number of set bits (classifier/query length of a mask)."""
    return mask.bit_count()


def mask_union(masks: Iterable[int]) -> int:
    """Union of masks; the mask-level ``P(S)`` operator."""
    result = 0
    for mask in masks:
        result |= mask
    return result


def iter_bits(mask: int) -> Iterator[int]:
    """Yield set-bit positions in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class PropertySpace:
    """Bidirectional interning between a component's properties and bits.

    Properties are assigned bits in sorted (lexicographic) order, so for
    any mask the ascending bit positions correspond to the sorted
    property names — the invariant every deterministic-order guarantee
    below rests on.
    """

    __slots__ = ("_properties", "_bit_of", "_set_cache")

    def __init__(self, properties: Iterable[str]):
        ordered = sorted(set(properties))
        self._properties: Tuple[str, ...] = tuple(ordered)
        self._bit_of: Dict[str, int] = {p: i for i, p in enumerate(ordered)}
        # mask -> frozenset, shared across all conversions in this space.
        self._set_cache: Dict[int, Classifier] = {}

    @classmethod
    def from_queries(cls, queries: Iterable[Query]) -> "PropertySpace":
        """Space over the union of the queries' properties."""
        props: List[str] = []
        for q in queries:
            props.extend(q)
        return cls(props)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of interned properties (mask width)."""
        return len(self._properties)

    @property
    def properties(self) -> Tuple[str, ...]:
        """Interned properties; index ``i`` is the property of bit ``i``."""
        return self._properties

    @property
    def full_mask(self) -> int:
        """Mask with every interned property set."""
        return (1 << len(self._properties)) - 1

    def mask_of(self, props: PropertySet) -> int:
        """Intern a property set to its mask (``KeyError`` on foreign
        properties — masks never silently cross component boundaries)."""
        bit_of = self._bit_of
        mask = 0
        for prop in props:
            mask |= 1 << bit_of[prop]
        return mask

    def set_of(self, mask: int) -> Classifier:
        """The frozenset a mask denotes (memoised per space)."""
        cached = self._set_cache.get(mask)
        if cached is None:
            names = self._properties
            cached = frozenset(names[bit] for bit in iter_bits(mask))
            self._set_cache[mask] = cached
        return cached

    def bits_of(self, mask: int) -> Tuple[int, ...]:
        """Ascending set-bit positions (sorted-property order)."""
        return tuple(iter_bits(mask))

    def label(self, mask: int) -> str:
        """``canonical_label`` of the mask's property set."""
        return "+".join(self._properties[bit] for bit in iter_bits(mask))

    # ------------------------------------------------------------------
    # Enumeration helpers (mask mirrors of repro.core.properties)
    # ------------------------------------------------------------------

    def iter_subset_masks(
        self, mask: int, max_length: Optional[int] = None
    ) -> Iterator[int]:
        """Non-empty submasks of ``mask``, by increasing popcount then
        lexicographically — the exact order of
        :func:`~repro.core.properties.iter_nonempty_subsets` under the
        sorted-property interning."""
        bits = [1 << bit for bit in iter_bits(mask)]
        limit = len(bits) if max_length is None else min(max_length, len(bits))
        for size in range(1, limit + 1):
            for combo in combinations(bits, size):
                sub = 0
                for bit in combo:
                    sub |= bit
                yield sub

    def iter_two_partition_masks(self, mask: int) -> Iterator[Tuple[int, int]]:
        """Unordered pairs ``(a, b)`` of non-empty *disjoint* masks with
        ``a | b == mask`` — the family of
        :func:`~repro.core.properties.iter_two_partitions` (enumeration
        order differs; callers take a minimum over the family)."""
        if popcount(mask) < 2:
            return
        anchor = mask & -mask  # lowest bit stays on side a: no mirrors
        rest = mask ^ anchor
        sub = rest
        while sub:
            yield mask ^ sub, sub
            sub = (sub - 1) & rest

    def iter_two_cover_masks(self, mask: int) -> Iterator[Tuple[int, int]]:
        """Unordered pairs of non-empty *proper* submasks with union
        ``mask``, including overlapping pairs — the family of
        :func:`~repro.core.properties.iter_two_covers` (``O(3^len)``
        cases; order differs, callers take a minimum)."""
        if popcount(mask) < 2:
            return
        # a runs over proper non-empty submasks; b must contain the
        # complement of a plus any overlap s ⊆ a (s == a would make b the
        # full mask).  Each unordered pair appears once as (a, b) with
        # a < b and once mirrored, so keep the a < b orientation.
        a = (mask - 1) & mask
        while a:
            complement = mask ^ a
            s = (a - 1) & a  # proper submasks of a, including 0
            while True:
                b = complement | s
                if a < b:
                    yield a, b
                if s == 0:
                    break
                s = (s - 1) & a
            a = (a - 1) & mask


class MaskCost:
    """Mask-keyed cost overlay over a component's frozenset cost model.

    Reads are memoised by mask (``int`` hashing instead of frozenset
    hashing) and :meth:`select` / :meth:`remove` write *through* to the
    underlying :class:`~repro.core.costs.OverlayCost`, so the rest of
    the pipeline — which keeps pricing by frozenset — observes every
    mask-level decision.  The cache stays coherent because the owning
    pass is the only writer while it runs (preprocessing components are
    property-disjoint, so two pruners never share classifiers).
    """

    __slots__ = ("space", "base", "_cache")

    def __init__(self, space: PropertySpace, base: CostModel):
        self.space = space
        self.base = base
        self._cache: Dict[int, float] = {}

    def cost(self, mask: int) -> float:
        cached = self._cache.get(mask)
        if cached is None:
            cached = self.base.cost(self.space.set_of(mask))
            self._cache[mask] = cached
        return cached

    def select(self, mask: int) -> None:
        """Weight 0 (selected), here and in the base overlay."""
        base = self.base
        if isinstance(base, OverlayCost):
            base.select(self.space.set_of(mask))
        self._cache[mask] = 0.0

    def remove(self, mask: int) -> None:
        """Weight ``∞`` (removed), here and in the base overlay."""
        base = self.base
        if isinstance(base, OverlayCost):
            base.remove(self.space.set_of(mask))
        self._cache[mask] = INFINITY

    def stats(self) -> Dict[str, int]:
        """Cache footprint, for telemetry."""
        return {"properties": self.space.size, "cached_costs": len(self._cache)}


def compress_masks(qmask: int, masks: Sequence[int]) -> Tuple[int, List[int]]:
    """Re-index component-space masks to query-local bit positions.

    Returns ``(full, locals)`` where ``full = 2^popcount(qmask) - 1``
    and ``locals`` holds each submask of ``qmask`` with every component
    bit replaced by its rank within ``qmask``; masks that are not
    submasks of ``qmask`` are dropped.  Ascending component bits map to
    ascending local bits, so sorted-property order (and with it every
    tie-break that depends on enumeration order) is preserved.
    """
    local_of = {bit: i for i, bit in enumerate(iter_bits(qmask))}
    compressed: List[int] = []
    for mask in masks:
        if mask & ~qmask:
            continue
        local = 0
        for bit in iter_bits(mask):
            local |= 1 << local_of[bit]
        compressed.append(local)
    return (1 << len(local_of)) - 1, compressed
