"""Bitset property space: interned integer-bitmask hot paths.

The frozenset representation of :mod:`repro.core.properties` is the
package's public currency, but inside one property-disjoint component
every hot loop — dominated pruning's decomposition search, the
single-query min-cover DP, the MC³ → WSC reduction and the greedy set
cover — repeats the same subset/union/intersection tests on tiny sets
of strings, paying string hashing and a set-object allocation per test.

A :class:`PropertySpace` interns a component's properties to bit
positions (sorted order, so bit ``i`` is the ``i``-th property
lexicographically) and represents every query and classifier as a plain
``int`` mask.  Subset testing becomes ``a & ~b == 0``, union ``a | b``,
"freshly covered" a popcount — single machine-word operations for the
component sizes preprocessing produces (the same dense-id trick
:class:`~repro.setcover.instance.WSCInstance` uses for elements).

Interning is scoped to one component: each ``solve_component`` (and
each :class:`~repro.preprocess.dominated.DominatedPruner`) builds its
own space, so masks stay as wide as the *component's* property count,
not the instance's.  Because bit order mirrors lexicographic property
order, mask enumeration helpers reproduce the deterministic orders of
their frozenset counterparts exactly, keeping outputs bit-identical.
"""

from __future__ import annotations

import hashlib
import math
import struct
from itertools import combinations
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.costs import CostModel, OverlayCost
from repro.core.properties import Classifier, PropertySet, Query

INFINITY = math.inf


def popcount(mask: int) -> int:
    """Number of set bits (classifier/query length of a mask)."""
    return mask.bit_count()


def mask_union(masks: Iterable[int]) -> int:
    """Union of masks; the mask-level ``P(S)`` operator."""
    result = 0
    for mask in masks:
        result |= mask
    return result


def iter_bits(mask: int) -> Iterator[int]:
    """Yield set-bit positions in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class PropertySpace:
    """Bidirectional interning between a component's properties and bits.

    Properties are assigned bits in sorted (lexicographic) order, so for
    any mask the ascending bit positions correspond to the sorted
    property names — the invariant every deterministic-order guarantee
    below rests on.
    """

    __slots__ = ("_properties", "_bit_of", "_set_cache")

    def __init__(self, properties: Iterable[str]):
        ordered = sorted(set(properties))
        self._properties: Tuple[str, ...] = tuple(ordered)
        self._bit_of: Dict[str, int] = {p: i for i, p in enumerate(ordered)}
        # mask -> frozenset, shared across all conversions in this space.
        self._set_cache: Dict[int, Classifier] = {}

    @classmethod
    def from_queries(cls, queries: Iterable[Query]) -> "PropertySpace":
        """Space over the union of the queries' properties."""
        props: List[str] = []
        for q in queries:
            props.extend(q)
        return cls(props)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of interned properties (mask width)."""
        return len(self._properties)

    @property
    def properties(self) -> Tuple[str, ...]:
        """Interned properties; index ``i`` is the property of bit ``i``."""
        return self._properties

    @property
    def full_mask(self) -> int:
        """Mask with every interned property set."""
        return (1 << len(self._properties)) - 1

    def mask_of(self, props: PropertySet) -> int:
        """Intern a property set to its mask (``KeyError`` on foreign
        properties — masks never silently cross component boundaries)."""
        bit_of = self._bit_of
        mask = 0
        for prop in props:
            mask |= 1 << bit_of[prop]
        return mask

    def set_of(self, mask: int) -> Classifier:
        """The frozenset a mask denotes (memoised per space)."""
        cached = self._set_cache.get(mask)
        if cached is None:
            names = self._properties
            cached = frozenset(names[bit] for bit in iter_bits(mask))
            self._set_cache[mask] = cached
        return cached

    def bits_of(self, mask: int) -> Tuple[int, ...]:
        """Ascending set-bit positions (sorted-property order)."""
        return tuple(iter_bits(mask))

    def label(self, mask: int) -> str:
        """``canonical_label`` of the mask's property set."""
        return "+".join(self._properties[bit] for bit in iter_bits(mask))

    # ------------------------------------------------------------------
    # Enumeration helpers (mask mirrors of repro.core.properties)
    # ------------------------------------------------------------------

    def iter_subset_masks(
        self, mask: int, max_length: Optional[int] = None
    ) -> Iterator[int]:
        """Non-empty submasks of ``mask``, by increasing popcount then
        lexicographically — the exact order of
        :func:`~repro.core.properties.iter_nonempty_subsets` under the
        sorted-property interning."""
        bits = [1 << bit for bit in iter_bits(mask)]
        limit = len(bits) if max_length is None else min(max_length, len(bits))
        for size in range(1, limit + 1):
            for combo in combinations(bits, size):
                sub = 0
                for bit in combo:
                    sub |= bit
                yield sub

    def iter_two_partition_masks(self, mask: int) -> Iterator[Tuple[int, int]]:
        """Unordered pairs ``(a, b)`` of non-empty *disjoint* masks with
        ``a | b == mask`` — the family of
        :func:`~repro.core.properties.iter_two_partitions` (enumeration
        order differs; callers take a minimum over the family)."""
        if popcount(mask) < 2:
            return
        anchor = mask & -mask  # lowest bit stays on side a: no mirrors
        rest = mask ^ anchor
        sub = rest
        while sub:
            yield mask ^ sub, sub
            sub = (sub - 1) & rest

    def iter_two_cover_masks(self, mask: int) -> Iterator[Tuple[int, int]]:
        """Unordered pairs of non-empty *proper* submasks with union
        ``mask``, including overlapping pairs — the family of
        :func:`~repro.core.properties.iter_two_covers` (``O(3^len)``
        cases; order differs, callers take a minimum)."""
        if popcount(mask) < 2:
            return
        # a runs over proper non-empty submasks; b must contain the
        # complement of a plus any overlap s ⊆ a (s == a would make b the
        # full mask).  Each unordered pair appears once as (a, b) with
        # a < b and once mirrored, so keep the a < b orientation.
        a = (mask - 1) & mask
        while a:
            complement = mask ^ a
            s = (a - 1) & a  # proper submasks of a, including 0
            while True:
                b = complement | s
                if a < b:
                    yield a, b
                if s == 0:
                    break
                s = (s - 1) & a
            a = (a - 1) & mask


class MaskCost:
    """Mask-keyed cost overlay over a component's frozenset cost model.

    Reads are memoised by mask (``int`` hashing instead of frozenset
    hashing) and :meth:`select` / :meth:`remove` write *through* to the
    underlying :class:`~repro.core.costs.OverlayCost`, so the rest of
    the pipeline — which keeps pricing by frozenset — observes every
    mask-level decision.  The cache stays coherent because the owning
    pass is the only writer while it runs (preprocessing components are
    property-disjoint, so two pruners never share classifiers).
    """

    __slots__ = ("space", "base", "_cache")

    def __init__(self, space: PropertySpace, base: CostModel):
        self.space = space
        self.base = base
        self._cache: Dict[int, float] = {}

    def cost(self, mask: int) -> float:
        cached = self._cache.get(mask)
        if cached is None:
            cached = self.base.cost(self.space.set_of(mask))
            self._cache[mask] = cached
        return cached

    def select(self, mask: int) -> None:
        """Weight 0 (selected), here and in the base overlay."""
        base = self.base
        if isinstance(base, OverlayCost):
            base.select(self.space.set_of(mask))
        self._cache[mask] = 0.0

    def remove(self, mask: int) -> None:
        """Weight ``∞`` (removed), here and in the base overlay."""
        base = self.base
        if isinstance(base, OverlayCost):
            base.remove(self.space.set_of(mask))
        self._cache[mask] = INFINITY

    def stats(self) -> Dict[str, int]:
        """Cache footprint, for telemetry."""
        return {"properties": self.space.size, "cached_costs": len(self._cache)}


# ----------------------------------------------------------------------
# Content-addressed component fingerprints
# ----------------------------------------------------------------------

#: Bumped whenever the fingerprint's byte layout changes, so stale
#: on-disk cache entries can never be confused with current ones.
#: v2: cost content is fed as either a model content-token or the
#: enumerated per-candidate prices (domain-separated).
FINGERPRINT_VERSION = 2

#: The rung slot cache lookups pin: cached entries always hold the
#: *primary* solver's answer (fallback/degraded outputs are never
#: inserted, see :mod:`repro.engine.cache`).
PRIMARY_RUNG = "primary"


def _feed_bytes(digest, data: bytes) -> None:
    """Length-prefixed update — unambiguous concatenation."""
    digest.update(len(data).to_bytes(4, "little"))
    digest.update(data)


def _feed_text(digest, text: str) -> None:
    _feed_bytes(digest, text.encode("utf-8"))


def _feed_mask(digest, mask: int) -> None:
    """Masks may exceed one machine word; encode as little-endian bytes."""
    width = (mask.bit_length() + 7) // 8 or 1
    _feed_bytes(digest, mask.to_bytes(width, "little"))


def _feed_float(digest, value: float) -> None:
    """Exact IEEE-754 bits — no string rounding, ``inf`` included."""
    digest.update(struct.pack("<d", value))


def _feed_knob(digest, part: object) -> None:
    """Type-tagged scalar encoding for solver/route knob tokens, so
    ``1`` and ``"1"`` (or ``None`` and ``"None"``) can never collide."""
    if part is None:
        _feed_text(digest, "n:")
    elif isinstance(part, bool):
        _feed_text(digest, f"b:{int(part)}")
    elif isinstance(part, int):
        _feed_text(digest, f"i:{part}")
    elif isinstance(part, float):
        _feed_text(digest, "f:")
        _feed_float(digest, part)
    else:
        _feed_text(digest, f"s:{part}")


def component_fingerprint(
    component,
    solver_token: Sequence[object] = (),
    route: Optional[str] = None,
    backend: Optional[str] = None,
    rung: str = PRIMARY_RUNG,
) -> str:
    """Canonical content hash of one property-disjoint component.

    Two components receive the same fingerprint **iff** a deterministic
    solver must produce the same answer for both: the hash covers the
    interned property grid (sorted names — the
    :class:`PropertySpace` invariant makes this canonical), the query
    masks (sorted, so input order cannot leak in), the pricing content,
    and every output-affecting knob: the solver's cache token, the
    engine route, the kernel backend, and the resilience rung slot.

    Pricing is captured one of two domain-separated ways.  When the
    component's cost chain advertises a
    :meth:`~repro.core.costs.CostModel.content_token` (tables, overlays,
    every shipped model except opaque callables), that digest is fed
    directly — it is cached on the model, so a 250-component run pays
    for it once.  Otherwise every candidate classifier the solvers may
    consider (all submasks of the queries up to
    ``max_classifier_length``) is priced through ``component.weight``
    so overlay select/remove state is captured exactly, floats encoded
    bit-for-bit.

    ``component`` needs only ``queries``, ``weight`` and
    ``max_classifier_length`` (the :class:`~repro.core.instance.MC3Instance`
    surface).  Nothing hash-seed-dependent is consumed: no ``hash()``,
    no ``id()``, no ``repr()`` of unordered containers, no unsorted
    set/dict iteration (reprolint RPL204 enforces this).
    """
    space = PropertySpace.from_queries(component.queries)
    digest = hashlib.blake2b(digest_size=20)
    _feed_text(digest, f"mc3-component-fingerprint/v{FINGERPRINT_VERSION}")

    _feed_text(digest, str(len(space.properties)))
    for name in space.properties:  # already sorted by the interning
        _feed_text(digest, name)

    qmasks = sorted({space.mask_of(q) for q in component.queries})
    _feed_text(digest, str(len(qmasks)))
    for qmask in qmasks:
        _feed_mask(digest, qmask)

    cap = component.max_classifier_length
    _feed_knob(digest, cap)
    cost_token = None
    token_of = getattr(component, "cost_content_token", None)
    if token_of is not None:
        cost_token = token_of()
    if cost_token is not None:
        # Content-token fast path: the cost chain digests its own
        # pricing (cached across components and runs), so candidates
        # need not be priced one by one.  Domain-separated from the
        # enumerated path — the two encodings can never collide.
        _feed_text(digest, "costs:token")
        _feed_bytes(digest, cost_token)
    else:
        _feed_text(digest, "costs:enumerated")
        seen_masks = set()
        for qmask in qmasks:
            for sub in space.iter_subset_masks(qmask, cap):
                if sub in seen_masks:
                    continue
                seen_masks.add(sub)
                _feed_mask(digest, sub)
                _feed_float(digest, component.weight(space.set_of(sub)))

    _feed_text(digest, str(len(tuple(solver_token))))
    for part in tuple(solver_token):
        _feed_knob(digest, part)
    _feed_knob(digest, route)
    _feed_knob(digest, backend)
    _feed_knob(digest, rung)
    return digest.hexdigest()


def compress_masks(qmask: int, masks: Sequence[int]) -> Tuple[int, List[int]]:
    """Re-index component-space masks to query-local bit positions.

    Returns ``(full, locals)`` where ``full = 2^popcount(qmask) - 1``
    and ``locals`` holds each submask of ``qmask`` with every component
    bit replaced by its rank within ``qmask``; masks that are not
    submasks of ``qmask`` are dropped.  Ascending component bits map to
    ascending local bits, so sorted-property order (and with it every
    tie-break that depends on enumeration order) is preserved.
    """
    local_of = {bit: i for i, bit in enumerate(iter_bits(qmask))}
    compressed: List[int] = []
    for mask in masks:
        if mask & ~qmask:
            continue
        local = 0
        for bit in iter_bits(mask):
            local |= 1 << local_of[bit]
        compressed.append(local)
    return (1 << len(local_of)) - 1, compressed
