"""Descriptive statistics of an MC³ instance.

Backs Table 1 of the paper (dataset summary: number of queries, max
cost, max length) and the in-text dataset characterisations (share of
short queries, property-sharing structure).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional

from repro.core.instance import MC3Instance


class InstanceStats:
    """Computed summary of an :class:`MC3Instance`."""

    def __init__(self, instance: MC3Instance, sample_costs: int = 2000):
        self.name = instance.name
        self.n = instance.n
        self.num_properties = len(instance.properties)
        self.max_query_length = instance.max_query_length
        self.length_histogram: Dict[int, int] = dict(
            Counter(len(q) for q in instance.queries)
        )
        self.short_fraction = (
            sum(count for length, count in self.length_histogram.items() if length <= 2)
            / self.n
        )
        self.incidence = instance.incidence()
        self.property_occurrences = self._occurrence_histogram(instance)
        self.rare_property_fraction = (
            sum(
                count
                for occurrences, count in self.property_occurrences.items()
                if occurrences <= 2
            )
            / max(1, self.num_properties)
        )
        self.max_cost, self.min_cost = self._cost_extremes(instance, sample_costs)

    @staticmethod
    def _occurrence_histogram(instance: MC3Instance) -> Dict[int, int]:
        """How many properties appear in exactly ``k`` queries — the
        head/tail structure the algorithms exploit."""
        per_property = Counter(prop for q in instance.queries for prop in q)
        return dict(Counter(per_property.values()))

    @staticmethod
    def _cost_extremes(instance: MC3Instance, sample: int):
        """Extremes of finite classifier costs.

        For lazily-priced universes we bound work by sampling candidate
        classifiers from the first ``sample`` queries; Table 1 only needs
        the max, which for the generated datasets is attained quickly.
        """
        max_cost: Optional[float] = None
        min_cost: Optional[float] = None
        for q in instance.queries[:sample]:
            for clf in instance.candidates(q):
                weight = instance.weight(clf)
                if not math.isfinite(weight):
                    continue
                if max_cost is None or weight > max_cost:
                    max_cost = weight
                if min_cost is None or weight < min_cost:
                    min_cost = weight
        return max_cost, min_cost

    def as_row(self) -> Dict[str, object]:
        """The Table 1 row for this dataset."""
        return {
            "dataset": self.name,
            "queries": self.n,
            "max_cost": self.max_cost,
            "max_length": self.max_query_length,
        }

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [
            f"dataset      : {self.name or '<unnamed>'}",
            f"queries (n)  : {self.n}",
            f"properties   : {self.num_properties}",
            f"max length k : {self.max_query_length}",
            f"short (<=2)  : {self.short_fraction:.1%}",
            f"incidence I  : {self.incidence}",
            f"rare props   : {self.rare_property_fraction:.1%} appear in <=2 queries",
            f"cost range   : [{self.min_cost}, {self.max_cost}]",
            "length histogram:",
        ]
        for length in sorted(self.length_histogram):
            count = self.length_histogram[length]
            lines.append(f"  len {length:>2}: {count:>8} ({count / self.n:.1%})")
        return "\n".join(lines)
