"""Typed contracts for the batch mask kernels.

The four hot paths the bitset rewrite produced — dominated-classifier
pruning (Algorithm 1 step 3), Chvátal greedy WSC, the bucketed greedy
[CKW'10], and the single-query min-cover subset DP — share one shape:
they take interned integer bitmasks in and hand deterministic,
bit-identical decisions back.  A :class:`KernelBackend` bundles one
implementation of all four behind that contract so the engine can pick
an implementation per run (or per route) without any caller knowing
which one it got.

Two backends ship: ``pyjit`` (pure-python mask arithmetic, always
available) and ``array`` (numpy column-packed masks, available when a
numpy with ``bitwise_count`` is importable).  Every backend must be
*bit-identical* to the frozenset reference kernels in
:mod:`repro.core.reference` — same selections, same tie-breaks, same
costs — which the equivalence suite and ``benchmarks/bench_bitspace.py``
keep executable.

Backends are reached only through :mod:`repro.core.kernels.registry`
(reprolint RPL203 enforces that the implementation modules are never
imported directly from outside this package).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # runtime-import-free: this module sits below
    # core/mincover and setcover in the import graph (both shims import
    # the registry, which imports this), so the model types are
    # annotation-only here.
    from repro.core.costs import OverlayCost
    from repro.core.properties import Classifier, Query
    from repro.setcover.instance import WSCInstance, WSCSolution

# ----------------------------------------------------------------------
# Dominated-pruning tuning constants (hoisted from preprocess/dominated,
# which re-exports them for backward compatibility).
# ----------------------------------------------------------------------

#: Beyond this classifier length the ``O(3^len)`` full decomposition
#: enumeration switches to the ``O(2^len)`` disjoint-only family (still a
#: sound pruning rule, merely less aggressive).
FULL_ENUMERATION_MAX_LENGTH = 7

#: Forced-cover detection enumerates irredundant covers, which is
#: exponential in the query length; skip it for longer queries.
FORCED_COVER_MAX_LENGTH = 5

#: Per-query budget for the uniqueness search; exhausting it means the
#: query conservatively counts as having multiple covers.
FORCED_COVER_NODE_BUDGET = 3000

#: Queries with more available candidates than this skip the uniqueness
#: test outright — a unique cover among that many candidates is
#: vanishingly rare and the search is the expensive part.
FORCED_COVER_MAX_CANDIDATES = 24


#: ``min_cover_dp`` outcome: ``(cost, chosen candidate indices in
#: selection order)``, or ``None`` when the target mask is unreachable.
MinCoverOutcome = Optional[Tuple[float, List[int]]]


@runtime_checkable
class PrunesDominated(Protocol):
    """Surface of a dominated pruner instance (Algorithm 1 step 3).

    Matches the historical ``DominatedPruner`` class exactly, so
    backends may subclass the pyjit pruner or reimplement it wholesale.
    """

    queries: List[Query]
    overlay: OverlayCost
    removed: Set[Classifier]
    forced: List[Classifier]

    def effective_weight(self, clf: Classifier) -> float:
        """Weight of ``clf`` or of its cheapest recorded decomposition."""
        ...

    def run(self, uncovered: Sequence[Query]) -> Tuple[int, List[Classifier]]:
        """Run removal + forced-cover detection to a fixpoint."""
        ...


@runtime_checkable
class KernelBackend(Protocol):
    """One complete implementation of the four batch kernels.

    Contracts (identical across backends, checked against
    :mod:`repro.core.reference`):

    * ``make_dominated_pruner`` — a stateful step-3 pass over one
      property-disjoint component, writing through to ``overlay``;
    * ``greedy_wsc`` — Chvátal greedy; ties on cost/fresh resolve to the
      lowest set id;
    * ``bucket_greedy_wsc`` — the CKW'10 bucketed greedy with scalar
      ``math.log`` bucket keys (ULP-exact bucketing is part of the
      bit-identity contract);
    * ``min_cover_dp`` — the single-query subset DP over query-local
      masks; ties break toward fewer sets, then earliest candidate
      order.
    * ``sampled_gains`` — batch fresh-coverage counts
      ``popcount(mask & ~covered)`` over sample-local member masks, the
      gain-estimation primitive of the sampling-based sub-linear greedy
      (exact integer counts, so backends are trivially bit-identical).
    """

    name: str

    def make_dominated_pruner(
        self,
        queries: Sequence[Query],
        overlay: OverlayCost,
        max_classifier_length: Optional[int] = None,
    ) -> PrunesDominated:
        ...

    def greedy_wsc(self, instance: WSCInstance) -> WSCSolution:
        ...

    def bucket_greedy_wsc(
        self, instance: WSCInstance, epsilon: float = 0.1
    ) -> WSCSolution:
        ...

    def min_cover_dp(
        self, full: int, usable: Sequence[Tuple[int, float]]
    ) -> MinCoverOutcome:
        ...

    def sampled_gains(self, member_masks: Sequence[int], covered: int) -> List[int]:
        ...


def describe(backend: KernelBackend) -> Dict[str, object]:
    """Small introspection dict used by telemetry and the CLI."""
    return {
        "name": backend.name,
        "kernels": [
            "dominated_pruning",
            "greedy_wsc",
            "bucket_greedy_wsc",
            "min_cover_dp",
            "sampled_gains",
        ],
    }
