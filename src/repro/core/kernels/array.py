"""numpy kernel backend: column-packed masks, vectorized sweeps.

Import-guarded — the module always imports, and
:data:`NUMPY_AVAILABLE` tells the registry whether the backend is
usable (it needs a numpy with ``bitwise_count``, i.e. numpy ≥ 2).

Bit-identity strategy, kernel by kernel:

* ``greedy_wsc`` — the lazy-deletion heap's *effective* selection rule
  is "argmin of ``(cost / fresh, set_id)`` over sets with fresh
  coverage": stale entries under-estimate their ratio, get re-keyed on
  pop, and never win; accurate entries pop in exactly that order.  So
  the vectorized variant materialises the rule directly:
  ``np.argmin`` over the ratio vector returns the *first* (lowest id)
  minimum, and ``float64`` division equals Python float division ULP
  for ULP.  Fresh counts update incrementally on the word span the
  selection actually touched, against a contiguous word-major copy.
* ``bucket_greedy_wsc`` — identical control flow to the pure version;
  only the fresh-coverage counts of the current bucket's queue are
  batched (``bitwise_count`` over the queue's rows), recomputed for the
  remaining suffix after each selection.  Bucket keys stay scalar
  ``math.log`` — ``np.log`` may differ in the last ulp, and a one-ulp
  bucket flip would change selections.
* dominated pruning — subclasses the pyjit pruner; only the
  decomposition min-sweep (the measured hot loop) is vectorized, over
  dense per-universe-mask cost/effective arrays kept in sync through
  the pruner's mutation hooks.  ``np.minimum``/``+``/``min`` perform
  the same IEEE-754 double operations as the scalar loop.
* ``min_cover_dp`` — same bound-pruned skeleton as pyjit; each expanded
  state shortlists improving candidates vectorially against a snapshot
  of the DP row, then applies them scalar-and-in-order (the snapshot
  test is a superset of the sequential test because entries only ever
  improve within a round).  Masks wider than 62 bits would overflow
  int64 and fall back to the pyjit implementation.

Both WSC kernels draw their uint64 mask grid from a per-instance cache
(:func:`_packed`) — packing thousands of python-int masks costs as much
as a whole greedy run, and the pure-python kernels already amortise the
equivalent work through ``WSCInstance.member_masks``.
"""

from __future__ import annotations

import math
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.costs import OverlayCost
from repro.core.kernels import pyjit
from repro.core.kernels.api import MinCoverOutcome
from repro.core.properties import Query
from repro.exceptions import InvalidInstanceError, SolverError
from repro.setcover.instance import WSCInstance, WSCSolution

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less hosts
    np = None  # type: ignore[assignment]

#: Whether this backend can run here (numpy ≥ 2 for ``bitwise_count``).
NUMPY_AVAILABLE = np is not None and hasattr(np, "bitwise_count")

#: ``min_cover_dp`` masks must fit comfortably in int64.
_DP_MASK_LIMIT = 1 << 62


def _require_numpy() -> None:
    if not NUMPY_AVAILABLE:
        raise SolverError(
            "the 'array' kernel backend requires numpy >= 2 "
            "(with numpy.bitwise_count)"
        )


class _PackedMasks:
    """Column-packed view of a :class:`WSCInstance`'s member masks.

    Packing 2000 python-int masks costs milliseconds — comparable to an
    entire greedy run — so it is cached per instance (weakly, see
    :func:`_packed`) the same way the instance caches
    :meth:`~WSCInstance.member_masks` for the pure-python kernels.
    ``rows`` is ``(num_sets, words)`` uint64; ``transposed`` is its
    contiguous ``(words, num_sets)`` twin, built lazily, so per-word
    slices touch contiguous memory in the greedy update sweep.
    """

    __slots__ = ("masks", "words", "rows", "costs", "_transposed")

    def __init__(self, instance: WSCInstance):
        masks = instance.member_masks()
        words = max(1, (instance.universe_size + 63) // 64)
        nbytes = words * 8
        buf = b"".join(mask.to_bytes(nbytes, "little") for mask in masks)
        self.masks = masks
        self.words = words
        self.rows = np.frombuffer(buf, dtype="<u8").reshape(len(masks), words)
        self.costs = np.asarray(instance.set_costs(), dtype=np.float64)
        self._transposed = None

    @property
    def transposed(self):
        if self._transposed is None:
            self._transposed = np.ascontiguousarray(self.rows.T)
        return self._transposed


_PACK_CACHE: "weakref.WeakKeyDictionary[WSCInstance, _PackedMasks]" = (
    weakref.WeakKeyDictionary()
)


def _packed(instance: WSCInstance) -> _PackedMasks:
    """Packed masks for ``instance``, rebuilt only when the instance's
    mask cache was invalidated (``member_masks`` returns a new list)."""
    entry = _PACK_CACHE.get(instance)
    if entry is None or entry.masks is not instance.member_masks():
        entry = _PackedMasks(instance)
        _PACK_CACHE[instance] = entry
    return entry


def _pack_one(mask: int, words: int):
    return np.frombuffer(mask.to_bytes(words * 8, "little"), dtype="<u8")


def greedy_wsc(instance: WSCInstance) -> WSCSolution:
    """Vectorized Chvátal greedy; selections match the heap variant."""
    _require_numpy()
    instance.validate_coverable()

    universe_size = instance.universe_size
    num_sets = instance.num_sets
    pack = _packed(instance)
    member_masks = pack.masks
    words = pack.words
    packed_T = pack.transposed  # (words, num_sets): word-major, contiguous
    costs = pack.costs

    fresh = np.bitwise_count(pack.rows).sum(axis=1, dtype=np.int64)
    ratios = np.empty(num_sets, dtype=np.float64)
    scratch = np.empty((words, num_sets), dtype=np.uint64)
    covered = 0
    num_covered = 0
    selected: List[int] = []
    total_cost = 0.0

    while num_covered < universe_size:
        if num_sets == 0:
            raise SolverError("greedy ran out of sets before covering the universe")
        np.copyto(ratios, np.inf)
        np.divide(costs, fresh, out=ratios, where=fresh > 0)
        set_id = int(np.argmin(ratios))
        if math.isinf(float(ratios[set_id])):
            # All finite-ratio sets are spent.  The heap variant would
            # still select the lowest-id set with fresh coverage (its
            # infinite-cost entries sort by id); raise only when none.
            if not bool(np.any(fresh > 0)):
                raise SolverError(
                    "greedy ran out of sets before covering the universe"
                )
            set_id = int(np.argmax(fresh > 0))
        fresh_mask = member_masks[set_id] & ~covered
        gained = int(fresh[set_id])
        selected.append(set_id)
        total_cost += float(costs[set_id])
        covered |= fresh_mask
        num_covered += gained
        # Incremental maintenance: only words the selection touched can
        # change any set's fresh count.  The touched words form a span
        # ``[lo, hi)``; interior zero words contribute zero popcount, and
        # the contiguous word-major slice beats a column gather.
        newly = _pack_one(fresh_mask, words)
        touched = np.nonzero(newly)[0]
        if touched.size:
            lo, hi = int(touched[0]), int(touched[-1]) + 1
            block = scratch[: hi - lo]
            np.bitwise_and(packed_T[lo:hi], newly[lo:hi, None], out=block)
            np.bitwise_count(block, out=block)
            fresh -= block.sum(axis=0, dtype=np.int64)

    return WSCSolution(selected, total_cost)


def bucket_greedy_wsc(instance: WSCInstance, epsilon: float = 0.1) -> WSCSolution:
    """Bucketed greedy with batched fresh-coverage counts."""
    _require_numpy()
    if epsilon <= 0:
        raise InvalidInstanceError(f"epsilon must be > 0, got {epsilon}")
    instance.validate_coverable()
    base = 1.0 + epsilon
    log_base = math.log(base)
    flog, ffloor = math.log, math.floor

    def bucket_of(ratio: float) -> int:
        if ratio <= 0:
            return -(10**9)  # zero-cost sets: always the best bucket
        return ffloor(flog(ratio) / log_base)

    universe_size = instance.universe_size
    num_sets = instance.num_sets
    pack = _packed(instance)
    packed = pack.rows
    words = pack.words
    costs = pack.costs
    cost_list = instance.set_costs()

    covered_words = np.zeros(words, dtype=np.uint64)
    scratch = np.empty((num_sets, words), dtype=np.uint64)
    num_covered = 0
    selected: List[int] = []
    total_cost = 0.0

    buckets: Dict[int, List[int]] = {}

    def push(set_id: int, ratio: float) -> None:
        key = bucket_of(ratio)
        if key not in buckets:
            buckets[key] = []
        buckets[key].append(set_id)

    sizes = np.bitwise_count(packed).sum(axis=1, dtype=np.int64).tolist()
    for set_id in range(num_sets):
        size = sizes[set_id]
        if size == 0:
            continue  # degenerate empty set: nothing to cover, no ratio
        push(set_id, cost_list[set_id] / size)

    while num_covered < universe_size:
        if not buckets:
            raise SolverError("bucket greedy ran out of sets")
        current_key = min(buckets)
        queue = buckets.pop(current_key)
        pos = 0
        while pos < len(queue):
            # Batch the fresh counts for the unprocessed suffix; valid
            # until the next selection changes the covered mask.  The
            # ratio vector is float64 division, ULP-identical to the
            # scalar divisions of the pure variant; only sets with fresh
            # coverage (``live``) reach the python scan.
            suffix = queue[pos:]
            ids = np.asarray(suffix, dtype=np.int64)
            rows = scratch[: ids.size]
            np.take(packed, ids, axis=0, out=rows)
            rows &= ~covered_words
            fresh_batch = np.bitwise_count(rows).sum(axis=1, dtype=np.int64)
            live = np.nonzero(fresh_batch)[0]
            ratio_list = (costs[ids[live]] / fresh_batch[live]).tolist()
            advanced = False
            for scan, offset in enumerate(live.tolist()):
                ratio = ratio_list[scan]
                key = bucket_of(ratio)
                if key > current_key:
                    # Migrated to a worse bucket (appended directly —
                    # the key is already in hand, no second bucket_of).
                    set_id = suffix[offset]
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = [set_id]
                    else:
                        bucket.append(set_id)
                    continue
                # Within (1+epsilon) of the best current ratio: take it.
                set_id = suffix[offset]
                selected.append(set_id)
                total_cost += cost_list[set_id]
                covered_words |= rows[offset]
                num_covered += int(fresh_batch[offset])
                pos += offset + 1
                advanced = True
                break
            if not advanced:
                pos = len(queue)
            if num_covered == universe_size:
                break

    solution = WSCSolution(selected, total_cost)
    instance.verify_solution(solution)
    return solution


class ArrayDominatedPruner(pyjit.DominatedPruner):
    """Dominated pruning with the decomposition min-sweep vectorized.

    The sweep computes exactly ``min over pairs of (min(effective,
    direct)(a) + min(effective, direct)(b))`` with the same float64
    additions and comparisons as the scalar loop, over dense arrays
    indexed by universe position.  The arrays are built lazily on the
    first sweep (so they price the overlay as of that moment, like the
    scalar reads would) and kept in sync by the mutation hooks.
    """

    def __init__(
        self,
        queries: Sequence[Query],
        overlay: OverlayCost,
        max_classifier_length: Optional[int] = None,
    ):
        _require_numpy()
        super().__init__(queries, overlay, max_classifier_length)
        self._ids: Optional[Dict[int, int]] = None  # universe mask -> dense id
        self._cost_arr = None
        self._eff_arr = None
        self._pair_ids: Dict[int, Tuple[object, object]] = {}

    def _ensure_arrays(self) -> None:
        if self._ids is not None:
            return
        universe = self._universe()
        self._ids = {mask: position for position, mask in enumerate(universe)}
        cost = self._cost.cost
        self._cost_arr = np.fromiter(
            (cost(mask) for mask in universe), dtype=np.float64, count=len(universe)
        )
        # +inf is "no memo entry": min(inf, direct) == direct, matching
        # the scalar miss path exactly.
        self._eff_arr = np.full(len(universe), np.inf)
        for mask, value in self._effective.items():
            position = self._ids.get(mask)
            if position is not None:
                self._eff_arr[position] = value

    # -- hook overrides: mirror scalar state into the arrays -----------

    def _set_effective(self, mask: int, value: float) -> None:
        super()._set_effective(mask, value)
        if self._ids is not None:
            position = self._ids.get(mask)
            if position is not None:
                self._eff_arr[position] = value

    def _drop_effective(self, mask: int) -> None:
        super()._drop_effective(mask)
        if self._ids is not None:
            position = self._ids.get(mask)
            if position is not None:
                self._eff_arr[position] = np.inf

    def _apply_remove(self, mask: int) -> None:
        super()._apply_remove(mask)
        if self._ids is not None:
            position = self._ids.get(mask)
            if position is not None:
                self._cost_arr[position] = np.inf

    def _apply_select(self, mask: int) -> None:
        super()._apply_select(mask)
        if self._ids is not None:
            # Forced selections may sit outside the pruner universe when
            # max_classifier_length < the query length (the k=2 closed
            # form can pick the whole query), hence the .get.
            position = self._ids.get(mask)
            if position is not None:
                self._cost_arr[position] = 0.0

    # ------------------------------------------------------------------

    def _cheapest_decomposition(self, mask: int) -> float:
        self._ensure_arrays()
        pair = self._pair_ids.get(mask)
        if pair is None:
            ids = self._ids
            pairs = self._decompositions(mask)
            left = np.fromiter(
                (ids[a] for a, _ in pairs), dtype=np.int64, count=len(pairs)
            )
            right = np.fromiter(
                (ids[b] for _, b in pairs), dtype=np.int64, count=len(pairs)
            )
            pair = (left, right)
            self._pair_ids[mask] = pair
        left, right = pair
        if left.size == 0:
            return math.inf
        eff = self._eff_arr
        cost = self._cost_arr
        values = np.minimum(eff[left], cost[left]) + np.minimum(
            eff[right], cost[right]
        )
        return float(values.min())


def min_cover_dp(full: int, usable: Sequence[Tuple[int, float]]) -> MinCoverOutcome:
    """Bound-pruned DP with vectorized candidate shortlisting."""
    _require_numpy()
    if full == 0:
        return 0.0, []
    if full >= _DP_MASK_LIMIT or not usable:
        # Too wide for int64 mask arithmetic (or trivially unreachable):
        # the scalar implementation handles arbitrary-width ints.
        return pyjit.min_cover_dp(full, usable)
    tables = pyjit.admissible_tables(full, usable)
    if tables is None:
        return None
    h, incumbent = tables

    num = len(usable)
    masks_arr = np.fromiter((m for m, _ in usable), dtype=np.int64, count=num)
    weights_arr = np.fromiter((w for _, w in usable), dtype=np.float64, count=num)

    size = full + 1
    dp_cost = np.full(size, np.inf)
    dp_count = np.zeros(size, dtype=np.int64)
    back: List[Optional[Tuple[int, int]]] = [None] * size
    dp_cost[0] = 0.0

    for mask in range(size):
        cost_here = float(dp_cost[mask])
        if math.isinf(cost_here):
            continue
        full_cost = float(dp_cost[full])
        if full_cost < incumbent:
            incumbent = full_cost
        if cost_here + h[mask] > incumbent:
            continue
        count_next = int(dp_count[mask]) + 1
        nxt = mask | masks_arr
        new_cost = cost_here + weights_arr
        snap_cost = dp_cost[nxt]
        snap_count = dp_count[nxt]
        # Snapshot shortlist: a superset of the sequentially-applied
        # updates (entries only improve within the round), re-checked
        # scalar and in candidate order below so duplicate targets
        # resolve exactly as the sequential loop would.
        improving = (nxt != mask) & (
            (new_cost < snap_cost)
            | ((new_cost == snap_cost) & (count_next < snap_count))  # reprolint: ignore[RPL103]
        )
        for idx in np.nonzero(improving)[0].tolist():
            target = int(nxt[idx])
            candidate_cost = float(new_cost[idx])
            current_cost = float(dp_cost[target])
            if candidate_cost < current_cost or (
                # Deliberate exact DP tie-break, same judgment as pyjit.
                candidate_cost == current_cost  # reprolint: ignore[RPL103]
                and count_next < int(dp_count[target])
            ):
                dp_cost[target] = candidate_cost
                dp_count[target] = count_next
                back[target] = (mask, int(idx))

    final_cost = float(dp_cost[full])
    if math.isinf(final_cost):
        return None

    chosen: List[int] = []
    mask = full
    while mask:
        prev_mask, idx = back[mask]  # type: ignore[misc]
        chosen.append(idx)
        mask = prev_mask
    chosen.reverse()
    return final_cost, chosen


def sampled_gains(member_masks: Sequence[int], covered: int) -> List[int]:
    """Vectorized fresh-coverage counts: pack the sample-local masks into
    a uint64 matrix once and let ``bitwise_count`` sum per row.  Exact
    integer counts — bit-identical to the pyjit loop by construction."""
    _require_numpy()
    if not member_masks:
        return []
    width = max(mask.bit_length() for mask in member_masks)
    words = max(1, (width + 63) // 64)
    nbytes = words * 8
    buf = b"".join(mask.to_bytes(nbytes, "little") for mask in member_masks)
    rows = np.frombuffer(buf, dtype="<u8").reshape(len(member_masks), words)
    if covered:
        # Restrict ~covered to the packed width so the AND stays exact.
        visible = ~covered & ((1 << (words * 64)) - 1)
        rows = rows & _pack_one(visible, words)
    return np.bitwise_count(rows).sum(axis=1, dtype=np.int64).tolist()


class ArrayBackend:
    """The optional numpy backend."""

    name = "array"

    def __init__(self) -> None:
        _require_numpy()

    def make_dominated_pruner(
        self,
        queries: Sequence[Query],
        overlay: OverlayCost,
        max_classifier_length: Optional[int] = None,
    ) -> ArrayDominatedPruner:
        return ArrayDominatedPruner(queries, overlay, max_classifier_length)

    def greedy_wsc(self, instance: WSCInstance) -> WSCSolution:
        return greedy_wsc(instance)

    def bucket_greedy_wsc(
        self, instance: WSCInstance, epsilon: float = 0.1
    ) -> WSCSolution:
        return bucket_greedy_wsc(instance, epsilon)

    def min_cover_dp(
        self, full: int, usable: Sequence[Tuple[int, float]]
    ) -> MinCoverOutcome:
        return min_cover_dp(full, usable)

    def sampled_gains(self, member_masks: Sequence[int], covered: int) -> List[int]:
        return sampled_gains(member_masks, covered)
