"""Kernel backend registry: names → lazily constructed backends.

The registry is the only sanctioned path to a kernel implementation
(reprolint RPL203 enforces this outside ``core/kernels/``).  It owns:

* **registration** — ``pyjit`` (always available) and ``array``
  (available when numpy ≥ 2 with ``bitwise_count`` is importable) are
  registered at import; future backends plug in the same way;
* **resolution** — a choice string (``"pyjit"``, ``"array"``, or
  ``"auto"``) resolves to a concrete backend name; ``auto`` picks
  ``array`` when numpy is present and falls back to ``pyjit``;
* **the active default** — ``None`` choices resolve to the innermost
  :func:`use_backend` context, else to the process default, which is
  seeded from the ``REPRO_KERNEL_BACKEND`` environment variable (read
  once at import) and falls back to ``pyjit``.  The conservative
  pure-python default keeps tiny components free of per-call numpy
  overhead; opt into ``array`` per solver, per route, or process-wide.

Backends are memoized: repeated :func:`get_backend` calls return the
same instance, so per-pruner caches and the like amortize naturally.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.kernels.api import KernelBackend
from repro.exceptions import SolverError

#: Environment variable consulted once, at import, for the process-wide
#: default backend choice.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The adaptive choice: ``array`` when available, else ``pyjit``.
AUTO = "auto"

_FALLBACK_CHOICE = "pyjit"

_LOADERS: Dict[str, Callable[[], KernelBackend]] = {}
_AVAILABILITY: Dict[str, Callable[[], bool]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}

#: Choices pushed by :func:`use_backend`, innermost last.  Fork-based
#: worker pools inherit the stack as of the fork, so tasks dispatched
#: inside a ``use_backend`` block keep the choice in child processes.
_STACK: List[str] = []


def register_backend(
    name: str,
    loader: Callable[[], KernelBackend],
    available: Optional[Callable[[], bool]] = None,
) -> None:
    """Register a backend factory.

    ``loader`` builds the backend on first use; ``available`` (default:
    always true) gates it on optional dependencies without importing
    them eagerly.
    """
    if name == AUTO:
        raise SolverError(f"backend name {AUTO!r} is reserved")
    _LOADERS[name] = loader
    if available is not None:
        _AVAILABILITY[name] = available
    _INSTANCES.pop(name, None)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its dependencies import."""
    if name not in _LOADERS:
        return False
    probe = _AVAILABILITY.get(name)
    return True if probe is None else bool(probe())


def available_backends() -> List[str]:
    """Names of registered backends whose dependencies are present."""
    return [name for name in sorted(_LOADERS) if backend_available(name)]


def backend_choices() -> Tuple[str, ...]:
    """Every accepted choice string (registered names plus ``auto``)."""
    return tuple(sorted(_LOADERS)) + (AUTO,)


def resolve_backend_name(choice: Optional[str] = None) -> str:
    """Resolve a choice to a concrete backend name.

    ``None`` means "the active default": the innermost
    :func:`use_backend` context if any, else the process default.
    """
    if choice is None:
        choice = _STACK[-1] if _STACK else _default_choice()
    if choice == AUTO:
        return "array" if backend_available("array") else "pyjit"
    if choice not in _LOADERS:
        known = ", ".join(backend_choices())
        raise SolverError(f"unknown kernel backend {choice!r} (known: {known})")
    return choice


def get_backend(choice: Optional[str] = None) -> KernelBackend:
    """The memoized backend instance for ``choice`` (see
    :func:`resolve_backend_name` for ``None`` / ``auto`` semantics)."""
    name = resolve_backend_name(choice)
    instance = _INSTANCES.get(name)
    if instance is None:
        if not backend_available(name):
            raise SolverError(
                f"kernel backend {name!r} is not available on this host "
                "(missing optional dependency); available: "
                + ", ".join(available_backends())
            )
        instance = _LOADERS[name]()
        _INSTANCES[name] = instance
    return instance


@contextmanager
def use_backend(choice: Optional[str]) -> Iterator[None]:
    """Scope the active default backend to a ``with`` block.

    ``None`` is a no-op (keep whatever is active), so call sites can
    thread an optional override without branching.  ``auto`` resolves on
    entry, so the whole block sees one concrete backend.
    """
    if choice is None:
        yield
        return
    _STACK.append(resolve_backend_name(choice))
    try:
        yield
    finally:
        _STACK.pop()


def set_default_backend(choice: Optional[str]) -> None:
    """Set the process-wide default (e.g. from a CLI flag).

    ``None`` restores the import-time default.  ``auto`` is resolved
    eagerly so later availability changes cannot flip the meaning of an
    explicit request mid-run.
    """
    global _PROCESS_CHOICE
    _PROCESS_CHOICE = None if choice is None else resolve_backend_name(choice)


def current_backend_name() -> str:
    """The concrete name a ``None`` choice resolves to right now."""
    return resolve_backend_name(None)


def _default_choice() -> str:
    if _PROCESS_CHOICE is not None:
        return _PROCESS_CHOICE
    return _ENV_CHOICE or _FALLBACK_CHOICE


# One-time configuration read, not per-solve nondeterminism: the value
# is sampled at import, so a single process can never observe two
# different environment-derived defaults.
_ENV_CHOICE = os.environ.get(BACKEND_ENV_VAR)  # reprolint: ignore[RPL102] import-time config read, sampled once

#: Explicit process-wide override installed by :func:`set_default_backend`.
_PROCESS_CHOICE: Optional[str] = None


def _load_pyjit() -> KernelBackend:
    from repro.core.kernels import pyjit

    return pyjit.PyJitBackend()


def _load_array() -> KernelBackend:
    from repro.core.kernels import array

    return array.ArrayBackend()


def _array_available() -> bool:
    from repro.core.kernels import array

    return array.NUMPY_AVAILABLE


register_backend("pyjit", _load_pyjit)
register_backend("array", _load_array, available=_array_available)
